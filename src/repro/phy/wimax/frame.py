"""TDD downlink frame assembly for the WiMAX experiment.

The Airspan base station in the paper broadcasts continuously: every
5 ms TDD frame opens with the preamble symbol, followed by the FCH and
DL bursts (which we fill with QPSK-modulated pseudo-random data on the
PUSC-used subcarriers), followed by the uplink portion during which
the base station is silent.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.ofdm import ofdm_modulate
from repro.errors import ConfigurationError
from repro.phy.wimax import params as p
from repro.phy.wimax.preamble import preamble_symbol

#: Guard carriers per edge for data symbols (1024-FFT DL PUSC).
DATA_GUARD_LEFT = 92
DATA_GUARD_RIGHT = 91


def data_carriers() -> np.ndarray:
    """Logical indices of the used (data + pilot) DL subcarriers."""
    physical = np.arange(DATA_GUARD_LEFT, p.WIMAX_FFT_SIZE - DATA_GUARD_RIGHT)
    logical = physical - p.WIMAX_FFT_SIZE // 2
    return logical[logical != 0]


def _qpsk_points(count: int, rng: np.random.Generator) -> np.ndarray:
    bits = rng.integers(0, 4, size=count)
    table = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2.0)
    return table[bits]


def build_downlink_frame(config: p.WimaxConfig,
                         rng: np.random.Generator,
                         fch: "DlFramePrefix | None" = None) -> np.ndarray:
    """One 5 ms TDD frame: preamble + FCH/DL symbols + silent UL gap.

    The symbol after the preamble opens with the Frame Control Header
    (:mod:`repro.phy.wimax.fch`) on its first subcarriers, as the
    standard requires; the rest of the downlink carries QPSK data.
    Returns ``config.frame_samples`` samples at 11.4 MHz with the DL
    portion at unit average power.
    """
    from repro.phy.wimax.fch import FCH_SYMBOLS, DlFramePrefix, encode_fch

    carriers = data_carriers()
    parts = [preamble_symbol(config.cell_id, config.segment)]
    for index in range(config.dl_symbols - 1):
        points = _qpsk_points(carriers.size, rng)
        if index == 0:
            prefix = fch if fch is not None else DlFramePrefix()
            points[:FCH_SYMBOLS] = encode_fch(prefix)
        symbol = ofdm_modulate(p.WIMAX_OFDM, carriers, points)
        parts.append(symbol / np.sqrt(np.mean(np.abs(symbol) ** 2)))
    downlink = np.concatenate(parts)
    frame = np.zeros(config.frame_samples, dtype=np.complex128)
    if downlink.size > frame.size:
        raise ConfigurationError("downlink subframe exceeds the TDD frame")
    frame[:downlink.size] = downlink
    return frame


def downlink_stream(config: p.WimaxConfig, n_frames: int,
                    rng: np.random.Generator) -> np.ndarray:
    """A continuous broadcast of ``n_frames`` TDD frames."""
    if n_frames < 1:
        raise ConfigurationError("n_frames must be >= 1")
    return np.concatenate([
        build_downlink_frame(config, rng) for _ in range(n_frames)
    ])
