"""Mobile WiMAX (IEEE 802.16e) OFDMA downlink, as the paper uses it.

The paper's WiMAX experiment targets the downlink of an Airspan Air4G
base station: TDD mode, 10 MHz channel at 2.608 GHz, 11.4 MHz hardware
sampling rate, 1024-point FFT.  The jammer locks onto the frame
preamble — one OFDMA symbol carrying a per-segment 284-value PN
sequence on every third subcarrier with 86 guard carriers per edge.

Only the downlink transmit side is needed (the paper itself lacked a
WiMAX receiver and evaluated at the PHY level with a scope), so this
package implements preamble generation and TDD frame assembly.
"""

from __future__ import annotations

from repro.phy.wimax.params import WIMAX_OFDM, WimaxConfig
from repro.phy.wimax.preamble import (
    preamble_carriers,
    preamble_pn_sequence,
    preamble_symbol,
)
from repro.phy.wimax.frame import build_downlink_frame, downlink_stream

__all__ = [
    "WIMAX_OFDM",
    "WimaxConfig",
    "preamble_carriers",
    "preamble_pn_sequence",
    "preamble_symbol",
    "build_downlink_frame",
    "downlink_stream",
]
