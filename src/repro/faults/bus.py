"""A register bus that misbehaves like the N210's UDP control path.

:class:`FaultyRegisterBus` is a drop-in :class:`UserRegisterBus` whose
``write`` path replays the control-plane schedule of a
:class:`~repro.faults.plan.FaultPlan`: datagrams are dropped, land a
few operations late, arrive twice, or arrive with a flipped bit.  The
read path stays clean — host readback is how the hardened driver
*detects* corruption, so faulting it would model a different (and much
rarer) failure.

Address and width validation still happen before any fault applies:
the reject-never-mask contract of the underlying bus is a property of
the host API, not of the wire, and a fault plan must not be able to
smuggle an illegal word past it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegisterError
from repro.faults.plan import ControlFault, ControlFaultKind, FaultPlan
from repro.hw.registers import WORD_MASK, UserRegisterBus


@dataclass(frozen=True)
class InjectedFault:
    """Audit record of one fault actually applied to the wire."""

    op_index: int
    address: int
    kind: ControlFaultKind
    detail: str


class FaultyRegisterBus(UserRegisterBus):
    """A :class:`UserRegisterBus` with scripted control-plane faults.

    The bus consumes one decision from the plan's control schedule per
    ``write`` call; decisions carrying an address filter that does not
    match pass the write through clean.  Delayed writes are buffered
    and delivered before a later bus operation, modelling shallow UDP
    reordering.  Every injected fault is recorded in :attr:`fault_log`.

    ``faults_enabled`` gates injection: campaigns typically configure
    the device cleanly first (a verified boot), then arm the faults.
    """

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__()
        self.plan = plan
        self.faults_enabled = True
        self.fault_log: list[InjectedFault] = []
        self._decisions = plan.control_decisions()
        self._op_index = 0
        #: Delayed writes waiting to land: (due_op, address, value).
        self._pending: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Wire model

    def _advance(self) -> None:
        """Count a bus operation and land any due delayed writes."""
        self._op_index += 1
        if self._pending:
            due = [entry for entry in self._pending
                   if entry[0] <= self._op_index]
            if due:
                self._pending = [entry for entry in self._pending
                                 if entry[0] > self._op_index]
                for _due_op, address, value in due:
                    super().write(address, value)

    def flush(self) -> None:
        """Force all in-flight delayed writes to land now."""
        pending, self._pending = self._pending, []
        for _due_op, address, value in pending:
            super().write(address, value)

    @property
    def pending_writes(self) -> int:
        """Number of delayed writes still in flight."""
        return len(self._pending)

    def _decide(self, address: int) -> ControlFault | None:
        decision = next(self._decisions)
        if decision is None or not self.faults_enabled:
            return None
        spec = self.plan.control[decision.spec_index]
        if spec.addresses is not None and address not in spec.addresses:
            return None
        return decision

    # ------------------------------------------------------------------
    # Bus API

    def write(self, address: int, value: int) -> None:
        """Write with scripted faults applied between host and core."""
        self._check_address(address)
        if not 0 <= value <= WORD_MASK:
            raise RegisterError(
                f"value {value:#x} does not fit the 32-bit data bus "
                "(the bus rejects out-of-range words, it never masks)"
            )
        self._advance()
        decision = self._decide(address)
        if decision is None:
            super().write(address, value)
            return
        if decision.kind is ControlFaultKind.DROP:
            self._log(address, decision, f"write of {value:#x} dropped")
            return
        if decision.kind is ControlFaultKind.DELAY:
            due = self._op_index + decision.delay_ops
            self._pending.append((due, address, value))
            self._log(address, decision,
                      f"write of {value:#x} delayed {decision.delay_ops} ops")
            return
        if decision.kind is ControlFaultKind.DUPLICATE:
            self._log(address, decision, f"write of {value:#x} duplicated")
            super().write(address, value)
            super().write(address, value)
            return
        corrupted = value ^ (1 << decision.bit)
        self._log(address, decision,
                  f"bit {decision.bit} flipped: {value:#x} -> {corrupted:#x}")
        super().write(address, corrupted)

    def read(self, address: int) -> int:
        """Clean readback (delayed writes due by now land first)."""
        self._advance()
        return super().read(address)

    def upset(self, address: int, value: int) -> None:
        """Corrupt stored register contents directly (SEU model).

        Unlike a faulted ``write`` this bypasses the wire entirely —
        no watchers fire and no write is counted, exactly like a
        radiation upset or a configuration-RAM glitch.  The hardened
        driver's ``scrub()`` pass exists to find these.
        """
        self._check_address(address)
        self._values[address] = int(value) & WORD_MASK

    def _log(self, address: int, decision: ControlFault, detail: str) -> None:
        self.fault_log.append(InjectedFault(
            op_index=decision.op_index, address=address,
            kind=decision.kind, detail=detail,
        ))
