"""Deterministic chaos campaigns: the jammer under injected faults.

A :class:`ChaosScenario` describes one arm of a fault-injection
experiment — which :class:`~repro.faults.plan.FaultPlan` to replay,
whether the hardened control path (verified writes + scrub) and the
core watchdog are armed, and how the run recovers from stream errors.
:func:`run_scenario` executes it end-to-end against a synthetic frame
train and measures what the acceptance criteria care about:

* **full-frame detection probability** — the fraction of frames whose
  span produced at least one cross-correlator detection;
* **jam coverage** — the fraction of frames overlapped by a jam burst;
* **transmit duty cycle** — the nonzero fraction of the transmitted
  waveform (the quantity the watchdog bounds).

Every random draw is seeded from the scenario, so a campaign is a
reproducible experiment, not a flaky stress test.  The frame train is
the detection-experiment methodology in miniature: pseudo-frames built
from the WiFi short-preamble correlator template embedded in a fixed
noise floor at a configured SNR, with the correlator threshold derived
from the closed-form false-alarm model.

The host reasserts its configuration once per frame (threshold and an
alternating burst uptime), the way the paper's GUI retunes the jammer
at run time — this is what gives control-plane faults something to
corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coeffs import wifi_short_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import DegradationPolicy, ReactiveJammer
from repro.core.presets import JammerPersonality
from repro.errors import ConfigurationError, HardwareError
from repro.experiments.detection import threshold_for_false_alarm_rate
from repro.faults.bus import FaultyRegisterBus
from repro.faults.plan import FaultPlan
from repro.faults.stream import StreamFaultInjector
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.trigger import TriggerSource
from repro.hw.usrp import UsrpN210
from repro.hw.watchdog import Watchdog, WatchdogConfig, WatchdogTrip

#: Noise-only guard before each frame's burst (streaming warm-up).
GUARD_SAMPLES = 512

#: Detections up to this many samples after the burst still count for
#: the frame (pipeline latency between burst end and trigger).
DETECTION_SLACK_SAMPLES = 128

#: The two burst uptimes the host alternates between (0.01/0.1 ms).
UPTIME_SHORT_SAMPLES = 250
UPTIME_LONG_SAMPLES = 2500


@dataclass(frozen=True)
class ChaosScenario:
    """One arm of a chaos campaign.

    Attributes:
        name: Label used in results and benchmark output.
        plan: The fault plan replayed against this arm.
        hardened: Verified writes + periodic scrub on the driver.
        watchdog: Core watchdog policy, or ``None`` for no watchdog.
        degradation: Per-chunk recovery policy for the run loop.
        scrub_every_chunks: Scrub period (chunks); 0 disables.
        raise_on_overrun: Stream overruns raise instead of zero-fill,
            exercising the skip-and-log recovery path.
        n_frames: Frames in the synthetic train.
        frame_samples: Samples per frame segment (guard + burst + tail).
        burst_repeats: Correlator-template repetitions per burst.
        chunk_size: Processing chunk size (smaller than a frame so
            scrub passes land mid-frame).
        snr_db: Burst SNR over the noise floor.
        noise_power: Mean noise power at the quantizer input.
        false_alarm_per_second: Target rate for the threshold formula.
        seed: Seed for the noise train (independent of the fault plan's
            own seed).
    """

    name: str
    plan: FaultPlan
    hardened: bool = True
    watchdog: WatchdogConfig | None = None
    degradation: DegradationPolicy = DegradationPolicy.SKIP_AND_LOG
    scrub_every_chunks: int = 4
    raise_on_overrun: bool = False
    n_frames: int = 40
    frame_samples: int = 4096
    burst_repeats: int = 4
    chunk_size: int = 1024
    snr_db: float = 12.0
    noise_power: float = 1e-4
    false_alarm_per_second: float = 10.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ConfigurationError("n_frames must be >= 1")
        if self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if self.noise_power <= 0:
            raise ConfigurationError("noise_power must be positive")


@dataclass
class ChaosResult:
    """Measured outcome of one scenario."""

    name: str
    n_frames: int
    frames_detected: int
    frames_jammed: int
    tx_duty_cycle: float
    control_errors: int
    chunks_processed: int
    chunks_skipped: int
    control_faults_injected: int
    stream_faults_injected: int
    scrub_repairs: list[int] = field(default_factory=list)
    driver_health: dict[str, int] = field(default_factory=dict)
    watchdog_trips: list[WatchdogTrip] = field(default_factory=list)

    @property
    def detection_probability(self) -> float:
        """Fraction of frames with at least one correlator detection."""
        return self.frames_detected / self.n_frames

    @property
    def jam_coverage(self) -> float:
        """Fraction of frames overlapped by at least one jam burst."""
        return self.frames_jammed / self.n_frames


def _build_jammer(scenario: ChaosScenario
                  ) -> tuple[ReactiveJammer, FaultyRegisterBus,
                             StreamFaultInjector, int]:
    """Construct the device under test, configured over a clean bus."""
    template = wifi_short_preamble_template()
    coeffs_i, coeffs_q = quantize_coefficients(template)
    threshold = threshold_for_false_alarm_rate(
        coeffs_i, coeffs_q, scenario.false_alarm_per_second)

    bus = FaultyRegisterBus(scenario.plan)
    bus.faults_enabled = False  # verified clean boot
    injector = StreamFaultInjector(scenario.plan,
                                   raise_on_overrun=scenario.raise_on_overrun)
    watchdog = Watchdog(scenario.watchdog) \
        if scenario.watchdog is not None else None
    device = UsrpN210(bus=bus, watchdog=watchdog, stream_faults=injector)
    jammer = ReactiveJammer(device=device, verify_writes=scenario.hardened)
    jammer.configure(
        detection=DetectionConfig(template=template,
                                  xcorr_threshold=threshold),
        events=JammingEventBuilder().on_correlation(),
        personality=JammerPersonality(
            name="chaos-reactive", uptime_samples=UPTIME_LONG_SAMPLES),
    )
    bus.faults_enabled = True
    return jammer, bus, injector, threshold


def run_scenario(scenario: ChaosScenario) -> ChaosResult:
    """Execute one scenario and measure detection/coverage/duty."""
    jammer, bus, injector, threshold = _build_jammer(scenario)
    template = wifi_short_preamble_template()
    burst = np.tile(template, scenario.burst_repeats)
    if GUARD_SAMPLES + burst.size > scenario.frame_samples:
        raise ConfigurationError(
            f"frame_samples {scenario.frame_samples} too short for the "
            f"guard ({GUARD_SAMPLES}) plus burst ({burst.size})"
        )
    template_power = float(np.mean(np.abs(template) ** 2))
    burst_scale = np.sqrt(
        scenario.noise_power * 10.0 ** (scenario.snr_db / 10.0)
        / template_power
    )
    sigma = np.sqrt(scenario.noise_power / 2.0)
    rng = np.random.default_rng([scenario.seed, 7])

    frames_detected = 0
    frames_jammed = 0
    tx_active = 0
    total_samples = 0
    control_errors = 0
    chunks_processed = 0
    chunks_skipped = 0
    scrub_repairs: list[int] = []
    last_health = None

    for index in range(scenario.n_frames):
        uptime = UPTIME_SHORT_SAMPLES if index % 2 \
            else UPTIME_LONG_SAMPLES
        try:
            # The per-frame host churn the faults get to corrupt.
            jammer.driver.set_xcorr_threshold(threshold)
            jammer.driver.set_jam_uptime(uptime)
        except (ConfigurationError, HardwareError):
            # An unhardened host survives by dropping the update; the
            # register keeps whatever (possibly corrupt) word landed.
            control_errors += 1

        seg_start = jammer.device.core.clock
        n = scenario.frame_samples
        segment = sigma * (rng.standard_normal(n)
                           + 1j * rng.standard_normal(n))
        segment[GUARD_SAMPLES:GUARD_SAMPLES + burst.size] += \
            burst_scale * burst
        report = jammer.run(
            segment, chunk_size=scenario.chunk_size,
            degradation=scenario.degradation,
            scrub_every_chunks=(scenario.scrub_every_chunks
                                if scenario.hardened else 0),
        )
        burst_lo = seg_start + GUARD_SAMPLES
        burst_hi = burst_lo + burst.size + DETECTION_SLACK_SAMPLES
        if any(d.source is TriggerSource.XCORR
               and burst_lo <= d.time < burst_hi
               for d in report.detections):
            frames_detected += 1
        if any(j.start < burst_hi and j.end > burst_lo
               for j in report.jams):
            frames_jammed += 1
        tx_active += int(np.count_nonzero(report.tx))
        total_samples += n
        chunks_processed += report.health.chunks_processed
        chunks_skipped += report.health.chunks_skipped
        scrub_repairs.extend(report.health.scrub_repairs)
        last_health = report.health

    return ChaosResult(
        name=scenario.name,
        n_frames=scenario.n_frames,
        frames_detected=frames_detected,
        frames_jammed=frames_jammed,
        tx_duty_cycle=tx_active / total_samples,
        control_errors=control_errors,
        chunks_processed=chunks_processed,
        chunks_skipped=chunks_skipped,
        control_faults_injected=len(bus.fault_log),
        stream_faults_injected=len(injector.fault_log),
        scrub_repairs=scrub_repairs,
        driver_health=dict(last_health.driver) if last_health else {},
        watchdog_trips=list(last_health.watchdog_trips)
        if last_health else [],
    )


def run_campaign(scenarios: list[ChaosScenario]) -> dict[str, ChaosResult]:
    """Run several scenarios and index the results by name."""
    results: dict[str, ChaosResult] = {}
    for scenario in scenarios:
        if scenario.name in results:
            raise ConfigurationError(
                f"duplicate scenario name {scenario.name!r}"
            )
        results[scenario.name] = run_scenario(scenario)
    return results
