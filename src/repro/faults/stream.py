"""RX stream-fault stage: the 25 MSPS data path misbehaving.

:class:`StreamFaultInjector` sits between the antenna port and the DDC
and replays the stream schedule of a :class:`~repro.faults.plan.FaultPlan`
onto the received baseband:

* **overruns** — runs of samples the host never saw, delivered as
  zeros (the UHD "O" condition; the timeline stays aligned, the
  information is gone);
* **DC spikes** — a constant complex offset for the run (front-end
  re-lock and antenna-switch glitches);
* **gain steps** — the run scaled by a constant factor (AGC chatter,
  attenuator relay bounce);
* **stuck runs** — the first sample of the run repeated (a frozen
  ADC/FIFO word).

The injector carries an absolute sample clock, so the realized fault
pattern is independent of how the caller chunks the stream — the same
chunk-size-invariance contract the DSP core itself honors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError
from repro.faults.plan import FaultPlan, StreamFault, StreamFaultKind


class StreamFaultInjector:
    """Applies a plan's stream faults to received chunks in order.

    ``raise_on_overrun=True`` upgrades overruns from silent sample
    loss to a :class:`~repro.errors.StreamError` raised before the
    chunk is delivered — the libuhd behaviour of a stream call that
    dies on a severe overflow.  The surrounding recovery path
    (``ReactiveJammer.run`` with the skip-and-log policy) is what is
    being exercised then.
    """

    def __init__(self, plan: FaultPlan,
                 raise_on_overrun: bool = False) -> None:
        self.plan = plan
        self.raise_on_overrun = raise_on_overrun
        self.fault_log: list[StreamFault] = []
        self._events = plan.stream_events() if plan.stream else iter(())
        self._next_event: StreamFault | None = None
        self._active: list[StreamFault] = []
        self._stuck_values: dict[int, complex] = {}
        self._clock = 0

    @property
    def clock(self) -> int:
        """Absolute index of the next sample to arrive."""
        return self._clock

    def _pull_events(self, end: int) -> None:
        """Move every event starting before ``end`` into the active set."""
        while True:
            if self._next_event is None:
                self._next_event = next(self._events, None)
            if self._next_event is None or self._next_event.start >= end:
                return
            self._active.append(self._next_event)
            self.fault_log.append(self._next_event)
            self._next_event = None

    def _retire(self, end: int) -> None:
        still: list[StreamFault] = []
        for event in self._active:
            if event.end > end:
                still.append(event)
            else:
                self._stuck_values.pop(event.start, None)
        self._active = still

    def process(self, chunk: np.ndarray) -> np.ndarray:
        """Return ``chunk`` with every overlapping fault applied."""
        chunk = np.asarray(chunk, dtype=np.complex128)
        if chunk.ndim != 1:
            raise StreamError("StreamFaultInjector expects a 1-D chunk")
        n = chunk.size
        if n == 0:
            return chunk
        start, end = self._clock, self._clock + n
        self._pull_events(end)
        if self.raise_on_overrun:
            for event in self._active:
                if (event.kind is StreamFaultKind.OVERRUN
                        and event.start < end and event.end > start):
                    raise StreamError(
                        f"RX overrun: {event.duration} samples lost at "
                        f"sample {event.start}"
                    )
        out = chunk.copy()
        for event in self._active:
            lo = max(event.start, start)
            hi = min(event.end, end)
            if hi > lo:
                self._apply(event, out, lo - start, hi - start)
        self._retire(end)
        self._clock = end
        return out

    def skip(self, n: int) -> None:
        """Advance the fault timeline without delivering samples.

        Used by the recovery path when a chunk is dropped: the faults
        that would have hit it are consumed so the schedule stays
        aligned with the absolute sample clock.
        """
        if n < 0:
            raise StreamError("cannot skip a negative number of samples")
        end = self._clock + n
        self._pull_events(end)
        self._retire(end)
        self._clock = end

    def _apply(self, event: StreamFault, out: np.ndarray,
               lo: int, hi: int) -> None:
        if event.kind is StreamFaultKind.OVERRUN:
            out[lo:hi] = 0.0
        elif event.kind is StreamFaultKind.DC_SPIKE:
            out[lo:hi] += event.magnitude
        elif event.kind is StreamFaultKind.GAIN_STEP:
            out[lo:hi] *= event.magnitude
        else:  # STUCK: the word at the run's first sample repeats.
            held = self._stuck_values.setdefault(
                event.start, complex(out[lo]))
            out[lo:hi] = held
