"""Deterministic fault injection for the control and data planes.

The real N210's control plane is UDP-borne ``set_user_register``
datagrams and its data plane is a 25 MSPS UDP sample stream — both
lossy in ways the clean simulation otherwise hides.  This package
scripts those failure modes so the hardening in :mod:`repro.hw` and
:mod:`repro.core` can be exercised deterministically:

* :mod:`repro.faults.plan` — the seedable fault-plan DSL
  (:class:`FaultPlan` and its spec/record types);
* :mod:`repro.faults.bus` — :class:`FaultyRegisterBus`, a drop-in
  register bus that drops/delays/duplicates/bit-flips writes;
* :mod:`repro.faults.stream` — :class:`StreamFaultInjector`, the RX
  antenna-port stage injecting overruns, DC spikes, gain steps, and
  stuck-sample runs;
* :mod:`repro.faults.chaos` — scenario/campaign runners measuring
  detection probability, jam coverage, and duty cycle under faults;
* :mod:`repro.faults.workers` — :class:`WorkerFaultPlan` /
  :class:`WorkerFaultInjector`, seeded process-level kill/hang/slow
  faults for chaos-testing the fault-tolerant sweep layer
  (:mod:`repro.runtime.jobs`).
"""

from __future__ import annotations

from repro.faults.plan import (
    NO_FAULTS,
    ControlFault,
    ControlFaultKind,
    ControlFaultSpec,
    FaultPlan,
    StreamFault,
    StreamFaultKind,
    StreamFaultSpec,
)
from repro.faults.bus import FaultyRegisterBus, InjectedFault
from repro.faults.stream import StreamFaultInjector
from repro.faults.chaos import (
    ChaosResult,
    ChaosScenario,
    run_campaign,
    run_scenario,
)
from repro.faults.workers import (
    NO_WORKER_FAULTS,
    WorkerFault,
    WorkerFaultInjector,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerFaultSpec,
)

__all__ = [
    "FaultPlan",
    "ControlFaultSpec",
    "StreamFaultSpec",
    "ControlFaultKind",
    "StreamFaultKind",
    "ControlFault",
    "StreamFault",
    "NO_FAULTS",
    "FaultyRegisterBus",
    "InjectedFault",
    "StreamFaultInjector",
    "ChaosScenario",
    "ChaosResult",
    "run_scenario",
    "run_campaign",
    "NO_WORKER_FAULTS",
    "WorkerFault",
    "WorkerFaultInjector",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "WorkerFaultSpec",
]
