"""The fault-plan DSL: deterministic, seedable fault campaigns.

The real jammer's control plane is a sequence of UDP-borne
``set_user_register`` datagrams and its data plane is a 25 MSPS
Ethernet sample stream — both of which drop, reorder, and corrupt in
the field.  A :class:`FaultPlan` scripts those failure modes so
experiments and tests can replay them exactly:

* **control-plane faults** operate at register-write granularity
  (drop, delay, duplicate, bit-flip — the UDP pathologies);
* **stream faults** operate on the received sample timeline (overruns,
  DC spikes, gain steps, stuck-sample runs — the RX-chain pathologies).

Determinism contract: a plan is a frozen value object, and every
schedule derived from it is a pure function of ``(plan, seed)``.
Replaying the same plan yields a byte-identical schedule
(:meth:`FaultPlan.schedule_digest`), which is what lets the chaos
benchmarks assert exact numbers and lets a failing campaign be
re-run under a debugger.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError

#: Bits in one register word (faults flip one of these per event).
WORD_BITS = 32

#: Default delayed-write skew, in bus operations (UDP reordering is
#: shallow: a datagram lands a handful of operations late, not minutes).
DEFAULT_MAX_DELAY_OPS = 4

#: Stream substreams are decorrelated from control substreams by fixed
#: domain tags mixed into the seed sequence.
_CONTROL_DOMAIN = 1
_STREAM_DOMAIN = 2


class ControlFaultKind(enum.Enum):
    """What can happen to one register write on the control path."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    BITFLIP = "bitflip"


class StreamFaultKind(enum.Enum):
    """What can happen to a run of received samples on the data path."""

    OVERRUN = "overrun"
    DC_SPIKE = "dc-spike"
    GAIN_STEP = "gain-step"
    STUCK = "stuck"


@dataclass(frozen=True)
class ControlFaultSpec:
    """One control-plane failure mode and its rate.

    Attributes:
        kind: The fault applied to a selected write.
        rate: Per-write probability in [0, 1].
        addresses: Optional register-address filter; when set, a
            selected write whose address is not in the set passes
            through clean (lets campaigns target e.g. the uptime
            register only).
        max_delay_ops: For DELAY faults, the worst-case skew in bus
            operations (the delayed word lands before the N-th
            subsequent bus access).
    """

    kind: ControlFaultKind
    rate: float
    addresses: frozenset[int] | None = None
    max_delay_ops: int = DEFAULT_MAX_DELAY_OPS

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"control fault rate {self.rate} outside [0, 1]"
            )
        if self.max_delay_ops < 1:
            raise ConfigurationError("max_delay_ops must be >= 1")


@dataclass(frozen=True)
class StreamFaultSpec:
    """One data-plane failure mode and its rate.

    Attributes:
        kind: The fault applied to each scheduled run of samples.
        rate_per_million: Expected number of fault events per million
            received samples (1e6 samples = 40 ms at 25 MSPS).
        duration_samples: Length of each fault run.
        magnitude: Kind-specific strength — the complex-plane offset
            of a DC spike, or the linear gain factor of a gain step
            (ignored for overruns and stuck runs).
    """

    kind: StreamFaultKind
    rate_per_million: float
    duration_samples: int = 64
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_per_million <= 0.0:
            raise ConfigurationError(
                f"stream fault rate {self.rate_per_million} must be positive"
            )
        if self.duration_samples < 1:
            raise ConfigurationError("duration_samples must be >= 1")


@dataclass(frozen=True)
class ControlFault:
    """One scheduled control-plane fault decision.

    ``spec_index`` points back into ``plan.control`` so the bus can
    apply the spec's address filter; ``bit`` and ``delay_ops`` carry
    the kind-specific parameters drawn for this event.
    """

    op_index: int
    kind: ControlFaultKind
    spec_index: int
    bit: int = 0
    delay_ops: int = 0


@dataclass(frozen=True)
class StreamFault:
    """One scheduled stream fault on the absolute sample timeline."""

    start: int
    duration: int
    kind: StreamFaultKind
    magnitude: float

    @property
    def end(self) -> int:
        """First sample index past the fault run (end exclusive)."""
        return self.start + self.duration


def _freeze_addresses(addresses: Iterable[int] | None) -> frozenset[int] | None:
    return None if addresses is None else frozenset(int(a) for a in addresses)


@dataclass(frozen=True)
class FaultPlan:
    """A scripted, replayable fault campaign.

    Plans are immutable; the builder methods return extended copies so
    campaigns read as a chain::

        plan = (FaultPlan(seed=7)
                .drop_writes(0.05)
                .bitflip_writes(0.01)
                .overruns(rate_per_million=20, duration_samples=128))
    """

    seed: int = 0
    control: tuple[ControlFaultSpec, ...] = ()
    stream: tuple[StreamFaultSpec, ...] = ()

    # ------------------------------------------------------------------
    # Builder DSL

    def with_control(self, spec: ControlFaultSpec) -> "FaultPlan":
        """Append a control-plane fault spec."""
        return replace(self, control=(*self.control, spec))

    def with_stream(self, spec: StreamFaultSpec) -> "FaultPlan":
        """Append a data-plane fault spec."""
        return replace(self, stream=(*self.stream, spec))

    def drop_writes(self, rate: float,
                    addresses: Iterable[int] | None = None) -> "FaultPlan":
        """Lose register writes outright (the UDP datagram never lands)."""
        return self.with_control(ControlFaultSpec(
            ControlFaultKind.DROP, rate, _freeze_addresses(addresses)))

    def delay_writes(self, rate: float,
                     max_delay_ops: int = DEFAULT_MAX_DELAY_OPS,
                     addresses: Iterable[int] | None = None) -> "FaultPlan":
        """Reorder register writes (the datagram lands a few ops late)."""
        return self.with_control(ControlFaultSpec(
            ControlFaultKind.DELAY, rate, _freeze_addresses(addresses),
            max_delay_ops=max_delay_ops))

    def duplicate_writes(self, rate: float,
                         addresses: Iterable[int] | None = None) -> "FaultPlan":
        """Deliver register writes twice (retransmit pathology)."""
        return self.with_control(ControlFaultSpec(
            ControlFaultKind.DUPLICATE, rate, _freeze_addresses(addresses)))

    def bitflip_writes(self, rate: float,
                       addresses: Iterable[int] | None = None) -> "FaultPlan":
        """Corrupt one uniformly-drawn bit of the written word."""
        return self.with_control(ControlFaultSpec(
            ControlFaultKind.BITFLIP, rate, _freeze_addresses(addresses)))

    def overruns(self, rate_per_million: float,
                 duration_samples: int = 128) -> "FaultPlan":
        """Inject RX overruns: runs of samples lost to the host."""
        return self.with_stream(StreamFaultSpec(
            StreamFaultKind.OVERRUN, rate_per_million, duration_samples))

    def dc_spikes(self, rate_per_million: float, duration_samples: int = 64,
                  magnitude: float = 0.1) -> "FaultPlan":
        """Inject DC offset spikes (front-end re-lock glitches)."""
        return self.with_stream(StreamFaultSpec(
            StreamFaultKind.DC_SPIKE, rate_per_million, duration_samples,
            magnitude))

    def gain_steps(self, rate_per_million: float, duration_samples: int = 256,
                   gain: float = 0.1) -> "FaultPlan":
        """Inject abrupt gain steps (AGC glitches, attenuator chatter)."""
        return self.with_stream(StreamFaultSpec(
            StreamFaultKind.GAIN_STEP, rate_per_million, duration_samples,
            gain))

    def stuck_runs(self, rate_per_million: float,
                   duration_samples: int = 64) -> "FaultPlan":
        """Inject stuck-sample runs (a frozen ADC/FIFO word repeats)."""
        return self.with_stream(StreamFaultSpec(
            StreamFaultKind.STUCK, rate_per_million, duration_samples))

    # ------------------------------------------------------------------
    # Deterministic schedules

    def control_decisions(self) -> Iterator[ControlFault | None]:
        """Infinite per-write decision stream (one entry per bus write).

        Each call restarts the stream from the plan seed, so two
        consumers (a live bus and a schedule dump) see identical
        decisions.  At most one fault applies per write; specs are
        consulted in plan order.
        """
        rng = np.random.default_rng([int(self.seed), _CONTROL_DOMAIN])
        op_index = 0
        while True:
            decision: ControlFault | None = None
            for spec_index, spec in enumerate(self.control):
                if rng.random() >= spec.rate:
                    continue
                bit = 0
                delay_ops = 0
                if spec.kind is ControlFaultKind.BITFLIP:
                    bit = int(rng.integers(0, WORD_BITS))
                elif spec.kind is ControlFaultKind.DELAY:
                    delay_ops = int(rng.integers(1, spec.max_delay_ops + 1))
                decision = ControlFault(op_index=op_index, kind=spec.kind,
                                        spec_index=spec_index, bit=bit,
                                        delay_ops=delay_ops)
                break
            yield decision
            op_index += 1

    def stream_events(self) -> Iterator[StreamFault]:
        """Infinite stream-fault events, ordered by start sample.

        Each spec gets an independent substream seeded from
        ``(seed, domain, spec_index)``; events from all specs are
        merged by start time.  Gaps between a spec's events are
        exponential with mean ``1e6 / rate_per_million`` samples.
        """
        per_spec: list[Iterator[StreamFault]] = [
            self._spec_events(index, spec)
            for index, spec in enumerate(self.stream)
        ]
        heads: list[StreamFault | None] = [next(it) for it in per_spec]
        while any(head is not None for head in heads):
            index = min(
                (i for i, head in enumerate(heads) if head is not None),
                key=lambda i: (heads[i].start, i),
            )
            event = heads[index]
            assert event is not None
            heads[index] = next(per_spec[index])
            yield event

    def _spec_events(self, spec_index: int,
                     spec: StreamFaultSpec) -> Iterator[StreamFault]:
        rng = np.random.default_rng(
            [int(self.seed), _STREAM_DOMAIN, spec_index])
        mean_gap = 1e6 / spec.rate_per_million
        clock = 0
        while True:
            gap = 1 + int(rng.exponential(mean_gap))
            start = clock + gap
            clock = start + spec.duration_samples
            yield StreamFault(start=start, duration=spec.duration_samples,
                              kind=spec.kind, magnitude=spec.magnitude)

    def control_schedule(self, n_writes: int) -> list[ControlFault | None]:
        """The first ``n_writes`` control decisions, as a list."""
        decisions = self.control_decisions()
        return [next(decisions) for _ in range(n_writes)]

    def stream_schedule(self, n_samples: int) -> list[StreamFault]:
        """All stream events starting before sample ``n_samples``."""
        events: list[StreamFault] = []
        if not self.stream:
            return events
        for event in self.stream_events():
            if event.start >= n_samples:
                break
            events.append(event)
        return events

    def schedule_digest(self, n_writes: int = 256,
                        n_samples: int = 1_000_000) -> bytes:
        """Canonical byte encoding of the plan's fault schedule.

        Two plans with equal specs and seed produce identical digests;
        this is the replayability contract the property tests pin down.
        """
        control = ";".join(
            "-" if decision is None else
            f"{decision.op_index}:{decision.kind.value}"
            f":{decision.spec_index}:{decision.bit}:{decision.delay_ops}"
            for decision in self.control_schedule(n_writes)
        )
        stream = ";".join(
            f"{event.start}:{event.duration}:{event.kind.value}"
            f":{event.magnitude!r}"
            for event in self.stream_schedule(n_samples)
        )
        return f"control[{control}]|stream[{stream}]".encode("ascii")


# Re-exported convenience: an empty plan injects nothing and is the
# identity element for the builder chain.
NO_FAULTS = FaultPlan()


__all__ = [
    "ControlFault",
    "ControlFaultKind",
    "ControlFaultSpec",
    "DEFAULT_MAX_DELAY_OPS",
    "FaultPlan",
    "NO_FAULTS",
    "StreamFault",
    "StreamFaultKind",
    "StreamFaultSpec",
    "WORD_BITS",
]
