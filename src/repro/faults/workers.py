"""Process-level worker faults: seeded kill/hang/slow-worker plans.

:mod:`repro.faults.plan` scripts what goes wrong on the *device* —
dropped register writes, RX overruns.  This module scripts what goes
wrong on the *host* running a sweep: a worker process segfaults or is
OOM-killed mid-shard, wedges on a dead NFS mount, or grinds at a tenth
of its usual speed on an oversubscribed box.  The fault-tolerant job
layer (:mod:`repro.runtime.jobs`) is supervised precisely against
these modes, and a :class:`WorkerFaultInjector` makes that supervision
chaos-testable instead of theoretical.

Determinism contract (same as :class:`~repro.faults.plan.FaultPlan`):
a :class:`WorkerFaultPlan` is a frozen value object and every decision
is a pure function of ``(plan, shard_index, attempt)`` — never of
scheduling order or wall time.  Replaying a plan yields a
byte-identical schedule (:meth:`WorkerFaultPlan.schedule_digest`), so
the chaos benchmarks can assert exact crash counts and a failing
campaign can be re-run under a debugger.

Faults are evaluated *per shard attempt*: a shard killed on attempt 0
gets a fresh decision on attempt 1, which is how a plan expresses
"crash twice, then recover" (filter on ``attempts={0, 1}``) versus a
poison shard that must be quarantined (no ``attempts`` filter with
``rate=1``).
"""

from __future__ import annotations

import enum
import os
import time
from collections.abc import Iterable
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError

#: Exit status a killed worker dies with (mirrors SIGKILL's 128+9 so a
#: real supervisor's logs read the same for injected and real kills).
KILL_EXIT_CODE = 137

#: Seed-sequence domain tag decorrelating worker-fault draws from the
#: control/stream domains of :mod:`repro.faults.plan`.
_WORKER_DOMAIN = 3


class WorkerFaultKind(enum.Enum):
    """What can happen to one shard attempt on the host."""

    KILL = "kill"
    HANG = "hang"
    SLOW = "slow"


@dataclass(frozen=True)
class WorkerFaultSpec:
    """One host-side failure mode and its selection rule.

    Attributes:
        kind: The fault applied to a selected shard attempt.
        rate: Per-attempt probability in [0, 1].
        shard_indices: Optional shard filter; when set, attempts on
            other shards pass through clean (lets a campaign target
            exactly the shards whose loss it wants to measure).
        attempts: Optional attempt filter; ``{0}`` means "first try
            only" (the shard recovers on retry), ``None`` applies the
            rate to every attempt (a poison-shard pathology).
        duration_s: For HANG/SLOW faults, how long the worker stalls.
            A HANG should exceed the sweep's shard deadline (that is
            what makes it a hang); a SLOW should not.
    """

    kind: WorkerFaultKind
    rate: float = 1.0
    shard_indices: frozenset[int] | None = None
    attempts: frozenset[int] | None = frozenset({0})
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"worker fault rate {self.rate} outside [0, 1]")
        if self.duration_s < 0.0:
            raise ConfigurationError("duration_s must be >= 0")
        if self.kind is WorkerFaultKind.HANG and self.duration_s == 0.0:
            raise ConfigurationError("a HANG fault needs duration_s > 0")

    def selects(self, shard_index: int, attempt: int) -> bool:
        """Whether this spec's filters admit the given shard attempt."""
        if self.shard_indices is not None \
                and shard_index not in self.shard_indices:
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker-fault decision for a shard attempt."""

    shard_index: int
    attempt: int
    kind: WorkerFaultKind
    spec_index: int
    duration_s: float = 0.0


def _freeze(values: Iterable[int] | None) -> frozenset[int] | None:
    return None if values is None else frozenset(int(v) for v in values)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A scripted, replayable host-fault campaign.

    Plans are immutable; builder methods return extended copies::

        plan = (WorkerFaultPlan(seed=7)
                .kill_shards({0, 3})                  # die on first try
                .hang_workers(0.05, duration_s=30.0)) # 5% of attempts wedge
    """

    seed: int = 0
    specs: tuple[WorkerFaultSpec, ...] = ()

    # ------------------------------------------------------------------
    # Builder DSL

    def with_spec(self, spec: WorkerFaultSpec) -> "WorkerFaultPlan":
        """Append a worker-fault spec."""
        return replace(self, specs=(*self.specs, spec))

    def kill_shards(self, shard_indices: Iterable[int],
                    attempts: Iterable[int] | None = (0,)
                    ) -> "WorkerFaultPlan":
        """Kill the worker outright on the named shards' attempts."""
        return self.with_spec(WorkerFaultSpec(
            WorkerFaultKind.KILL, rate=1.0,
            shard_indices=_freeze(shard_indices),
            attempts=_freeze(attempts)))

    def kill_workers(self, rate: float,
                     attempts: Iterable[int] | None = (0,)
                     ) -> "WorkerFaultPlan":
        """Kill a seeded fraction of shard attempts (OOM-killer model)."""
        return self.with_spec(WorkerFaultSpec(
            WorkerFaultKind.KILL, rate=rate, attempts=_freeze(attempts)))

    def hang_workers(self, rate: float, duration_s: float,
                     shard_indices: Iterable[int] | None = None,
                     attempts: Iterable[int] | None = (0,)
                     ) -> "WorkerFaultPlan":
        """Wedge a seeded fraction of shard attempts for ``duration_s``."""
        return self.with_spec(WorkerFaultSpec(
            WorkerFaultKind.HANG, rate=rate,
            shard_indices=_freeze(shard_indices),
            attempts=_freeze(attempts), duration_s=duration_s))

    def slow_workers(self, rate: float, duration_s: float,
                     attempts: Iterable[int] | None = None
                     ) -> "WorkerFaultPlan":
        """Stall a seeded fraction of shard attempts (stays under deadline)."""
        return self.with_spec(WorkerFaultSpec(
            WorkerFaultKind.SLOW, rate=rate,
            attempts=_freeze(attempts), duration_s=duration_s))

    # ------------------------------------------------------------------
    # Deterministic schedule

    def decision(self, shard_index: int, attempt: int) -> WorkerFault | None:
        """The fault (if any) for one shard attempt.

        A pure function of ``(plan, shard_index, attempt)``: the draw
        is seeded per attempt, so the decision is identical no matter
        which worker runs the shard, in what order, or how often the
        supervisor re-asks.  At most one fault applies per attempt;
        specs are consulted in plan order.
        """
        rng = np.random.default_rng(
            [int(self.seed), _WORKER_DOMAIN, int(shard_index), int(attempt)])
        for spec_index, spec in enumerate(self.specs):
            draw = rng.random()  # always drawn: keeps substreams aligned
            if not spec.selects(shard_index, attempt):
                continue
            if draw >= spec.rate:
                continue
            return WorkerFault(shard_index=shard_index, attempt=attempt,
                               kind=spec.kind, spec_index=spec_index,
                               duration_s=spec.duration_s)
        return None

    def schedule(self, n_shards: int,
                 n_attempts: int = 3) -> list[WorkerFault]:
        """Every fault decided over an ``n_shards x n_attempts`` grid."""
        return [
            fault
            for shard in range(n_shards)
            for attempt in range(n_attempts)
            if (fault := self.decision(shard, attempt)) is not None
        ]

    def schedule_digest(self, n_shards: int = 64,
                        n_attempts: int = 3) -> bytes:
        """Canonical byte encoding of the plan's fault schedule.

        Two plans with equal specs and seed produce identical digests —
        the replayability contract, mirrored from
        :meth:`repro.faults.plan.FaultPlan.schedule_digest`.
        """
        return ";".join(
            f"{f.shard_index}.{f.attempt}:{f.kind.value}"
            f":{f.spec_index}:{f.duration_s!r}"
            for f in self.schedule(n_shards, n_attempts)
        ).encode("ascii")


#: The identity plan: injects nothing.
NO_WORKER_FAULTS = WorkerFaultPlan()


@dataclass(frozen=True)
class WorkerFaultInjector:
    """Applies a :class:`WorkerFaultPlan` inside sweep workers.

    The job layer passes the injector (a small frozen value object —
    it pickles into every shard submission) to the worker-side shard
    entry point, which calls :meth:`apply` before running the trials:

    * ``KILL`` — in a pool worker the process exits immediately with
      :data:`KILL_EXIT_CODE` via ``os._exit`` (no cleanup, exactly
      like SIGKILL), which the supervisor observes as
      ``BrokenProcessPool``.  In the serial in-process path the same
      decision raises :class:`~repro.errors.WorkerCrashError` instead
      — the retry logic is exercised without sacrificing the host.
    * ``HANG`` — the worker sleeps ``duration_s``; chosen longer than
      the shard deadline, the supervisor sees a missed heartbeat.
    * ``SLOW`` — the worker sleeps ``duration_s``; chosen shorter than
      the deadline, the shard completes late but successfully (the
      backpressure/ordering paths get exercised, not the retry path).
    """

    plan: WorkerFaultPlan = NO_WORKER_FAULTS

    def apply(self, shard_index: int, attempt: int,
              in_worker: bool = True) -> None:
        """Enact this attempt's scheduled fault (if any)."""
        fault = self.plan.decision(shard_index, attempt)
        if fault is None:
            return
        if fault.kind is WorkerFaultKind.KILL:
            if in_worker:
                os._exit(KILL_EXIT_CODE)
            raise WorkerCrashError(
                f"injected worker kill on shard {shard_index} "
                f"attempt {attempt}")
        # HANG and SLOW both stall; the *supervisor's* deadline decides
        # which one it was — exactly as in production.
        if fault.duration_s > 0.0:
            time.sleep(fault.duration_s)


__all__ = [
    "KILL_EXIT_CODE",
    "NO_WORKER_FAULTS",
    "WorkerFault",
    "WorkerFaultInjector",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "WorkerFaultSpec",
]
