"""Jamming-based secure communication schemes built on the framework.

The paper's introduction anticipates that the platform will be used
"to prototype several classes of jamming-based secure communication
schemes" and cites two families; both are implemented here on top of
the same hardware model the jammer uses:

* :mod:`repro.apps.ijam` — iJam-style self-jamming secrecy (Gollakota
  & Katabi): the receiver jams one of each pair of repeated symbols;
  it knows which copy is clean, an eavesdropper does not.  The paper
  specifically notes iJam's need for "dummy paddings ... to account
  for the decoding and jamming response delays"; this implementation
  quantifies how the framework's 2.64 us response shrinks that pad.
* :mod:`repro.apps.friendly_jamming` — ally/friendly jamming (Shen et
  al.): a continuous key-seeded jamming signal that authorized
  receivers regenerate and cancel while unauthorized ones cannot —
  implemented directly on the transmit controller's seeded WGN
  generator.

The countermeasure side the paper's conclusion calls for lives here
too:

* :mod:`repro.apps.jamming_detector` — the Xu et al. (MobiHoc 2005,
  the paper's reference [15]) consistency-check classifier that
  fingerprints jamming from PDR/RSSI inconsistency and types the
  attacker from the channel-busy fraction.

And the "sophisticated attacks" the paper's §5 says protocol
awareness enables:

* :mod:`repro.apps.packet_injection` — jam-and-spoof ACK injection:
  corrupt a data frame at the AP while forging the ACK the sender
  expects, so the loss is invisible to the victim.
"""

from __future__ import annotations

from repro.apps.ijam import IjamLink, IjamResult
from repro.apps.friendly_jamming import FriendlyJammingLink, FriendlyJammingResult
from repro.apps.jamming_detector import JammingDetector, LinkVerdict
from repro.apps.packet_injection import AckInjectionAttack, InjectionResult

__all__ = [
    "IjamLink",
    "IjamResult",
    "FriendlyJammingLink",
    "FriendlyJammingResult",
    "JammingDetector",
    "LinkVerdict",
    "AckInjectionAttack",
    "InjectionResult",
]
