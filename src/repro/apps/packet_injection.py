"""Protocol-aware packet injection (paper §5).

"Having both effective detection and protocol awareness can enable a
wide range of sophisticated attacks, such as ... malicious wireless
packet injection to interfere with ongoing communications."

The implemented attack is the classic jam-and-spoof ACK injection:

1. the attacker's correlator detects a victim data frame's preamble;
2. a surgical burst corrupts the frame at the access point, so the
   real AP never ACKs;
3. using the host-stream transmit path and the jam-delay register,
   the attacker transmits a *forged, standard-compliant ACK* exactly
   one SIFS after the data frame ends.

The sending station decodes a valid ACK and believes its frame was
delivered — the data silently vanishes without any retransmission,
which is far more damaging than loss the sender can see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import JammerPersonality
from repro.dsp.resample import resample
from repro.errors import ConfigurationError, DecodeError
from repro.hw.tx_controller import JamWaveform
from repro.mac.dcf import SIFS_S
from repro.phy.bits import check_fcs
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu, ppdu_duration_us
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.receiver import WifiReceiver

#: 802.11 ACK frame control field (subtype 13, type 1 control).
_ACK_FRAME_CONTROL = bytes([0xD4, 0x00])


def forge_ack_psdu(receiver_address: bytes) -> bytes:
    """A standard-compliant ACK MAC frame with a valid FCS."""
    from repro.mac.dot11 import build_ack_frame

    if len(receiver_address) != 6:
        raise ConfigurationError("receiver_address must be 6 bytes")
    return build_ack_frame(receiver_address)


def is_valid_ack(psdu: bytes, receiver_address: bytes) -> bool:
    """Whether a decoded PSDU is a well-formed ACK for this station."""
    return (len(psdu) == 14
            and psdu[:2] == _ACK_FRAME_CONTROL
            and psdu[4:10] == receiver_address
            and check_fcs(psdu))


@dataclass
class InjectionResult:
    """Outcome of one jam-and-spoof exchange."""

    data_frame_jammed: bool
    forged_ack_decoded: bool
    ack_timing_error_s: float

    @property
    def attack_succeeded(self) -> bool:
        """Frame destroyed at the AP, yet the sender saw a valid ACK."""
        return self.data_frame_jammed and self.forged_ack_decoded


class AckInjectionAttack:
    """The jam-and-spoof attacker built from two framework devices.

    One ReactiveJammer instance corrupts the data frame; a second —
    sharing the same detection template — injects the forged ACK via
    the host-stream waveform after a surgical delay of (remaining
    frame time + SIFS).  A real deployment would use one full-duplex
    device with two trigger profiles; two instances keep the example
    readable.
    """

    def __init__(self, station_address: bytes = b"\x02APVIC",
                 data_rate: WifiRate = WifiRate.MBPS_24,
                 psdu_bytes: int = 300, snr_db: float = 25.0,
                 jam_gain_db: float = -6.0) -> None:
        self.station_address = station_address
        self.data_rate = data_rate
        self.psdu_bytes = int(psdu_bytes)
        self.snr_db = float(snr_db)
        self.jam_gain_db = float(jam_gain_db)
        rng = np.random.default_rng(0xACE)
        self._template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))

    def _make_jammer(self, personality: JammerPersonality) -> ReactiveJammer:
        from repro.core.coeffs import wifi_short_preamble_template

        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=personality,
        )
        return jammer

    def run(self, rng: np.random.Generator) -> InjectionResult:
        """One victim data frame against the jam-and-spoof attacker."""
        noise_floor = 1e-4
        psdu = rng.integers(0, 256, self.psdu_bytes, dtype=np.uint8).tobytes()
        data_wave = build_ppdu(psdu, WifiFrameConfig(rate=self.data_rate))
        frame_duration_s = ppdu_duration_us(self.psdu_bytes,
                                            self.data_rate) * 1e-6

        from repro.channel.combining import Transmission, mix_at_port

        frame_start_s = 60e-6
        capture_len_s = frame_start_s + frame_duration_s + 200e-6
        rx = mix_at_port(
            [Transmission(data_wave, WIFI_SAMPLE_RATE, frame_start_s,
                          power=units.db_to_linear(self.snr_db) * noise_floor)],
            out_rate=units.BASEBAND_RATE, duration=capture_len_s,
            noise_power=noise_floor, rng=rng,
        )

        # Attacker half 1: surgical burst into the data field.
        burst = self._make_jammer(JammerPersonality(
            name="surgical", uptime_samples=units.seconds_to_samples(30e-6),
            delay_samples=units.seconds_to_samples(30e-6),
            waveform=JamWaveform.WGN))
        burst.device.set_tx_amplitude_db(self.jam_gain_db)
        burst_report = burst.run(rx)

        # Attacker half 2: the forged ACK, injected one SIFS after the
        # data frame ends.  Trigger fires T_resp into the frame; the
        # host-stream pattern must wait out the remainder plus SIFS.
        ack_psdu = forge_ack_psdu(self.station_address)
        ack_wave = build_ppdu(ack_psdu, WifiFrameConfig(rate=WifiRate.MBPS_24))
        ack_at_25 = resample(ack_wave, WIFI_SAMPLE_RATE, units.BASEBAND_RATE)
        t_resp_samples = 66  # 64-sample detection + 2-sample TX init
        wait = units.seconds_to_samples(frame_duration_s + SIFS_S) \
            - t_resp_samples
        pattern = np.concatenate([
            np.zeros(max(wait, 0), dtype=np.complex128),
            ack_at_25 * units.db_to_amplitude(self.snr_db)
            * np.sqrt(noise_floor) * np.sqrt(2.0),
        ])
        injector = self._make_jammer(JammerPersonality(
            name="ack-forger", uptime_samples=pattern.size,
            waveform=JamWaveform.HOST_STREAM))
        injector.device.core.tx.set_host_waveform(pattern)
        injection_report = injector.run(rx)

        on_air = rx + burst_report.tx + injection_report.tx

        # The AP's view: does the data frame survive?
        ap_capture = resample(on_air, units.BASEBAND_RATE, WIFI_SAMPLE_RATE)
        try:
            ap_result = WifiReceiver().receive(ap_capture)
            frame_jammed = ap_result.psdu != psdu
        except DecodeError:
            frame_jammed = True

        # The station's view after its frame: a valid ACK?
        ack_window_start = int((frame_start_s + frame_duration_s)
                               * WIFI_SAMPLE_RATE)
        station_capture = ap_capture[ack_window_start:]
        forged_ok = False
        timing_error_s = float("inf")
        try:
            station_result = WifiReceiver().receive(station_capture)
            forged_ok = is_valid_ack(station_result.psdu,
                                     self.station_address)
            # start_index points at the SIGNAL field, 16 us (the
            # preamble) after the forged PPDU began.
            observed_sifs = station_result.start_index / WIFI_SAMPLE_RATE \
                - 16e-6
            timing_error_s = abs(observed_sifs - SIFS_S)
        except DecodeError:
            pass

        return InjectionResult(
            data_frame_jammed=frame_jammed,
            forged_ack_decoded=forged_ok,
            ack_timing_error_s=timing_error_s,
        )
