"""Ally/friendly jamming on the reactive jamming framework.

Shen et al. ("Ally Friendly Jamming", IEEE S&P 2013) "jam the wireless
channel continuously while properly controlling the jamming signals
with secret keys such that these signals interfere in an unpredictable
fashion with unauthorized devices but are recoverable by authorized
ones equipped with the secret keys" (paper §1).

This maps directly onto the framework's continuous WGN jammer: the
hardware's pseudorandom noise generator is **seeded**, and the seed is
the shared key.  An authorized receiver regenerates the exact jamming
waveform, estimates the jammer->receiver channel gain from a silent
training window, and subtracts; an unauthorized receiver faces the
full interference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import continuous_jammer
from repro.dsp.ofdm import OfdmParameters, ofdm_demodulate, ofdm_modulate
from repro.errors import ConfigurationError
from repro.phy.modulation import Modulation, hard_decide, map_bits

#: The protected data link's OFDM numerology.
LINK_OFDM = OfdmParameters(fft_size=64, cp_length=16,
                           sample_rate=units.BASEBAND_RATE)

_CARRIERS = np.array([k for k in range(-24, 25) if k != 0])


@dataclass
class FriendlyJammingResult:
    """Outcome of one protected transmission."""

    n_bits: int
    authorized_errors: int
    unauthorized_errors: int
    residual_jam_db: float

    @property
    def authorized_ber(self) -> float:
        """BER at the key-holding receiver after cancellation."""
        return self.authorized_errors / self.n_bits

    @property
    def unauthorized_ber(self) -> float:
        """BER at a receiver without the key."""
        return self.unauthorized_errors / self.n_bits


class FriendlyJammingLink:
    """A data link protected by key-controlled continuous jamming."""

    def __init__(self, key: int = 0x5EC2E7, snr_db: float = 25.0,
                 jam_to_signal_db: float = 6.0,
                 modulation: Modulation = Modulation.QPSK,
                 training_samples: int = 4096) -> None:
        if training_samples < 64:
            raise ConfigurationError("training window too short")
        self.key = int(key) & 0x3FFF_FFFF
        self.snr_db = float(snr_db)
        self.jam_to_signal_db = float(jam_to_signal_db)
        self.modulation = modulation
        self.training_samples = int(training_samples)

    def _data_waveform(self, bits: np.ndarray) -> np.ndarray:
        bits_per_symbol = self.modulation.bits_per_symbol * _CARRIERS.size
        if bits.size % bits_per_symbol:
            raise ConfigurationError(
                f"bit count must be a multiple of {bits_per_symbol}"
            )
        points = map_bits(bits, self.modulation).reshape(-1, _CARRIERS.size)
        return np.concatenate([
            ofdm_modulate(LINK_OFDM, _CARRIERS, row) for row in points
        ])

    def _demod(self, samples: np.ndarray) -> np.ndarray:
        sym = LINK_OFDM.symbol_length
        bits = []
        for start in range(0, samples.size, sym):
            points = ofdm_demodulate(LINK_OFDM, samples[start:start + sym],
                                     _CARRIERS)
            bits.append(hard_decide(points, self.modulation))
        return np.concatenate(bits)

    def run(self, bits: np.ndarray,
            rng: np.random.Generator) -> FriendlyJammingResult:
        """One protected transmission under continuous friendly jam."""
        bits = np.asarray(bits, dtype=np.uint8)
        data = self._data_waveform(bits)

        # The friendly jammer: the framework's continuous WGN with the
        # key as the generator seed.
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(),  # detection idle; always-on TX
            events=JammingEventBuilder().on_energy_rise(),
            personality=continuous_jammer(wgn_seed=self.key),
        )
        total = self.training_samples + data.size
        jam_gain = units.db_to_amplitude(self.jam_to_signal_db)
        report = jammer.run(np.zeros(total, dtype=np.complex128))
        jam_at_rx = jam_gain * report.tx

        noise_power = units.db_to_linear(-self.snr_db)
        on_air = jam_at_rx + awgn(total, noise_power, rng)
        on_air[self.training_samples:] += data

        # Authorized receiver: regenerate the key-stream on an
        # identical device, estimate the complex channel gain over the
        # silent training window, cancel, demodulate.
        twin = ReactiveJammer()
        twin.configure(
            detection=DetectionConfig(),
            events=JammingEventBuilder().on_energy_rise(),
            personality=continuous_jammer(wgn_seed=self.key),
        )
        reference = twin.run(np.zeros(total, dtype=np.complex128)).tx
        train_rx = on_air[:self.training_samples]
        train_ref = reference[:self.training_samples]
        gain = np.vdot(train_ref, train_rx) / np.vdot(train_ref, train_ref)
        cleaned = on_air - gain * reference
        residual = cleaned[:self.training_samples]
        residual_db = units.linear_to_db(
            max(units.signal_power(residual), 1e-15)
            / units.signal_power(jam_at_rx[:self.training_samples]))

        auth_bits = self._demod(cleaned[self.training_samples:])
        unauth_bits = self._demod(on_air[self.training_samples:])

        return FriendlyJammingResult(
            n_bits=bits.size,
            authorized_errors=int(np.sum(auth_bits != bits)),
            unauthorized_errors=int(np.sum(unauth_bits != bits)),
            residual_jam_db=float(residual_db),
        )
