"""Jamming detection at the victim — the countermeasure side.

The paper closes by positioning the testbed as "an effective tool for
studying and developing countermeasures to a new series of real-time
over-the-air physical layer attacks"; this module is the first such
countermeasure, implementing the consistency-check classifier of Xu,
Trappe, Zhang & Wood (MobiHoc 2005 — the paper's reference [15]):

* healthy link:  high delivery ratio;
* poor link:     low delivery ratio AND low signal strength — losses
  are explained by the channel;
* jammed link:   low delivery ratio at HIGH signal strength — the
  inconsistency that fingerprints jamming.

Given a jamming verdict, the channel-busy fraction separates the two
attacker types the paper demonstrates: a constant jammer keeps the
medium busy nearly always, a reactive jammer only in short bursts.

The window arithmetic (delivery ratio, busy fraction, mean RSSI) is
shared with the ML detection stack: :class:`LinkStatistics` delegates
to the scalar helpers in :mod:`repro.defense.features`, so this
rule-based classifier and the windowed feature extractor can never
drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.defense import features as _features
from repro.errors import ConfigurationError
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint
from repro.mac.simkernel import SimKernel


class LinkVerdict(enum.Enum):
    """The classifier's output states."""

    HEALTHY = "healthy"
    POOR_LINK = "poor-link"
    CONSTANT_JAMMER = "constant-jammer"
    REACTIVE_JAMMER = "reactive-jammer"
    NO_TRAFFIC = "no-traffic"


@dataclass
class LinkStatistics:
    """What the monitor gathered over one observation window."""

    frames_seen: int = 0
    frames_delivered: int = 0
    rssi_sum_dbm: float = 0.0
    busy_samples: int = 0
    busy_hits: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / observed data frames."""
        return _features.delivery_ratio(self.frames_delivered,
                                        self.frames_seen)

    @property
    def mean_rssi_dbm(self) -> float:
        """Mean received signal strength of observed frames."""
        return _features.mean_rssi_dbm(self.rssi_sum_dbm, self.frames_seen)

    @property
    def busy_fraction(self) -> float:
        """Fraction of CCA samples that reported busy."""
        return _features.busy_fraction(self.busy_hits, self.busy_samples)


class JammingDetector:
    """A consistency-check jamming classifier attached to an AP.

    Attach before the traffic runs; read the verdict afterwards::

        detector = JammingDetector(kernel, medium, ap)
        detector.start(duration_s)
        ... run traffic ...
        verdict = detector.classify()
    """

    def __init__(self, kernel: SimKernel, medium: Medium, ap: AccessPoint,
                 pdr_threshold: float = 0.6,
                 rssi_threshold_dbm: float = -75.0,
                 busy_threshold: float = 0.9,
                 cca_sample_interval_s: float = 1e-3) -> None:
        if not 0.0 < pdr_threshold < 1.0:
            raise ConfigurationError("pdr_threshold must be in (0, 1)")
        if not 0.0 < busy_threshold <= 1.0:
            raise ConfigurationError("busy_threshold must be in (0, 1]")
        self._kernel = kernel
        self._medium = medium
        self._ap = ap
        self._pdr_threshold = pdr_threshold
        self._rssi_threshold_dbm = rssi_threshold_dbm
        self._busy_threshold = busy_threshold
        self._cca_interval_s = cca_sample_interval_s
        self.stats = LinkStatistics()
        ap.monitor = self._on_frame

    # ------------------------------------------------------------------
    # Collection

    def _on_frame(self, rssi_dbm: float | None, success: bool,
                  _time: float) -> None:
        if rssi_dbm is None:
            return
        self.stats.frames_seen += 1
        self.stats.rssi_sum_dbm += rssi_dbm
        if success:
            self.stats.frames_delivered += 1

    def start(self, duration_s: float) -> None:
        """Begin periodic CCA sampling for ``duration_s``."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self._stop_at = self._kernel.now + duration_s
        self._kernel.schedule(self._cca_interval_s, self._sample_cca)

    def _sample_cca(self) -> None:
        if self._kernel.now > self._stop_at:
            return
        self.stats.busy_samples += 1
        if self._medium.is_busy(self._ap.name, self._kernel.now):
            self.stats.busy_hits += 1
        self._kernel.schedule(self._cca_interval_s, self._sample_cca)

    # ------------------------------------------------------------------
    # Classification

    def classify(self) -> LinkVerdict:
        """The Xu et al. consistency check plus attacker typing."""
        stats = self.stats
        # A constant jammer can silence the client entirely: no frames
        # to observe, but the medium is pinned busy.
        if stats.frames_seen == 0:
            if stats.busy_fraction > self._busy_threshold:
                return LinkVerdict.CONSTANT_JAMMER
            return LinkVerdict.NO_TRAFFIC
        if stats.delivery_ratio >= self._pdr_threshold:
            return LinkVerdict.HEALTHY
        # Low delivery: consistent with the signal strength?
        if stats.mean_rssi_dbm < self._rssi_threshold_dbm:
            return LinkVerdict.POOR_LINK
        if stats.busy_fraction > self._busy_threshold:
            return LinkVerdict.CONSTANT_JAMMER
        return LinkVerdict.REACTIVE_JAMMER
