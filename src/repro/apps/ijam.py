"""iJam-style self-jamming secrecy on the reactive jamming framework.

Gollakota & Katabi's iJam makes a transmission unreadable to
eavesdroppers: the sender transmits every OFDM symbol **twice**, and
the *receiver itself* jams — per sample — one random copy out of each
repeated pair.  The receiver knows which samples it jammed, so it
splices the clean samples into intact symbols; an eavesdropper cannot
reliably tell jammed samples from clean ones (a single complex sample
carries too little statistics) and garbles a large fraction of its
bits.

The paper's §1 highlights iJam's practical weakness on stock SDRs:
"the transmitter must purposely introduce dummy paddings at the end of
the PHY header, before the useful data, to account for the decoding
and jamming response delays at the receiver."  On this framework the
response delay is T_resp(xcorr) = 2.64 us, so the pad shrinks to a few
microseconds — :func:`minimum_padding_s` computes it from the live
hardware configuration and the bench verifies the exchange end-to-end.

Implementation notes
--------------------
The receiver programs its jammer to trigger on the frame preamble and
uses the **host-stream waveform preset** (paper §2.4, waveform iii):
the host composes a burst pattern that is silent over the samples to
keep and loud over the samples to kill, keyed by a secret seed.  One
trigger then jams precisely the right samples of the right copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.channel.awgn import awgn
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import JammerPersonality
from repro.core.timeline import timeline_for
from repro.dsp.ofdm import OfdmParameters, ofdm_demodulate, ofdm_modulate
from repro.errors import ConfigurationError
from repro.hw.tx_controller import JamWaveform
from repro.phy.modulation import Modulation, hard_decide, map_bits

#: OFDM numerology of the iJam data link (runs at the jammer's rate).
IJAM_OFDM = OfdmParameters(fft_size=64, cp_length=16,
                           sample_rate=units.BASEBAND_RATE)

#: Data subcarriers of the link.
_CARRIERS = np.array([k for k in range(-24, 25) if k != 0])


def minimum_padding_s(extra_margin_s: float = 1e-6) -> float:
    """Dummy padding the transmitter must insert after its preamble.

    The pad covers the receiver's detection + TX-init latency plus a
    safety margin; data symbols may only start once the receiver's
    jammer is able to act.
    """
    return timeline_for().t_resp_xcorr + extra_margin_s


@dataclass
class IjamResult:
    """Outcome of one iJam exchange."""

    n_bits: int
    receiver_errors: int
    eavesdropper_errors: int
    padding_s: float

    @property
    def receiver_ber(self) -> float:
        """Bit error rate at the legitimate (self-jamming) receiver."""
        return self.receiver_errors / self.n_bits

    @property
    def eavesdropper_ber(self) -> float:
        """Bit error rate at the eavesdropper."""
        return self.eavesdropper_errors / self.n_bits


class IjamLink:
    """One sender / receiver / eavesdropper iJam arrangement."""

    def __init__(self, secret_seed: int = 0x51C3E7, snr_db: float = 25.0,
                 jam_to_signal_db: float = 3.0,
                 modulation: Modulation = Modulation.QAM16) -> None:
        self.secret_seed = int(secret_seed)
        self.snr_db = float(snr_db)
        self.jam_to_signal_db = float(jam_to_signal_db)
        self.modulation = modulation
        self._preamble = np.exp(
            1j * np.random.default_rng(1234).uniform(0, 2 * np.pi, 64))
        self._kill_first: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Transmitter

    def _build_frame(self, bits: np.ndarray) -> tuple[np.ndarray, int]:
        """Preamble + pad + twice-repeated OFDM symbols.

        Returns the waveform and the sample index of the first pair.
        """
        bits_per_symbol = self.modulation.bits_per_symbol * _CARRIERS.size
        if bits.size % bits_per_symbol:
            raise ConfigurationError(
                f"bit count must be a multiple of {bits_per_symbol}"
            )
        pad = units.seconds_to_samples(minimum_padding_s())
        parts = [self._preamble, np.zeros(pad, dtype=np.complex128)]
        points = map_bits(bits, self.modulation).reshape(-1, _CARRIERS.size)
        for row in points:
            symbol = ofdm_modulate(IJAM_OFDM, _CARRIERS, row)
            parts.append(symbol)
            parts.append(symbol)  # the iJam repeat
        waveform = np.concatenate(parts)
        return waveform, self._preamble.size + pad

    # ------------------------------------------------------------------
    # Receiver-side jamming pattern

    def _jam_pattern(self, n_pairs: int, pad: int) -> np.ndarray:
        """The host-stream waveform: WGN over the samples to kill.

        ``self._kill_first[p, s]`` says whether sample ``s`` of pair
        ``p`` is jammed in the first copy (else in the second).  The
        pattern begins at the jammer's burst start (trigger + T_init),
        so it carries the remaining pad time as leading silence.
        """
        from repro.hw.tx_controller import INIT_LATENCY_SAMPLES

        rng = np.random.default_rng(self.secret_seed)
        sym = IJAM_OFDM.symbol_length
        self._kill_first = rng.integers(0, 2, (n_pairs, sym)).astype(bool)
        # The trigger fires on the preamble's last sample and the burst
        # begins INIT_LATENCY_SAMPLES later, i.e. (pad - 1 -
        # INIT_LATENCY_SAMPLES + ...) samples before the first pair:
        # burst start = preamble_end + INIT; first pair = preamble_end
        # + 1 + pad.
        burst_lead = pad + 1 - INIT_LATENCY_SAMPLES
        pattern = np.zeros(burst_lead + 2 * n_pairs * sym,
                           dtype=np.complex128)
        amp = units.db_to_amplitude(self.jam_to_signal_db)
        noise_rng = np.random.default_rng(self.secret_seed ^ 0xA5A5)
        for pair in range(n_pairs):
            noise = amp * awgn(sym, 1.0, noise_rng)
            base = burst_lead + 2 * pair * sym
            kill = self._kill_first[pair]
            pattern[base:base + sym][kill] = noise[kill]
            pattern[base + sym:base + 2 * sym][~kill] = noise[~kill]
        return pattern

    # ------------------------------------------------------------------
    # Demodulation helpers

    def _demod_spliced(self, samples: np.ndarray, first_pair: int,
                       keep_first: np.ndarray) -> np.ndarray:
        """Assemble symbols by picking per-sample copies, then demap.

        ``keep_first[p, s]`` True means take sample ``s`` of pair
        ``p`` from the first copy.
        """
        sym = IJAM_OFDM.symbol_length
        bits = []
        for pair in range(keep_first.shape[0]):
            base = first_pair + 2 * pair * sym
            a = samples[base:base + sym]
            b = samples[base + sym:base + 2 * sym]
            spliced = np.where(keep_first[pair], a, b)
            points = ofdm_demodulate(IJAM_OFDM, spliced, _CARRIERS)
            bits.append(hard_decide(points, self.modulation))
        return np.concatenate(bits)

    # ------------------------------------------------------------------
    # The full exchange

    def run(self, bits: np.ndarray, rng: np.random.Generator) -> IjamResult:
        """Transmit ``bits`` with self-jamming; measure both BERs."""
        bits = np.asarray(bits, dtype=np.uint8)
        frame, first_pair = self._build_frame(bits)
        bits_per_symbol = self.modulation.bits_per_symbol * _CARRIERS.size
        n_pairs = bits.size // bits_per_symbol

        # The receiver's jammer: trigger on the preamble, stream the
        # secret kill pattern from the host buffer.
        jammer = ReactiveJammer()
        pattern = self._jam_pattern(n_pairs, first_pair - 64)
        jammer.configure(
            detection=DetectionConfig(template=self._preamble,
                                      xcorr_threshold=30_000),
            events=JammingEventBuilder().on_correlation(),
            personality=JammerPersonality(
                name="ijam", continuous=False,
                uptime_samples=pattern.size,
                waveform=JamWaveform.HOST_STREAM),
        )
        jammer.device.core.tx.set_host_waveform(pattern)

        noise_power = units.db_to_linear(-self.snr_db)
        lead = 200
        on_air = np.concatenate([
            awgn(lead, noise_power, rng),
            frame + awgn(frame.size, noise_power, rng),
        ])
        report = jammer.run(on_air)
        if not report.jams:
            raise ConfigurationError("the iJam receiver failed to trigger")
        received = on_air + report.tx

        assert self._kill_first is not None
        keep_first = ~self._kill_first
        rx_bits = self._demod_spliced(received, lead + first_pair,
                                      keep_first)

        # The eavesdropper's best simple strategy: per sample, keep
        # the copy with the smaller magnitude (hoping to dodge jammed
        # samples).  Single-sample statistics make this unreliable —
        # the core of iJam's security argument.
        eve_keep = self._eve_choices(received, lead + first_pair, n_pairs)
        eve_bits = self._demod_spliced(received, lead + first_pair,
                                       eve_keep)

        return IjamResult(
            n_bits=bits.size,
            receiver_errors=int(np.sum(rx_bits != bits)),
            eavesdropper_errors=int(np.sum(eve_bits != bits)),
            padding_s=minimum_padding_s(),
        )

    @staticmethod
    def _eve_choices(samples: np.ndarray, first_pair: int,
                     n_pairs: int) -> np.ndarray:
        sym = IJAM_OFDM.symbol_length
        keep_first = np.zeros((n_pairs, sym), dtype=bool)
        for pair in range(n_pairs):
            base = first_pair + 2 * pair * sym
            a = samples[base:base + sym]
            b = samples[base + sym:base + 2 * sym]
            keep_first[pair] = np.abs(a) <= np.abs(b)
        return keep_first
