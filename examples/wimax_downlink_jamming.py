#!/usr/bin/env python3
"""The paper's WiMAX validation (Fig. 12) with an ASCII scope trace.

Broadcasts 802.16e TDD downlink frames (Airspan-style: 10 MHz channel,
1024-FFT, Cell ID 1 / Segment 0), runs the jammer in the paper's two
detection configurations, and renders the time-domain envelope of both
the downlink and the jammer's transmission — the "oscilloscope view"
of Fig. 12.

Run:  python examples/wimax_downlink_jamming.py
"""

import numpy as np

from repro import units
from repro.experiments.wimax_jamming import run_experiment

N_FRAMES = 8
COLUMNS = 100


def ascii_trace(samples: np.ndarray, columns: int, char: str) -> str:
    """A one-line envelope rendering of a complex waveform."""
    bins = np.array_split(np.abs(samples), columns)
    peak = max(float(np.max(b)) if b.size else 0.0 for b in bins) or 1.0
    line = []
    for b in bins:
        level = float(np.max(b)) / peak if b.size else 0.0
        line.append(char if level > 0.25 else ("." if level > 0.05 else " "))
    return "".join(line)


def main() -> None:
    results = run_experiment(n_frames=N_FRAMES)

    for scheme in ("xcorr_only", "combined"):
        r = results[scheme]
        print(f"=== detection scheme: {scheme} ===")
        print(f"frames: {r.n_frames}  detected: {r.frames_detected} "
              f"({r.detection_rate:.0%})  jam bursts: {r.jam_bursts}")
        print("WiMAX DL |" + ascii_trace(r.rx_trace, COLUMNS, "#") + "|")
        print("jammer TX|" + ascii_trace(r.tx_trace, COLUMNS, "*") + "|")
        print()

    x = results["xcorr_only"]
    c = results["combined"]
    print(f"cross-correlator alone missed {x.misdetection_rate:.0%} of the "
          "frames (paper: ~2/3) — the 64-sample window covers only "
          f"{64 / units.BASEBAND_RATE * 1e6:.2f} us of the ~25 us preamble code.")
    print(f"combined with the energy differentiator: {c.detection_rate:.0%} "
          "detection, one burst per downlink frame (paper: 100 %).")


if __name__ == "__main__":
    main()
