#!/usr/bin/env python3
"""The paper's WiFi validation (Figs. 10/11) on the wired testbed.

Recreates the experiment of paper §4: an AP and a client on the
5-port splitter network (Table 1 path losses), an iperf UDP bandwidth
test between them, and the jammer sweeping its transmit power to
realize a range of SIRs at the AP — once for each of the three jammer
personalities.

Run:  python examples/wifi_iperf_jamming.py [duration_seconds]
      (default 0.5 s per point; the paper used 60 s)
"""

import sys

from repro.core.presets import paper_personalities
from repro.experiments.wifi_jamming import WifiJammingTestbed

SIRS_DB = [45.0, 35.0, 30.0, 25.0, 20.0, 16.0, 12.0, 8.0, 4.0, 2.0]


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    bed = WifiJammingTestbed(duration_s=duration)

    baseline = bed.run_point(None, None)
    print(f"jammer off: {baseline.report.bandwidth_mbps:.1f} Mbps, "
          f"PRR {baseline.packet_reception_ratio:.0%} "
          "(paper ceiling: ~29 Mbps, PRR 100%)\n")

    header = f"{'SIR at AP (dB)':>16}" + "".join(f"{s:>8.0f}" for s in SIRS_DB)
    for personality in paper_personalities():
        bandwidths = []
        prrs = []
        for sir_db in SIRS_DB:
            point = bed.run_point(personality, sir_db)
            bandwidths.append(point.report.bandwidth_mbps)
            prrs.append(point.packet_reception_ratio)
        print(f"--- {personality.name} ---")
        print(header)
        print(f"{'bandwidth (Mbps)':>16}"
              + "".join(f"{b:>8.1f}" for b in bandwidths))
        print(f"{'PRR (%)':>16}"
              + "".join(f"{p * 100:>8.0f}" for p in prrs))
        dead = [s for s, b in zip(SIRS_DB, bandwidths) if b < 0.5]
        if dead:
            print(f"link dead at SIR <= {max(dead):.0f} dB")
        print()

    print("paper cliffs: continuous 33.85 dB | reactive 0.1 ms 15.94 dB | "
          "reactive 0.01 ms 2.79 dB")


if __name__ == "__main__":
    main()
