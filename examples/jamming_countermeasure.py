#!/usr/bin/env python3
"""The countermeasure side: detecting that you are being jammed.

The paper closes by calling its platform "an effective tool for
studying and developing countermeasures to a new series of real-time
over-the-air physical layer attacks".  This script runs the first such
countermeasure — the consistency-check classifier of Xu et al.
(MobiHoc 2005, the paper's reference [15]) — at the access point while
the iperf testbed faces four very different conditions:

* a healthy link,
* a genuinely weak client (low RSSI: losses explained by the channel),
* the continuous jammer,
* the reactive jammer (the hard case: the AP sees strong frames that
  mysteriously fail while the channel looks idle).

Run:  python examples/jamming_countermeasure.py
"""

import numpy as np

from repro.apps.jamming_detector import JammingDetector
from repro.core.presets import continuous_jammer, reactive_jammer
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.mac.iperf import UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel

DURATION_S = 0.25


def diagnose(label, personality=None, sir_db=None, client_tx_dbm=14.0):
    bed = WifiJammingTestbed(duration_s=DURATION_S)
    rng = np.random.default_rng(8)
    kernel = SimKernel()
    medium = Medium(bed.path_loss_db)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=bed.ap_tx_dbm)
    client = Station("client", kernel, medium, ap, rng,
                     tx_power_dbm=client_tx_dbm)
    detector = JammingDetector(kernel, medium, ap)
    detector.start(DURATION_S)
    if personality is not None:
        jam_tx = bed.jammer_tx_for_sir(sir_db)
        JammerNode("jammer", kernel, medium, personality,
                   tx_power_dbm=jam_tx).start(DURATION_S)
    report = UdpBandwidthTest(kernel, client, ap).run(DURATION_S)
    stats = detector.stats
    verdict = detector.classify()
    rssi = (f"{stats.mean_rssi_dbm:6.1f}" if stats.frames_seen
            else "     -")
    print(f"{label:<26}{report.bandwidth_mbps:>7.1f}"
          f"{stats.delivery_ratio:>7.2f}{rssi:>8}"
          f"{stats.busy_fraction:>7.2f}   {verdict.value}")
    return verdict


def main() -> None:
    print(f"{'scenario':<26}{'Mbps':>7}{'PDR':>7}{'RSSI':>8}"
          f"{'busy':>7}   verdict")
    diagnose("healthy link")
    diagnose("weak client (-38 dBm TX)", client_tx_dbm=-38.0)
    diagnose("continuous jam, SIR 15", continuous_jammer(), 15.0)
    diagnose("reactive 0.1ms, SIR 8", reactive_jammer(1e-4), 8.0)
    print("\nThe classifier keys on the Xu et al. inconsistency: frames that")
    print("arrive STRONG yet FAIL mean interference, not range; and the")
    print("channel-busy fraction separates an always-on jammer from one")
    print("that transmits only microsecond bursts.")


if __name__ == "__main__":
    main()
