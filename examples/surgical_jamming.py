#!/usr/bin/env python3
""""Surgical" jamming: place a tiny burst at a chosen packet offset.

Paper §2.4/§3.1: "A user-defined delay option between detection
triggers and active jamming is also provided to enable jamming of
specific locations in the packets.  This type of 'surgical' jamming is
highly destructive due to its ability to target critical information."

This example detects a WiFi frame on its short preamble, then uses the
jam-delay register to drop a 1 us white-noise burst on three regions —
the long training field (channel estimation), the SIGNAL field, and
the payload — across a sweep of jamming powers.  For each shot the
victim's capture is decoded at the waveform level to see whether the
frame survived.

Two takeaways, printed at the end:

* energy: a single 1 us burst kills a ~250 us frame — four orders of
  magnitude less energy than continuous jamming, and 100x less than
  the paper's 0.1 ms reactive burst;
* placement: the regions differ in cost.  Under an exact-decode
  criterion the long payload is cheapest to corrupt (one broken coded
  symbol breaks the FCS), while the SIGNAL field — tiny and BPSK
  rate-1/2 — needs the most power but yields the stealthiest outcome
  (the victim NIC never even logs a frame).

Run:  python examples/surgical_jamming.py
"""

import numpy as np

from repro import units
from repro.channel import Transmission, mix_at_port
from repro.core import (
    DetectionConfig,
    JammingEventBuilder,
    ReactiveJammer,
    reactive_jammer,
    wifi_short_preamble_template,
)
from repro.dsp.resample import resample
from repro.errors import DecodeError
from repro.phy.wifi import WifiFrameConfig, WifiRate, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE
from repro.phy.wifi.receiver import WifiReceiver

NOISE = 1e-4
SNR_DB = 25.0
FRAME_START_S = 50e-6
BURST_S = 1e-6
GAINS_DB = (-20.0, -15.0, -10.0, -5.0, 0.0)

#: Delay from the trigger (~2.5 us into the frame) to the burst.
TARGETS = {
    "long training field": 7e-6,
    "SIGNAL field": 14.5e-6,
    "payload": 60e-6,
    "no jamming": None,
}


def run_one(delay_s: float | None, jam_gain_db: float,
            seed: int = 77) -> bool:
    """One shot; returns True if the victim still decodes the frame."""
    rng = np.random.default_rng(seed)
    psdu = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
    frame = build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_24))
    rx = mix_at_port(
        [Transmission(frame, WIFI_SAMPLE_RATE, start_time=FRAME_START_S,
                      power=units.db_to_linear(SNR_DB) * NOISE)],
        out_rate=units.BASEBAND_RATE, duration=300e-6,
        noise_power=NOISE, rng=rng,
    )
    if delay_s is None:
        victim = rx
    else:
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(uptime_seconds=BURST_S,
                                        delay_seconds=delay_s),
        )
        jammer.device.set_tx_amplitude_db(jam_gain_db)
        victim = rx + jammer.run(rx).tx
    capture = resample(victim, units.BASEBAND_RATE, WIFI_SAMPLE_RATE)
    try:
        return WifiReceiver().receive(capture).psdu == psdu
    except DecodeError:
        return False


def main() -> None:
    print(f"{BURST_S * 1e6:.0f} us surgical bursts on a 24 Mbps / 500-byte "
          f"frame at {SNR_DB:.0f} dB SNR\n")
    print(f"{'burst target':<22}" + "".join(f"{g:>8.0f}" for g in GAINS_DB)
          + "   (jammer digital gain, dB)")
    kill_threshold: dict[str, float | None] = {}
    for name, delay in TARGETS.items():
        row = []
        threshold = None
        for gain in GAINS_DB:
            ok = run_one(delay, gain)
            row.append("ok" if ok else "KILL")
            if not ok and threshold is None:
                threshold = gain
        kill_threshold[name] = threshold
        print(f"{name:<22}" + "".join(f"{r:>8}" for r in row))

    from repro.phy.wifi.frame import ppdu_duration_us

    frame_us = ppdu_duration_us(500, WifiRate.MBPS_24)
    print(f"\nframe air time: {frame_us} us; burst: {BURST_S * 1e6:.0f} us "
          f"-> duty {BURST_S * 1e6 / frame_us:.2%} of the frame")
    print("energy vs alternatives: continuous jamming spends "
          f"{frame_us / (BURST_S * 1e6):.0f}x more per frame; the paper's "
          f"0.1 ms reactive burst {1e-4 / BURST_S:.0f}x more.")
    print("\nregion economics (lowest gain that killed the frame):")
    for name, threshold in kill_threshold.items():
        if name == "no jamming":
            continue
        label = "never (in this sweep)" if threshold is None \
            else f"{threshold:.0f} dB"
        print(f"  {name:<22}{label}")
    print("\nThe payload is cheapest under an exact-decode criterion (one")
    print("broken coded symbol breaks the FCS); the SIGNAL field costs the")
    print("most power but is the stealthiest target — the PLCP header never")
    print("decodes, so the victim never even counts a corrupted frame.")


if __name__ == "__main__":
    main()
