#!/usr/bin/env python3
"""Targeted jamming: hit one WiMAX cell, spare its co-channel neighbour.

The paper's protocol-awareness claim, pushed one level further: two
base stations share a channel (staggered TDD), distinguished only by
their (IDcell, Segment) preamble identity.  The attacker:

1. runs a cell search on a passive capture to identify the networks,
2. loads the *target* cell's preamble template into the correlator,
3. jams — and only the target's frames draw bursts.

An energy detector cannot make this distinction; the comparison is
printed side by side.

Run:  python examples/targeted_cell_jamming.py
"""

import numpy as np

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core import (
    DetectionConfig,
    JammingEventBuilder,
    ReactiveJammer,
    reactive_jammer,
    wimax_preamble_template,
)
from repro.dsp.resample import resample
from repro.phy.wimax.frame import build_downlink_frame
from repro.phy.wimax.params import FRAME_DURATION_S, WIMAX_SAMPLE_RATE, WimaxConfig
from repro.phy.wimax.receiver import WimaxCellSearcher

NOISE = 1e-4
N_FRAMES = 6
STAGGER_S = FRAME_DURATION_S / 2
TARGET = (1, 0)
BYSTANDER = (5, 2)


def build_scene(rng):
    target_cfg = WimaxConfig(*TARGET, dl_symbols=10)
    bystander_cfg = WimaxConfig(*BYSTANDER, dl_symbols=10)
    transmissions, target_starts, bystander_starts = [], [], []
    for k in range(N_FRAMES):
        t0 = k * FRAME_DURATION_S
        target_starts.append(t0)
        transmissions.append(Transmission(
            build_downlink_frame(target_cfg, rng), WIMAX_SAMPLE_RATE, t0,
            power=units.db_to_linear(12.0) * NOISE))
        t1 = t0 + STAGGER_S
        bystander_starts.append(t1)
        transmissions.append(Transmission(
            build_downlink_frame(bystander_cfg, rng), WIMAX_SAMPLE_RATE, t1,
            power=units.db_to_linear(12.0) * NOISE))
    rx = mix_at_port(transmissions, units.BASEBAND_RATE,
                     N_FRAMES * FRAME_DURATION_S + STAGGER_S,
                     noise_power=NOISE, rng=rng)
    return rx, target_starts, bystander_starts


def hits(report, starts):
    count = 0
    for start in starts:
        if any(start <= j.start / units.BASEBAND_RATE < start + 150e-6
               for j in report.jams):
            count += 1
    return count


def main() -> None:
    rng = np.random.default_rng(12)
    rx, target_starts, bystander_starts = build_scene(rng)

    print("step 1 — passive cell search on the capture:")
    native = resample(rx[:1_500_000], units.BASEBAND_RATE, WIMAX_SAMPLE_RATE)
    searcher = WimaxCellSearcher(cell_ids=[0, 1, 2, 5], segments=[0, 1, 2])
    found = searcher.search(native[:200_000])
    print(f"  strongest cell: IDcell={found.cell_id} "
          f"segment={found.segment} (corr {found.correlation:.2f})\n")

    results = {}
    for label, detection, events in (
        ("protocol-aware (target template)",
         DetectionConfig(template=wimax_preamble_template(*TARGET),
                         xcorr_threshold=11_000),
         JammingEventBuilder().on_correlation()),
        ("energy detector (agnostic)",
         DetectionConfig(energy_high_db=10.0),
         JammingEventBuilder().on_energy_rise()),
    ):
        jammer = ReactiveJammer()
        jammer.configure(detection, events, reactive_jammer(1e-4))
        report = jammer.run(rx)
        results[label] = (hits(report, target_starts),
                          hits(report, bystander_starts))

    print("step 2 — jam with each detection mode:")
    print(f"{'detector':<36}{'target frames hit':>19}{'bystander hit':>16}")
    for label, (t, b) in results.items():
        print(f"{label:<36}{t:>12}/{N_FRAMES}{b:>13}/{N_FRAMES}")
    print("\nThe correlator's template selects the victim network; the")
    print("energy detector cannot tell the two cells apart — the paper's")
    print("'protocol-aware' in action.")


if __name__ == "__main__":
    main()
