#!/usr/bin/env python3
"""Detection characterization: the curves of paper Figs. 6, 7 and 8.

Sweeps received SNR and prints ASCII detection-probability curves for

* the long-preamble cross-correlator (single preambles vs full
  frames, two false-alarm rates),
* the short-preamble cross-correlator on full frames, and
* the energy differentiator (including its mean detections/frame,
  which exposes the paper's multiple-detection band near threshold).

Run:  python examples/detection_characterization.py [frames_per_point]
      (default 200; the paper used 10,000)
"""

import sys

from repro.experiments.detection import (
    energy_detector_curve,
    long_preamble_curve,
    short_preamble_curve,
)

SNRS = [-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 9.0, 12.0, 15.0]
BAR = 30


def plot(points, label: str) -> None:
    print(f"\n{label}")
    for p in points:
        bar = "#" * int(round(p.detection_probability * BAR))
        extra = (f"  ({p.mean_detections_per_frame:.2f} det/frame)"
                 if p.mean_detections_per_frame
                 > 1.05 * p.detection_probability else "")
        print(f"  {p.snr_db:+5.0f} dB |{bar:<{BAR}}| "
              f"{p.detection_probability:5.1%}{extra}")


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 200

    plot(long_preamble_curve(SNRS, n_frames=n_frames, full_frames=False),
         "Fig. 6a — long preamble, single-preamble pseudo-frames (FA 0.083/s)")
    plot(long_preamble_curve(SNRS, n_frames=n_frames, full_frames=True),
         "Fig. 6b — long preamble, full WiFi frames (FA 0.083/s)")
    plot(short_preamble_curve(SNRS, n_frames=n_frames),
         "Fig. 7 — short preamble, full WiFi frames (FA 0.059/s)")
    plot(energy_detector_curve(SNRS + [16.0], n_frames=n_frames),
         "Fig. 8 — energy differentiator, 10 dB threshold")

    print("\npaper shapes: full frames > single preambles; lower FA rate ->")
    print("lower detection; short-preamble detection strongest; the energy")
    print("detector shows none / multiple / exactly-one regimes around its")
    print("threshold. See EXPERIMENTS.md for the paper-vs-measured notes.")


if __name__ == "__main__":
    main()
