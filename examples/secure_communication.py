#!/usr/bin/env python3
"""Jamming for good: the two secure-communication schemes of paper §1.

The paper anticipates its platform being used "to prototype several
classes of jamming-based secure communication schemes" — this script
runs both cited families on the framework:

1. **iJam** (Gollakota & Katabi): the receiver jams one copy of each
   repeated sample; eavesdroppers can't tell which copy is clean.
2. **Ally-friendly jamming** (Shen et al.): continuous key-seeded
   jamming that authorized receivers regenerate and cancel.

Run:  python examples/secure_communication.py
"""

import numpy as np

from repro.apps import FriendlyJammingLink, IjamLink
from repro.phy.modulation import Modulation


def main() -> None:
    rng = np.random.default_rng(42)

    print("=== iJam: self-jamming secrecy ===")
    print("sender repeats every OFDM symbol; the receiver's jammer kills")
    print("one random copy of each sample (host-stream waveform preset).\n")
    header = f"{'modulation':<8}{'J/S':>6}{'receiver BER':>14}{'eavesdropper BER':>18}"
    print(header)
    for mod in (Modulation.QPSK, Modulation.QAM16, Modulation.QAM64):
        link = IjamLink(modulation=mod, jam_to_signal_db=6.0)
        bits = rng.integers(0, 2, 48 * mod.bits_per_symbol * 10
                            ).astype(np.uint8)
        result = link.run(bits, np.random.default_rng(7))
        print(f"{mod.name:<8}{6.0:>6.1f}{result.receiver_ber:>14.4f}"
              f"{result.eavesdropper_ber:>18.4f}")
    print(f"\nrequired dummy padding: {link.run(bits, rng).padding_s * 1e6:.2f} us")
    print("(the paper notes iJam must pad for the receiver's 'decoding and")
    print(" jamming response delays'; this framework's 2.64 us response")
    print(" keeps the pad under 4 us)")

    print("\n=== Ally-friendly jamming: key-controlled interference ===")
    print("the jammer runs the hardware's continuous WGN preset; its seed")
    print("is the shared key, so key-holders regenerate and cancel it.\n")
    print(f"{'J/S':>6}{'authorized BER':>16}{'unauthorized BER':>18}{'cancellation':>14}")
    for js in (0.0, 6.0, 12.0):
        link = FriendlyJammingLink(jam_to_signal_db=js)
        bits = rng.integers(0, 2, 48 * 2 * 16).astype(np.uint8)
        result = link.run(bits, np.random.default_rng(3))
        print(f"{js:>6.1f}{result.authorized_ber:>16.4f}"
              f"{result.unauthorized_ber:>18.4f}"
              f"{result.residual_jam_db:>11.1f} dB")
    print("\nauthorized receivers ride through jamming that renders the")
    print("channel unusable for everyone else — 'jam your enemy and")
    print("maintain your own wireless connectivity at the same time'.")


if __name__ == "__main__":
    main()
