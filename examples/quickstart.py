#!/usr/bin/env python3
"""Quickstart: detect and jam a WiFi frame in five steps.

Builds a standard-compliant 802.11g frame, puts it on the air at a
chosen SNR, points the reactive jammer at the channel, and prints what
the hardware did — detections, the jam burst, and the response
latency, which lands at the paper's 2.64 us.

Run:  python examples/quickstart.py

Before committing changes that touch register writes or timing
constants, run the domain-aware linter over the tree (it gates CI):

    repro-lint src examples          # or: python -m repro.analysis src
"""

import numpy as np

from repro import units
from repro.channel import Transmission, mix_at_port
from repro.core import (
    DetectionConfig,
    JammingEventBuilder,
    ReactiveJammer,
    reactive_jammer,
    wifi_short_preamble_template,
)
from repro.phy.wifi import WifiFrameConfig, WifiRate, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE


def main() -> None:
    rng = np.random.default_rng(1)

    # 1. A victim transmission: one 802.11g frame at 54 Mbps, arriving
    #    100 us into the capture at 20 dB SNR.
    psdu = rng.integers(0, 256, 300, dtype=np.uint8).tobytes()
    frame = build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_54))
    noise_floor = 1e-4
    rx = mix_at_port(
        [Transmission(frame, sample_rate=WIFI_SAMPLE_RATE, start_time=100e-6,
                      power=units.db_to_linear(20.0) * noise_floor)],
        out_rate=units.BASEBAND_RATE, duration=400e-6,
        noise_power=noise_floor, rng=rng,
    )

    # 2. A reactive jammer: correlate on the WiFi short preamble,
    #    answer with a 0.1 ms white-noise burst.
    jammer = ReactiveJammer()
    jammer.configure(
        detection=DetectionConfig(
            template=wifi_short_preamble_template(),
            xcorr_threshold=25_000,
        ),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-4),
    )

    # 3. Run the received waveform through the hardware model.
    report = jammer.run(rx)

    # 4. What happened?
    print(f"detections: {len(report.detections)} events")
    first_jam = report.jams[0]
    frame_start_s = 100e-6
    trigger_s = first_jam.trigger_time / units.BASEBAND_RATE
    tx_start_s = first_jam.start / units.BASEBAND_RATE
    print(f"frame starts at        {frame_start_s * 1e6:8.2f} us")
    print(f"jam trigger at         {trigger_s * 1e6:8.2f} us "
          f"({(trigger_s - frame_start_s) * 1e6:.2f} us into the frame)")
    print(f"RF burst begins at     {tx_start_s * 1e6:8.2f} us "
          f"(T_init = {(tx_start_s - trigger_s) * 1e9:.0f} ns)")
    print(f"burst length           {units.samples_to_seconds(first_jam.end - first_jam.start) * 1e6:8.2f} us")
    print(f"total jam airtime      {report.total_jam_airtime * 1e6:8.2f} us")

    # 5. The headline check: the frame is hit before its first data
    #    symbol (preamble ends 16 us in, SIGNAL at 20 us).
    hit_after_us = (tx_start_s - frame_start_s) * 1e6
    assert hit_after_us < 16.0, "burst arrived after the preamble!"
    print(f"\nOK: the packet was jammed {hit_after_us:.2f} us after it "
          "appeared — before its first OFDM data symbol.")


if __name__ == "__main__":
    main()
