"""The whole-program rules: RJ010-RJ013, firing and non-firing.

Each rule gets both directions — the seeded violation it must catch
and the nearby legitimate idiom it must stay silent on — plus the
regression corpus from the issue: a float injected into the xcorr
path across a call boundary, an unseeded RNG in a sweep helper, an
unpaired telemetry span, and a numpy-only kernel op.
"""

from __future__ import annotations

from repro.analysis import analyze_sources, get_rule


def _run(files: dict[str, str], code: str):
    return analyze_sources(files, rules=[get_rule(code)])


FUT = "from __future__ import annotations\n"


class TestDtypeFlowRJ010:
    def test_local_int_widened_by_float_literal(self):
        findings = _run({
            "src/repro/dsp/acc.py": FUT + (
                "def f(xs):\n"
                "    acc = 0\n"
                "    for x in xs:\n"
                "        acc = acc + x * 0.5\n"
                "    return acc\n"
            ),
        }, "RJ010")
        assert [f.rule for f in findings] == ["RJ010"]
        assert findings[0].line == 5

    def test_float_crosses_call_boundary_into_int_state(self):
        # The issue's regression seed: a helper returns float, the
        # caller augments integer xcorr state with it.  Per-file
        # analysis cannot see this; the project summaries can.
        findings = _run({
            "src/repro/dsp/scalefn.py": FUT + (
                "def scale(x):\n"
                "    return x * 0.5\n"
            ),
            "src/repro/kernels/xcorr_acc.py": FUT + (
                "from repro.dsp.scalefn import scale\n"
                "def accumulate(xs):\n"
                "    energy = 0\n"
                "    for x in xs:\n"
                "        energy += scale(x)\n"
                "    return energy\n"
            ),
        }, "RJ010")
        assert [(f.rule, f.path) for f in findings] == [
            ("RJ010", "src/repro/kernels/xcorr_acc.py")]

    def test_float_argument_into_int_annotated_param(self):
        findings = _run({
            "src/repro/hw/quant.py": FUT + (
                "def write_field(value: int):\n"
                "    return value\n"
                "def stage(raw):\n"
                "    return write_field(raw * 0.125)\n"
            ),
        }, "RJ010")
        assert [f.rule for f in findings] == ["RJ010"]

    def test_int_annotated_return_of_float_value(self):
        findings = _run({
            "src/repro/hw/quant.py": FUT + (
                "def metric(x) -> int:\n"
                "    return x / 2\n"
            ),
        }, "RJ010")
        assert [f.rule for f in findings] == ["RJ010"]

    def test_self_attr_established_int_then_widened(self):
        findings = _run({
            "src/repro/hw/state.py": FUT + (
                "class Detector:\n"
                "    def __init__(self):\n"
                "        self.energy = 0\n"
                "    def step(self, x):\n"
                "        self.energy = self.energy + x * 0.5\n"
            ),
        }, "RJ010")
        assert [f.rule for f in findings] == ["RJ010"]

    def test_explicit_cast_is_silent(self):
        # The exemption covers a spelled-out cast as the assigned
        # value; after it the variable is float and later float math
        # is no longer a widening.
        findings = _run({
            "src/repro/dsp/host.py": FUT + (
                "def f(xs):\n"
                "    acc = 0\n"
                "    acc = float(acc)\n"
                "    acc = acc * 0.5\n"
                "    return acc\n"
            ),
        }, "RJ010")
        assert findings == []

    def test_outside_bit_exact_packages_is_silent(self):
        findings = _run({
            "src/repro/experiments/plot.py": FUT + (
                "def f(xs):\n"
                "    acc = 0\n"
                "    acc = acc + 0.5\n"
                "    return acc\n"
            ),
        }, "RJ010")
        assert findings == []

    def test_unknown_dtypes_stay_silent(self):
        findings = _run({
            "src/repro/dsp/opaque.py": FUT + (
                "def f(xs, g):\n"
                "    acc = 0\n"
                "    acc = acc + g(xs)\n"
                "    return acc\n"
            ),
        }, "RJ010")
        assert findings == []


class TestDeterminismRJ011:
    def test_unseeded_rng_in_reachable_helper(self):
        # The issue's regression seed: the helper lives far from the
        # sweep, but the call graph connects them.
        findings = _run({
            "src/repro/runtime/sweepx.py": FUT + (
                "from repro.util.noisex import make_noise\n"
                "def run_sweep(grid):\n"
                "    return [make_noise(8) for _ in grid]\n"
            ),
            "src/repro/util/noisex.py": FUT + (
                "from numpy.random import default_rng\n"
                "def make_noise(n):\n"
                "    rng = default_rng()\n"
                "    return rng.normal(size=n)\n"
            ),
        }, "RJ011")
        assert [(f.rule, f.path) for f in findings] == [
            ("RJ011", "src/repro/util/noisex.py")]

    def test_seeded_rng_from_argument_is_silent(self):
        findings = _run({
            "src/repro/runtime/sweepx.py": FUT + (
                "from numpy.random import default_rng\n"
                "def run_trial(seed):\n"
                "    rng = default_rng(seed)\n"
                "    return rng.normal()\n"
            ),
        }, "RJ011")
        assert findings == []

    def test_hardcoded_seed_is_a_warning(self):
        findings = _run({
            "src/repro/runtime/sweepx.py": FUT + (
                "from numpy.random import default_rng\n"
                "def run_trial(n):\n"
                "    rng = default_rng(1234)\n"
                "    return rng.normal(size=n)\n"
            ),
        }, "RJ011")
        assert [f.rule for f in findings] == ["RJ011"]
        assert findings[0].severity.value == "warning"

    def test_legacy_np_random_on_sweep_path(self):
        findings = _run({
            "src/repro/experiments/grid.py": FUT + (
                "import numpy as np\n"
                "def sample(n):\n"
                "    return np.random.normal(size=n)\n"
            ),
        }, "RJ011")
        assert [f.rule for f in findings] == ["RJ011"]

    def test_stdlib_random_on_sweep_path(self):
        findings = _run({
            "src/repro/experiments/grid.py": FUT + (
                "import random\n"
                "def pick_trial(xs):\n"
                "    return random.choice(xs)\n"
            ),
        }, "RJ011")
        assert [f.rule for f in findings] == ["RJ011"]

    def test_unreachable_helper_is_silent(self):
        findings = _run({
            "src/repro/util/noisex.py": FUT + (
                "from numpy.random import default_rng\n"
                "def make_noise(n):\n"
                "    rng = default_rng()\n"
                "    return rng.normal(size=n)\n"
            ),
        }, "RJ011")
        assert findings == []

    def test_module_level_rng_always_flagged(self):
        findings = _run({
            "src/repro/util/consts.py": FUT + (
                "from numpy.random import default_rng\n"
                "JITTER = default_rng().normal()\n"
            ),
        }, "RJ011")
        assert [f.rule for f in findings] == ["RJ011"]

    def test_non_src_files_are_exempt(self):
        findings = _run({
            "tests/util/test_noise.py": (
                "from numpy.random import default_rng\n"
                "def test_sweep_noise():\n"
                "    assert default_rng().normal() is not None\n"
            ),
        }, "RJ011")
        assert findings == []

    def test_defense_modules_are_entry_points(self):
        # Detector training and tournaments carry the same
        # byte-identity guarantee as figure sweeps: any function under
        # defense/ roots the reachability walk.
        findings = _run({
            "src/repro/defense/detectorx.py": FUT + (
                "from repro.util.noisex import make_noise\n"
                "def fit_model(n):\n"
                "    return make_noise(n)\n"
            ),
            "src/repro/util/noisex.py": FUT + (
                "from numpy.random import default_rng\n"
                "def make_noise(n):\n"
                "    rng = default_rng()\n"
                "    return rng.normal(size=n)\n"
            ),
        }, "RJ011")
        assert [(f.rule, f.path) for f in findings] == [
            ("RJ011", "src/repro/util/noisex.py")]

    def test_tournament_named_functions_are_entry_points(self):
        findings = _run({
            "src/repro/apps/defendx.py": FUT + (
                "from numpy.random import default_rng\n"
                "def run_tournament(grid):\n"
                "    rng = default_rng()\n"
                "    return [rng.normal() for _ in grid]\n"
            ),
        }, "RJ011")
        assert [f.rule for f in findings] == ["RJ011"]


class TestSpanPairingRJ012:
    PROFILER = FUT + (
        "from contextlib import contextmanager\n"
        "@contextmanager\n"
        "def span_scope(name):\n"
        "    yield\n"
    )

    def test_discarded_contextmanager_call(self):
        # The issue's regression seed: the span is opened in the
        # author's head, never on the timeline.
        findings = _run({
            "src/repro/telemetry/prof.py": self.PROFILER,
            "src/repro/experiments/run.py": FUT + (
                "from repro.telemetry.prof import span_scope\n"
                "def run():\n"
                "    span_scope('xcorr')\n"
                "    return 1\n"
            ),
        }, "RJ012")
        assert [(f.rule, f.line) for f in findings] == [("RJ012", 4)]

    def test_with_statement_is_silent(self):
        findings = _run({
            "src/repro/telemetry/prof.py": self.PROFILER,
            "src/repro/experiments/run.py": FUT + (
                "from repro.telemetry.prof import span_scope\n"
                "def run():\n"
                "    with span_scope('xcorr'):\n"
                "        return 1\n"
            ),
        }, "RJ012")
        assert findings == []

    def test_bare_dot_profile_call_flagged_unresolved(self):
        findings = _run({
            "src/repro/experiments/run.py": FUT + (
                "def run(profiler):\n"
                "    profiler.profile('detect')\n"
                "    return 1\n"
            ),
        }, "RJ012")
        assert [f.rule for f in findings] == ["RJ012"]

    def test_ring_tracer_only_member_on_tracer_receiver(self):
        findings = _run({
            "src/repro/telemetry/tracer.py": FUT + (
                "class Tracer:\n"
                "    enabled = False\n"
                "    def instant(self, name):\n"
                "        pass\n"
                "    def span(self, name):\n"
                "        pass\n"
                "class RingTracer(Tracer):\n"
                "    def iter_category(self, cat):\n"
                "        return []\n"
            ),
            "src/repro/experiments/run.py": FUT + (
                "def dump(tracer):\n"
                "    return list(tracer.iter_category('dsp'))\n"
            ),
        }, "RJ012")
        assert [f.rule for f in findings] == ["RJ012"]

    def test_base_interface_member_is_silent(self):
        findings = _run({
            "src/repro/telemetry/tracer.py": FUT + (
                "class Tracer:\n"
                "    enabled = False\n"
                "    def instant(self, name):\n"
                "        pass\n"
                "class RingTracer(Tracer):\n"
                "    def iter_category(self, cat):\n"
                "        return []\n"
            ),
            "src/repro/experiments/run.py": FUT + (
                "def probe(tracer):\n"
                "    tracer.instant('hit')\n"
            ),
        }, "RJ012")
        assert findings == []

    def test_telemetry_package_is_exempt_from_surface_check(self):
        findings = _run({
            "src/repro/telemetry/tracer.py": FUT + (
                "class Tracer:\n"
                "    enabled = False\n"
                "    def instant(self, name):\n"
                "        pass\n"
                "class RingTracer(Tracer):\n"
                "    def iter_category(self, cat):\n"
                "        return []\n"
            ),
            "src/repro/telemetry/report.py": FUT + (
                "def dump(tracer):\n"
                "    return list(tracer.iter_category('dsp'))\n"
            ),
        }, "RJ012")
        assert findings == []


class TestBackendParityRJ013:
    DISPATCH = FUT + (
        "class KernelBackend:\n"
        "    name = 'base'\n"
    )

    def _backends(self, numba_body: str) -> dict[str, str]:
        return {
            "src/repro/kernels/dispatchx.py": self.DISPATCH,
            "src/repro/kernels/np_b.py": FUT + (
                "from repro.kernels.dispatchx import KernelBackend\n"
                "class NumpyB(KernelBackend):\n"
                "    name = 'numpy'\n"
                "    def xcorr(self, plane, coeffs, out=None):\n"
                "        return plane\n"
                "    def moving_sums(self, padded, window):\n"
                "        return padded\n"
            ),
            "src/repro/kernels/nb_b.py": FUT + (
                "from repro.kernels.dispatchx import KernelBackend\n"
                "class NumbaB(KernelBackend):\n"
                "    name = 'numba'\n"
            ) + numba_body,
        }

    def test_missing_op_is_flagged(self):
        # The issue's regression seed: a numpy-only kernel op.
        findings = _run(self._backends(
            "    def xcorr(self, plane, coeffs, out=None):\n"
            "        return plane\n"
        ), "RJ013")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/kernels/nb_b.py"
        assert "moving_sums" in findings[0].message

    def test_signature_mismatch_is_flagged(self):
        findings = _run(self._backends(
            "    def xcorr(self, plane, coeffs):\n"
            "        return plane\n"
            "    def moving_sums(self, padded, window):\n"
            "        return padded\n"
        ), "RJ013")
        assert len(findings) == 1
        assert "xcorr" in findings[0].message

    def test_matching_backends_are_silent(self):
        findings = _run(self._backends(
            "    def xcorr(self, plane, coeffs, out=None):\n"
            "        return plane\n"
            "    def moving_sums(self, padded, window):\n"
            "        return padded\n"
        ), "RJ013")
        assert findings == []

    def test_surplus_backend_only_op_is_a_warning(self):
        findings = _run(self._backends(
            "    def xcorr(self, plane, coeffs, out=None):\n"
            "        return plane\n"
            "    def moving_sums(self, padded, window):\n"
            "        return padded\n"
            "    def warmup(self):\n"
            "        pass\n"
        ), "RJ013")
        assert [f.severity.value for f in findings] == ["warning"]
        assert "warmup" in findings[0].message

    def test_private_and_dunder_methods_ignored(self):
        findings = _run(self._backends(
            "    def __init__(self):\n"
            "        pass\n"
            "    def _jit(self):\n"
            "        pass\n"
            "    def xcorr(self, plane, coeffs, out=None):\n"
            "        return plane\n"
            "    def moving_sums(self, padded, window):\n"
            "        return padded\n"
        ), "RJ013")
        assert findings == []

    def test_suppression_exempts_a_backend(self):
        files = self._backends(
            "    def xcorr(self, plane, coeffs, out=None):\n"
            "        return plane\n"
        )
        files["src/repro/kernels/nb_b.py"] = files[
            "src/repro/kernels/nb_b.py"].replace(
            "class NumbaB(KernelBackend):",
            "class NumbaB(KernelBackend):  # repro-lint: disable=RJ013")
        assert _run(files, "RJ013") == []


class TestRealRepoDogfood:
    def test_real_kernel_backends_have_parity(self):
        # The actual numpy/numba backends must satisfy RJ013 — the
        # rule exists because this file pair drifted once.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        files = {
            f"src/repro/kernels/{name}":
                (root / "kernels" / name).read_text()
            for name in ("dispatch.py", "numpy_backend.py",
                         "numba_backend.py")
        }
        assert _run(files, "RJ013") == []
