"""Engine behavior: suppressions, reporters, rule selection, parse errors."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import (
    ALL_RULES,
    analyze_source,
    get_rule,
    render_json,
    render_text,
    resolve_rules,
)
from repro.analysis.engine import PARSE_ERROR_CODE

_BAD_DIVISION = """\
    def metric(total, count):
        return total / count
    """

_BIT_EXACT_PATH = "src/repro/hw/cross_correlator.py"


def _rj003(source: str) -> list:
    return analyze_source(source, _BIT_EXACT_PATH,
                          rules=[get_rule("RJ003")])


class TestSuppressions:
    def test_line_level_disable(self):
        source = textwrap.dedent("""\
            def metric(total, count):
                return total / count  # repro-lint: disable=RJ003
            """)
        assert not _rj003(source)

    def test_def_scoped_disable_covers_whole_body(self):
        source = textwrap.dedent("""\
            def host_helper(total, count):  # repro-lint: disable=RJ003
                scale = float(total)
                return scale / count
            """)
        assert not _rj003(source)

    def test_def_scope_does_not_leak_to_siblings(self):
        source = textwrap.dedent("""\
            def host_helper(total):  # repro-lint: disable=RJ003
                return float(total)

            def datapath(total, count):
                return total / count
            """)
        findings = _rj003(source)
        assert [finding.line for finding in findings] == [5]

    def test_file_level_disable(self):
        source = textwrap.dedent("""\
            # repro-lint: disable-file=RJ003
            def a(x):
                return x / 2

            def b(x):
                return x / 3
            """)
        assert not _rj003(source)

    def test_suppressing_one_rule_keeps_others(self):
        source = textwrap.dedent("""\
            def f(bus):
                bus.write(19, 100)  # repro-lint: disable=RJ002
            """)
        findings = analyze_source(source, "src/repro/apps/x.py")
        assert {finding.rule for finding in findings} == {"RJ001", "RJ005"}


class TestReporters:
    def _findings(self):
        return analyze_source(textwrap.dedent(_BAD_DIVISION), _BIT_EXACT_PATH,
                              rules=[get_rule("RJ003")])

    def test_text_report_names_location_and_rule(self):
        report = render_text(self._findings())
        assert f"{_BIT_EXACT_PATH}:2:" in report
        assert "RJ003" in report
        assert "1 finding(s)" in report

    def test_text_report_clean(self):
        assert "clean" in render_text([])

    def test_json_schema(self):
        findings = self._findings()
        report = json.loads(render_json(findings, ["RJ003"]))
        assert report["tool"] == "repro-lint"
        assert report["schema_version"] == 1
        assert report["rules_run"] == ["RJ003"]
        assert report["total"] == len(findings) == 1
        assert report["counts"] == {"RJ003": 1}
        entry = report["findings"][0]
        assert entry["rule"] == "RJ003"
        assert entry["file"] == _BIT_EXACT_PATH
        assert entry["line"] == 2
        assert entry["severity"] == "error"
        assert isinstance(entry["message"], str) and entry["message"]


class TestRuleSelection:
    def test_all_rules_have_unique_codes(self):
        codes = [rule.code for rule in ALL_RULES]
        assert len(set(codes)) == len(codes) == 14
        assert codes == sorted(codes)

    def test_select_narrows(self):
        rules = resolve_rules(select=["RJ001", "rj003"])
        assert [rule.code for rule in rules] == ["RJ001", "RJ003"]

    def test_ignore_drops(self):
        rules = resolve_rules(ignore=["RJ005"])
        assert "RJ005" not in {rule.code for rule in rules}

    def test_unknown_select_raises(self):
        try:
            resolve_rules(select=["RJ999"])
        except ValueError as exc:
            assert "RJ999" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_unknown_ignore_raises(self):
        # --ignore validates exactly like --select: a typo'd code that
        # silently ignores nothing must be rejected, not swallowed.
        try:
            resolve_rules(ignore=["RJ001", "RJ998"])
        except ValueError as exc:
            assert "RJ998" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestFileDiscovery:
    def _make_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        return pkg

    def test_overlapping_dir_and_file_dedupe(self, tmp_path):
        from repro.analysis import iter_python_files

        pkg = self._make_tree(tmp_path)
        files = list(iter_python_files([pkg, pkg / "a.py"]))
        assert sorted(f.name for f in files) == ["a.py", "b.py"]

    def test_same_dir_twice_dedupes(self, tmp_path):
        from repro.analysis import iter_python_files

        pkg = self._make_tree(tmp_path)
        files = list(iter_python_files([pkg, pkg]))
        assert sorted(f.name for f in files) == ["a.py", "b.py"]

    def test_relative_and_absolute_spellings_dedupe(self, tmp_path,
                                                    monkeypatch):
        from repro.analysis import iter_python_files

        pkg = self._make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        files = list(iter_python_files(["pkg/a.py", pkg / "a.py"]))
        assert [f.name for f in files] == ["a.py"]


class TestParseErrors:
    def test_syntax_error_becomes_rj000(self):
        findings = analyze_source("def broken(:\n", "src/repro/apps/x.py")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_CODE
