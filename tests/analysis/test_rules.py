"""Per-rule fixtures: each RJ rule must fire on a violating snippet
and stay silent on a clean one."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule


def _run(rule_code: str, source: str, path: str) -> list:
    findings = analyze_source(textwrap.dedent(source), path,
                              rules=[get_rule(rule_code)])
    return [finding for finding in findings if finding.rule == rule_code]


class TestRJ001RawRegisterAddress:
    def test_fires_on_raw_write_address(self):
        found = _run("RJ001", """\
            def configure(bus):
                bus.write(19, 100)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert found[0].line == 2
        assert "19" in found[0].message

    def test_fires_on_raw_read_and_attribute_receiver(self):
        found = _run("RJ001", """\
            def peek(self):
                return self._bus.read(20)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_fires_on_literal_arithmetic(self):
        found = _run("RJ001", """\
            def configure(bus):
                bus.write(7 + 3, 0)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_clean_with_named_constant(self):
        assert not _run("RJ001", """\
            from repro.hw import register_map as regmap

            def configure(bus, value):
                bus.write(regmap.REG_JAM_DELAY, value)
                for k in range(7):
                    bus.write(regmap.REG_COEFF_I_BASE + k, 0)
            """, "src/repro/apps/good.py")

    def test_register_map_itself_is_exempt(self):
        assert not _run("RJ001", """\
            def selftest(bus):
                bus.write(0, 0)
            """, "src/repro/hw/register_map.py")

    def test_non_bus_receivers_ignored(self):
        assert not _run("RJ001", """\
            def save(stream):
                stream.write(42)
            """, "src/repro/apps/good.py")


class TestRJ002RegisterFieldOverflow:
    def test_fires_on_overflowing_replay_length(self):
        found = _run("RJ002", """\
            from repro.hw.register_map import REG_REPLAY_LENGTH

            def configure(bus):
                bus.write(REG_REPLAY_LENGTH, 513)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "REG_REPLAY_LENGTH" in found[0].message

    def test_fires_on_wide_trigger_config(self):
        found = _run("RJ002", """\
            from repro.hw import register_map as regmap

            def configure(bus):
                bus.write(regmap.REG_TRIGGER_CONFIG, 1 << 16)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_fires_on_oversized_q88_threshold(self):
        found = _run("RJ002", """\
            from repro.hw import register_map as regmap

            def configure(bus):
                bus.write(regmap.REG_ENERGY_THRESHOLD_HIGH, 0x10000)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_clean_at_exact_field_maximum(self):
        assert not _run("RJ002", """\
            from repro.hw import register_map as regmap

            def configure(bus):
                bus.write(regmap.REG_REPLAY_LENGTH, 512)
                bus.write(regmap.REG_TRIGGER_CONFIG, 0xFFFF)
                bus.write(regmap.REG_JAM_UPTIME, 0xFFFFFFFF)
            """, "src/repro/apps/good.py")

    def test_non_literal_values_not_checked(self):
        assert not _run("RJ002", """\
            from repro.hw import register_map as regmap

            def configure(bus, value):
                bus.write(regmap.REG_REPLAY_LENGTH, value)
            """, "src/repro/apps/good.py")


class TestRJ003BitExactModules:
    def test_fires_on_true_division(self):
        found = _run("RJ003", """\
            def metric(total, count):
                return total / count
            """, "src/repro/hw/cross_correlator.py")
        assert len(found) == 1
        assert "division" in found[0].message

    def test_fires_on_float_literal_arithmetic(self):
        found = _run("RJ003", """\
            def scale(x):
                return x * 0.5
            """, "src/repro/hw/energy_differentiator.py")
        assert len(found) == 1

    def test_fires_on_float_call_and_comparison(self):
        found = _run("RJ003", """\
            def check(x):
                if x > 1.5:
                    return float(x)
                return 0
            """, "src/repro/hw/trigger.py")
        assert len(found) == 2

    def test_clean_integer_datapath(self):
        assert not _run("RJ003", """\
            def metric(re, im):
                return re ** 2 + im ** 2

            def shift(x):
                return (x >> 2) + (x // 4)
            """, "src/repro/hw/cross_correlator.py")

    def test_other_modules_unconstrained(self):
        assert not _run("RJ003", """\
            def gain(db):
                return 10.0 ** (db / 10.0)
            """, "src/repro/dsp/measure.py")


class TestRJ004TimingMagicNumbers:
    def test_fires_on_inline_baseband_rate(self):
        found = _run("RJ004", """\
            def duration(samples):
                return samples / 25e6
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "BASEBAND_RATE" in found[0].message

    def test_fires_on_integer_spelling_and_clock(self):
        found = _run("RJ004", """\
            RATE = 25_000_000
            CLOCK = 100_000_000
            """, "src/repro/apps/bad.py")
        assert len(found) == 2

    def test_fires_on_sample_period(self):
        found = _run("RJ004", """\
            TICK = 40e-9
            """, "src/repro/apps/bad.py")
        assert "SAMPLE_PERIOD" in found[0].message

    def test_units_module_is_the_authority(self):
        assert not _run("RJ004", """\
            BASEBAND_RATE = 25_000_000
            FPGA_CLOCK_HZ = 100_000_000
            """, "src/repro/units.py")

    def test_phy_params_modules_are_authorities(self):
        assert not _run("RJ004", """\
            WIFI_SAMPLE_RATE = 20_000_000
            """, "src/repro/phy/wifi/params.py")

    def test_unrelated_numbers_clean(self):
        assert not _run("RJ004", """\
            N_FFT = 64
            BUDGET = 123456
            """, "src/repro/apps/good.py")


class TestRJ005Hygiene:
    def test_fires_on_mutable_default(self):
        found = _run("RJ005", """\
            from __future__ import annotations

            def collect(into=[]):
                return into
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "mutable default" in found[0].message

    def test_fires_on_bare_except(self):
        found = _run("RJ005", """\
            from __future__ import annotations

            def run(fn):
                try:
                    fn()
                except:
                    pass
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "bare" in found[0].message

    def test_fires_on_missing_future_import_in_src(self):
        found = _run("RJ005", """\
            import os

            print(os.sep)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "__future__" in found[0].message
        assert found[0].line == 1

    def test_clean_module(self):
        assert not _run("RJ005", """\
            from __future__ import annotations

            def collect(into=None):
                if into is None:
                    into = []
                return into
            """, "src/repro/apps/good.py")

    def test_docstring_only_module_needs_no_future_import(self):
        assert not _run("RJ005", '"""Just a docstring."""\n',
                        "src/repro/apps/__init__.py")

    def test_future_import_not_required_outside_src(self):
        assert not _run("RJ005", "import os\nprint(os.sep)\n",
                        "examples/demo.py")


class TestRJ006RawBusConstruction:
    def test_fires_on_construction_outside_hw(self):
        found = _run("RJ006", """\
            from __future__ import annotations

            from repro.hw.registers import UserRegisterBus

            def boot():
                bus = UserRegisterBus()
                return bus
            """, "src/repro/apps/bad.py")
        assert len(found) == 1
        assert "UhdDriver" in found[0].message

    def test_fires_on_attribute_construction(self):
        found = _run("RJ006", """\
            from __future__ import annotations

            import repro.hw.registers as registers

            def boot():
                return registers.UserRegisterBus()
            """, "src/repro/core/bad.py")
        assert len(found) == 1

    def test_hw_modules_are_exempt(self):
        assert not _run("RJ006", """\
            from __future__ import annotations

            def boot():
                return UserRegisterBus()
            """, "src/repro/hw/usrp.py")

    def test_faults_modules_are_exempt(self):
        assert not _run("RJ006", """\
            from __future__ import annotations

            def boot():
                return UserRegisterBus()
            """, "src/repro/faults/bus.py")

    def test_tests_and_tools_outside_src_are_exempt(self):
        assert not _run("RJ006", """\
            def boot():
                return UserRegisterBus()
            """, "tests/hw/test_registers.py")

    def test_subclass_wrappers_do_not_fire(self):
        assert not _run("RJ006", """\
            from __future__ import annotations

            from repro.faults.bus import FaultyRegisterBus

            def boot(plan):
                return FaultyRegisterBus(plan)
            """, "src/repro/apps/good.py")


class TestRJ007WallClockInModel:
    def test_fires_on_time_time_in_hw(self):
        found = _run("RJ007", """\
            import time

            def stamp():
                return time.time()
            """, "src/repro/hw/bad.py")
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_fires_on_perf_counter_in_dsp(self):
        found = _run("RJ007", """\
            import time

            def tick():
                return time.perf_counter_ns()
            """, "src/repro/dsp/bad.py")
        assert len(found) == 1

    def test_fires_on_from_imported_alias(self):
        found = _run("RJ007", """\
            from time import perf_counter as pc

            def tick():
                return pc()
            """, "src/repro/phy/bad.py")
        assert len(found) == 1
        assert "time.perf_counter" in found[0].message

    def test_fires_on_datetime_now(self):
        found = _run("RJ007", """\
            from datetime import datetime

            def stamp():
                return datetime.now()
            """, "src/repro/hw/bad.py")
        assert len(found) == 1

    def test_fires_on_datetime_module_attribute(self):
        found = _run("RJ007", """\
            import datetime

            def stamp():
                return datetime.utcnow()
            """, "src/repro/hw/bad.py")
        assert len(found) == 1

    def test_telemetry_module_is_exempt(self):
        assert not _run("RJ007", """\
            import time

            def now_ns():
                return time.perf_counter_ns()
            """, "src/repro/telemetry/timebase.py")

    def test_tests_are_exempt(self):
        assert not _run("RJ007", """\
            import time

            def now():
                return time.time()
            """, "tests/hw/test_clock.py")

    def test_sample_clock_arithmetic_is_clean(self):
        assert not _run("RJ007", """\
            def stamp(core):
                return core.clock * 40
            """, "src/repro/hw/good.py")

    def test_unrelated_time_attribute_is_clean(self):
        assert not _run("RJ007", """\
            import time

            def nap():
                time.sleep(0.01)
            """, "src/repro/hw/good.py")

    def test_non_time_name_collision_is_clean(self):
        assert not _run("RJ007", """\
            def monotonic(values):
                return all(b >= a for a, b in zip(values, values[1:]))

            def check(values):
                return monotonic(values)
            """, "src/repro/hw/good.py")


class TestRJ008AdHocProcessPool:
    def test_fires_on_process_pool_executor(self):
        found = _run("RJ008", """\
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                with ProcessPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(len, jobs))
            """, "src/repro/experiments/bad.py")
        assert len(found) == 1
        assert "ProcessPoolExecutor" in found[0].message

    def test_fires_on_multiprocessing_pool(self):
        found = _run("RJ008", """\
            import multiprocessing

            def fan_out(jobs):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(len, jobs)
            """, "src/repro/experiments/bad.py")
        assert len(found) == 1

    def test_fires_on_aliased_futures_module(self):
        found = _run("RJ008", """\
            import concurrent.futures as cf

            def fan_out(jobs):
                return cf.ProcessPoolExecutor(max_workers=2)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_fires_on_context_pool(self):
        found = _run("RJ008", """\
            import multiprocessing

            def fan_out():
                return multiprocessing.get_context("fork").Pool(2)
            """, "src/repro/apps/bad.py")
        assert len(found) == 1

    def test_runtime_package_is_exempt(self):
        assert not _run("RJ008", """\
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            def pool(workers):
                return ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("fork"))
            """, "src/repro/runtime/sweep.py")

    def test_tests_are_exempt(self):
        assert not _run("RJ008", """\
            from concurrent.futures import ProcessPoolExecutor

            def helper():
                return ProcessPoolExecutor(max_workers=2)
            """, "tests/runtime/test_sweep.py")

    def test_name_collision_without_import_is_clean(self):
        assert not _run("RJ008", """\
            class Pool:
                pass

            def make():
                return Pool()
            """, "src/repro/apps/good.py")

    def test_thread_pool_is_clean(self):
        assert not _run("RJ008", """\
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(jobs):
                with ThreadPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(len, jobs))
            """, "src/repro/experiments/good.py")


class TestRJ009RawDspPrimitive:
    def test_fires_on_np_correlate(self):
        found = _run("RJ009", """\
            import numpy as np

            def metric(signal, template):
                return np.correlate(signal, template, mode="valid")
            """, "src/repro/dsp/bad.py")
        assert len(found) == 1
        assert "np.correlate" in found[0].message

    def test_fires_on_np_convolve(self):
        found = _run("RJ009", """\
            import numpy as np

            def smooth(signal, kernel):
                return np.convolve(signal, kernel)
            """, "src/repro/channel/bad.py")
        assert len(found) == 1

    def test_fires_on_from_imported_primitive(self):
        found = _run("RJ009", """\
            from numpy import convolve

            def smooth(signal, kernel):
                return convolve(signal, kernel)
            """, "src/repro/channel/bad.py")
        assert len(found) == 1

    def test_fires_on_sliding_window_view(self):
        found = _run("RJ009", """\
            from numpy.lib.stride_tricks import sliding_window_view

            def frames(signal, window):
                return sliding_window_view(signal, window)
            """, "src/repro/dsp/bad.py")
        assert len(found) == 1

    def test_fires_on_nested_attribute_chain(self):
        found = _run("RJ009", """\
            import numpy as np

            def frames(signal, window):
                return np.lib.stride_tricks.sliding_window_view(
                    signal, window)
            """, "src/repro/dsp/bad.py")
        assert len(found) == 1

    def test_kernels_package_is_exempt(self):
        assert not _run("RJ009", """\
            import numpy as np

            def convolve(signal, kernel, mode="full"):
                return np.convolve(signal, kernel, mode)
            """, "src/repro/kernels/ops.py")

    def test_tests_are_exempt(self):
        assert not _run("RJ009", """\
            import numpy as np

            def reference(signal, template):
                return np.correlate(signal, template, mode="valid")
            """, "tests/kernels/test_xcorr_kernels.py")

    def test_name_collision_without_import_is_clean(self):
        assert not _run("RJ009", """\
            def convolve(signal, kernel):
                return [s * k for s, k in zip(signal, kernel)]

            def smooth(signal, kernel):
                return convolve(signal, kernel)
            """, "src/repro/dsp/good.py")

    def test_other_numpy_calls_are_clean(self):
        assert not _run("RJ009", """\
            import numpy as np

            def energy(signal):
                return np.sum(np.abs(signal) ** 2)
            """, "src/repro/dsp/good.py")


class TestRJ014UnboundedRetry:
    def test_fires_on_swallow_and_spin(self):
        found = _run("RJ014", """\
            import time

            def read_forever(bus):
                while True:
                    try:
                        return bus.read()
                    except OSError:
                        time.sleep(0.1)
            """, "src/repro/hw/bad.py")
        assert len(found) == 1
        assert "unbounded retry" in found[0].message

    def test_fires_on_explicit_continue(self):
        found = _run("RJ014", """\
            def poll(queue):
                while True:
                    try:
                        item = queue.pop()
                    except IndexError:
                        continue
                    return item
            """, "src/repro/runtime/bad.py")
        assert len(found) == 1

    def test_clean_with_attempt_bound(self):
        assert not _run("RJ014", """\
            import time

            def read_with_budget(bus, max_attempts=5):
                attempts = 0
                while True:
                    try:
                        return bus.read()
                    except OSError:
                        attempts += 1
                        if attempts >= max_attempts:
                            raise
                        time.sleep(0.1)
            """, "src/repro/hw/good.py")

    def test_clean_with_deadline_bound(self):
        assert not _run("RJ014", """\
            import time

            def read_until(bus, deadline):
                while True:
                    try:
                        return bus.read()
                    except OSError:
                        if time.monotonic() > deadline:
                            raise
            """, "src/repro/faults/good.py")

    def test_clean_when_handler_reraises(self):
        assert not _run("RJ014", """\
            def read_once(bus):
                while True:
                    try:
                        return bus.read()
                    except OSError:
                        raise
            """, "src/repro/hw/good.py")

    def test_infinite_generators_are_clean(self):
        assert not _run("RJ014", """\
            def ticks(period):
                while True:
                    yield period
            """, "src/repro/faults/plan.py")

    def test_bounded_while_condition_is_clean(self):
        assert not _run("RJ014", """\
            def drain(queue, pending):
                while pending:
                    try:
                        pending.pop().result()
                    except ValueError:
                        pass
            """, "src/repro/runtime/good.py")

    def test_unwatched_packages_are_exempt(self):
        assert not _run("RJ014", """\
            import time

            def read_forever(bus):
                while True:
                    try:
                        return bus.read()
                    except OSError:
                        time.sleep(0.1)
            """, "src/repro/phy/elsewhere.py")

    def test_nested_function_bound_does_not_count(self):
        found = _run("RJ014", """\
            def outer(bus):
                while True:
                    def helper(attempts):
                        return attempts < 3
                    try:
                        return bus.read()
                    except OSError:
                        pass
            """, "src/repro/hw/bad.py")
        assert len(found) == 1
