"""The SARIF exporter: minimal valid 2.1.0 shape for code scanning."""

from __future__ import annotations

import json

from repro.analysis import ALL_RULES, get_rule, render_sarif
from repro.analysis.findings import Finding, Severity


def _finding(rule="RJ003", severity=Severity.ERROR) -> Finding:
    return Finding(rule=rule, message="float in datapath",
                   path="src/repro/hw/x.py", line=7, col=4,
                   severity=severity)


class TestSarifShape:
    def test_top_level_envelope(self):
        sarif = json.loads(render_sarif([_finding()], ALL_RULES))
        assert sarif["version"] == "2.1.0"
        assert sarif["$schema"].endswith("sarif-2.1.0.json")
        assert len(sarif["runs"]) == 1

    def test_driver_carries_rule_catalogue(self):
        sarif = json.loads(render_sarif([], ALL_RULES))
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == [rule.code for rule in ALL_RULES]
        for entry in driver["rules"]:
            assert entry["shortDescription"]["text"]
            assert entry["fullDescription"]["text"]

    def test_result_location_and_level(self):
        sarif = json.loads(render_sarif([_finding()], ALL_RULES))
        result = sarif["runs"][0]["results"][0]
        assert result["ruleId"] == "RJ003"
        assert result["level"] == "error"
        assert result["message"]["text"] == "float in datapath"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/hw/x.py"
        assert location["region"]["startLine"] == 7
        # SARIF columns are 1-based; the finding's col is the 0-based
        # AST offset.
        assert location["region"]["startColumn"] == 5

    def test_rule_index_points_into_catalogue(self):
        sarif = json.loads(render_sarif([_finding()], ALL_RULES))
        run = sarif["runs"][0]
        result = run["results"][0]
        catalogue = run["tool"]["driver"]["rules"]
        assert catalogue[result["ruleIndex"]]["id"] == "RJ003"

    def test_warning_severity_maps_to_warning_level(self):
        sarif = json.loads(render_sarif(
            [_finding(severity=Severity.WARNING)], ALL_RULES))
        assert sarif["runs"][0]["results"][0]["level"] == "warning"

    def test_empty_findings_yield_empty_results(self):
        sarif = json.loads(render_sarif([], [get_rule("RJ003")]))
        assert sarif["runs"][0]["results"] == []
