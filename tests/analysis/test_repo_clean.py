"""The tier-1 gate: the repository itself must be repro-lint clean,
and a deliberately corrupted fixture must fail loudly through the CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
EXAMPLES = REPO_ROOT / "examples"


def _cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


class TestRepoIsClean:
    def test_src_has_zero_findings(self):
        findings = analyze_paths([SRC])
        assert findings == [], "\n".join(
            f"{finding.location}: {finding.rule} {finding.message}"
            for finding in findings
        )

    def test_examples_have_zero_findings(self):
        assert analyze_paths([EXAMPLES]) == []

    def test_cli_gate_exits_zero(self):
        result = _cli(["src", "--format", "json"], cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["total"] == 0


class TestCorruptedFixtureFailsTheGate:
    def test_raw_address_yields_json_finding_and_nonzero_exit(self, tmp_path):
        scratch = tmp_path / "src" / "repro" / "apps" / "corrupted.py"
        scratch.parent.mkdir(parents=True)
        scratch.write_text(
            "from __future__ import annotations\n"
            "\n"
            "def sabotage(bus):\n"
            "    bus.write(99, 1)\n"
        )
        result = _cli([str(scratch), "--format", "json"], cwd=tmp_path)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["total"] == 1
        finding = report["findings"][0]
        assert finding["rule"] == "RJ001"
        assert finding["file"] == str(scratch)
        assert finding["line"] == 4

    def test_overflowing_literal_yields_rj002(self, tmp_path):
        scratch = tmp_path / "overflow.py"
        scratch.write_text(
            "from repro.hw import register_map as regmap\n"
            "\n"
            "def sabotage(bus):\n"
            "    bus.write(regmap.REG_REPLAY_LENGTH, 1024)\n"
        )
        result = _cli([str(scratch), "--format", "json"], cwd=tmp_path)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        rules = {finding["rule"] for finding in report["findings"]}
        assert "RJ002" in rules


class TestCliBasics:
    def test_list_rules(self):
        result = _cli(["--list-rules"], cwd=REPO_ROOT)
        assert result.returncode == 0
        for code in ("RJ001", "RJ002", "RJ003", "RJ004", "RJ005"):
            assert code in result.stdout

    def test_missing_path_is_usage_error(self):
        result = _cli(["no/such/path"], cwd=REPO_ROOT)
        assert result.returncode == 2

    def test_select_unknown_rule_is_usage_error(self):
        result = _cli(["src", "--select", "RJ999"], cwd=REPO_ROOT)
        assert result.returncode == 2

    def test_text_format_reports_clean(self):
        result = _cli(["src/repro/units.py"], cwd=REPO_ROOT)
        assert result.returncode == 0
        assert "clean" in result.stdout
