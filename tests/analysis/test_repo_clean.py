"""The tier-1 gate: the repository itself must be repro-lint clean,
and a deliberately corrupted fixture must fail loudly through the CLI.

Tier-1 always runs the fast gates: source roots via the library API
and the git-aware ``--changed-only`` CLI pass over the diff.  The
full four-directory project scan (src, examples, benchmarks, tests
against the checked-in ratchet baseline) is CI's job and runs here
only when ``CI`` is set, so the local red-green loop stays quick.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, apply_baseline, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
EXAMPLES = REPO_ROOT / "examples"
BENCHMARKS = REPO_ROOT / "benchmarks"
TESTS = REPO_ROOT / "tests"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"

in_ci = pytest.mark.skipif(
    not os.environ.get("CI"),
    reason="full-project scan runs in CI; tier-1 uses --changed-only",
)


def _cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


class TestRepoIsClean:
    def test_src_has_zero_findings(self):
        findings = analyze_paths([SRC])
        assert findings == [], "\n".join(
            f"{finding.location}: {finding.rule} {finding.message}"
            for finding in findings
        )

    def test_examples_have_zero_findings(self):
        assert analyze_paths([EXAMPLES]) == []

    def test_cli_gate_exits_zero(self):
        result = _cli(["src", "--format", "json"], cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["total"] == 0

    def test_changed_only_gate_exits_zero(self):
        # The tier-1 fast gate: lint only the files changed against
        # HEAD (project index still spans src).  On a pristine
        # checkout this is a no-op; on a dirty tree it checks exactly
        # the diff.
        result = _cli(["src", "examples", "--changed-only"],
                      cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr


class TestFullProjectScanInCI:
    @in_ci
    def test_benchmarks_have_zero_findings(self):
        assert analyze_paths([BENCHMARKS]) == []

    @in_ci
    def test_tests_are_clean_modulo_baseline(self, monkeypatch):
        # Baseline keys are repo-relative (the CLI runs from the repo
        # root), so scan with relative paths from there.
        monkeypatch.chdir(REPO_ROOT)
        findings = analyze_paths(
            ["src", "examples", "benchmarks", "tests"])
        surviving, _ = apply_baseline(findings, load_baseline(BASELINE))
        assert surviving == [], "\n".join(
            f"{finding.location}: {finding.rule} {finding.message}"
            for finding in surviving
        )

    @in_ci
    def test_cli_full_scan_with_baseline_exits_zero(self):
        result = _cli(["src", "examples", "benchmarks", "tests"],
                      cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "baselined finding(s) suppressed" in result.stdout


class TestCorruptedFixtureFailsTheGate:
    def test_raw_address_yields_json_finding_and_nonzero_exit(self, tmp_path):
        scratch = tmp_path / "src" / "repro" / "apps" / "corrupted.py"
        scratch.parent.mkdir(parents=True)
        scratch.write_text(
            "from __future__ import annotations\n"
            "\n"
            "def sabotage(bus):\n"
            "    bus.write(99, 1)\n"
        )
        result = _cli([str(scratch), "--format", "json"], cwd=tmp_path)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["total"] == 1
        finding = report["findings"][0]
        assert finding["rule"] == "RJ001"
        assert finding["file"] == str(scratch)
        assert finding["line"] == 4

    def test_overflowing_literal_yields_rj002(self, tmp_path):
        scratch = tmp_path / "overflow.py"
        scratch.write_text(
            "from repro.hw import register_map as regmap\n"
            "\n"
            "def sabotage(bus):\n"
            "    bus.write(regmap.REG_REPLAY_LENGTH, 1024)\n"
        )
        result = _cli([str(scratch), "--format", "json"], cwd=tmp_path)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        rules = {finding["rule"] for finding in report["findings"]}
        assert "RJ002" in rules


class TestCliBasics:
    def test_list_rules(self):
        result = _cli(["--list-rules"], cwd=REPO_ROOT)
        assert result.returncode == 0
        for code in ("RJ001", "RJ002", "RJ003", "RJ004", "RJ005",
                     "RJ010", "RJ011", "RJ012", "RJ013"):
            assert code in result.stdout

    def test_missing_path_is_usage_error(self):
        result = _cli(["no/such/path"], cwd=REPO_ROOT)
        assert result.returncode == 2

    def test_select_unknown_rule_is_usage_error(self):
        result = _cli(["src", "--select", "RJ999"], cwd=REPO_ROOT)
        assert result.returncode == 2

    def test_text_format_reports_clean(self):
        result = _cli(["src/repro/units.py"], cwd=REPO_ROOT)
        assert result.returncode == 0
        assert "clean" in result.stdout


class TestCliBaselineAndSarif:
    CORRUPTED = (
        "from __future__ import annotations\n"
        "\n"
        "def sabotage(bus):\n"
        "    bus.write(99, 1)\n"
    )

    def _scratch(self, tmp_path: Path) -> Path:
        scratch = tmp_path / "src" / "repro" / "apps" / "corrupted.py"
        scratch.parent.mkdir(parents=True)
        scratch.write_text(self.CORRUPTED)
        return scratch

    def test_update_baseline_then_rerun_is_clean(self, tmp_path):
        scratch = self._scratch(tmp_path)
        update = _cli([str(scratch), "--update-baseline"], cwd=tmp_path)
        assert update.returncode == 0, update.stdout + update.stderr
        assert (tmp_path / ".repro-lint-baseline.json").exists()
        rerun = _cli([str(scratch)], cwd=tmp_path)
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert "baselined finding(s) suppressed" in rerun.stdout

    def test_new_finding_beyond_baseline_still_fails(self, tmp_path):
        scratch = self._scratch(tmp_path)
        _cli([str(scratch), "--update-baseline"], cwd=tmp_path)
        scratch.write_text(self.CORRUPTED + "    bus.write(98, 2)\n")
        rerun = _cli([str(scratch)], cwd=tmp_path)
        assert rerun.returncode == 1
        assert "RJ001" in rerun.stdout

    def test_no_baseline_reports_everything(self, tmp_path):
        scratch = self._scratch(tmp_path)
        _cli([str(scratch), "--update-baseline"], cwd=tmp_path)
        rerun = _cli([str(scratch), "--no-baseline"], cwd=tmp_path)
        assert rerun.returncode == 1
        assert "RJ001" in rerun.stdout

    def test_sarif_output_for_a_finding(self, tmp_path):
        scratch = self._scratch(tmp_path)
        result = _cli([str(scratch), "--format", "sarif"], cwd=tmp_path)
        assert result.returncode == 1
        sarif = json.loads(result.stdout)
        assert sarif["version"] == "2.1.0"
        rule_ids = {res["ruleId"]
                    for res in sarif["runs"][0]["results"]}
        assert "RJ001" in rule_ids
