"""The ratchet baseline: swallow the recorded count, never finding N+1."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    apply_baseline,
    build_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding


def _finding(rule: str, path: str, line: int) -> Finding:
    return Finding(rule=rule, message="m", path=path, line=line, col=0)


class TestBuildAndRoundtrip:
    def test_counts_keyed_by_rule_and_path(self):
        findings = [
            _finding("RJ004", "tests/a.py", 1),
            _finding("RJ004", "tests/a.py", 9),
            _finding("RJ001", "tests/b.py", 2),
        ]
        assert build_baseline(findings) == {
            "RJ001::tests/b.py": 1,
            "RJ004::tests/a.py": 2,
        }

    def test_write_then_load_roundtrips(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [_finding("RJ004", "tests/a.py", 1)]
        written = write_baseline(target, findings)
        assert load_baseline(target) == written == {
            "RJ004::tests/a.py": 1}
        payload = json.loads(target.read_text())
        assert payload["tool"] == "repro-lint"
        assert payload["schema_version"] == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_bad_schema_version_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps(
            {"schema_version": 99, "counts": {}}))
        with pytest.raises(ValueError):
            load_baseline(target)

    def test_malformed_counts_raise(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps(
            {"schema_version": 1, "counts": {"RJ004::a.py": "two"}}))
        with pytest.raises(ValueError):
            load_baseline(target)


class TestRatchet:
    def test_baselined_findings_are_swallowed(self):
        findings = [_finding("RJ004", "tests/a.py", 1)]
        surviving, suppressed = apply_baseline(
            findings, {"RJ004::tests/a.py": 1})
        assert surviving == []
        assert suppressed == 1

    def test_finding_n_plus_one_survives(self):
        findings = [
            _finding("RJ004", "tests/a.py", 1),
            _finding("RJ004", "tests/a.py", 9),
        ]
        surviving, suppressed = apply_baseline(
            findings, {"RJ004::tests/a.py": 1})
        assert suppressed == 1
        # Report order means the later occurrence — the likely new
        # violation — is the one that surfaces.
        assert [f.line for f in surviving] == [9]

    def test_other_rules_and_paths_unaffected(self):
        findings = [
            _finding("RJ001", "tests/a.py", 1),
            _finding("RJ004", "tests/b.py", 1),
        ]
        surviving, suppressed = apply_baseline(
            findings, {"RJ004::tests/a.py": 5})
        assert suppressed == 0
        assert surviving == findings

    def test_fixed_findings_shrink_naturally(self):
        # Fewer findings than the baseline records is simply clean;
        # --update-baseline tightens the ratchet on the next run.
        surviving, suppressed = apply_baseline(
            [], {"RJ004::tests/a.py": 3})
        assert surviving == [] and suppressed == 0
