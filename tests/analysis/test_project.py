"""The index phase: ProjectContext, call graph, parallel parsing.

The acceptance budget for the whole analysis is explicit: a full
project index plus all thirteen rules over the entire repository in
under ten seconds.  The timing tests here measure the index phase
directly against the real source tree, and the parallel-parse tests
assert result *parity* unconditionally and speedup only where the box
actually has cores to spend (single-core CI runners prove nothing
about a pool).
"""

from __future__ import annotations

import ast
import os
import time
from pathlib import Path

import pytest

from repro.analysis.engine import parse_files
from repro.analysis.project import (
    MODULE_BODY,
    ProjectContext,
    module_name_for_path,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _build(files: dict[str, str]) -> ProjectContext:
    return ProjectContext.build(
        [(path, ast.parse(source)) for path, source in files.items()])


class TestModuleNames:
    def test_src_files_get_import_names(self):
        assert module_name_for_path(
            "src/repro/hw/trigger.py") == "repro.hw.trigger"

    def test_package_init_names_the_package(self):
        assert module_name_for_path(
            "src/repro/kernels/__init__.py") == "repro.kernels"

    def test_out_of_tree_files_get_pseudo_names(self):
        name = module_name_for_path("tests/hw/test_trigger.py")
        assert name.endswith("test_trigger")


class TestSymbolTable:
    FILES = {
        "src/repro/dsp/a.py": (
            "from __future__ import annotations\n"
            "def top(x):\n"
            "    return helper(x)\n"
            "def helper(x):\n"
            "    return x\n"
            "class Filter:\n"
            "    taps = 4\n"
            "    def __init__(self):\n"
            "        self.acc = 0\n"
            "    def step(self, x):\n"
            "        return self._inner(x)\n"
            "    def _inner(self, x):\n"
            "        return x\n"
        ),
    }

    def test_functions_and_methods_indexed_by_qualname(self):
        project = _build(self.FILES)
        assert "repro.dsp.a:top" in project.functions
        assert "repro.dsp.a:helper" in project.functions
        assert "repro.dsp.a:Filter.step" in project.functions
        assert "repro.dsp.a:Filter" in project.classes

    def test_module_body_is_a_pseudo_function(self):
        project = _build(self.FILES)
        assert f"repro.dsp.a:{MODULE_BODY}" in project.functions

    def test_class_attrs_and_init_state_recorded(self):
        project = _build(self.FILES)
        klass = project.classes["repro.dsp.a:Filter"]
        assert "taps" in klass.class_attrs
        assert klass.attr_dtypes.get("acc") == "int"


class TestCallGraph:
    def test_local_call_edge(self):
        project = _build(TestSymbolTable.FILES)
        assert "repro.dsp.a:helper" in \
            project.functions["repro.dsp.a:top"].calls

    def test_self_method_edge(self):
        project = _build(TestSymbolTable.FILES)
        assert "repro.dsp.a:Filter._inner" in \
            project.functions["repro.dsp.a:Filter.step"].calls

    def test_cross_module_from_import_edge(self):
        project = _build({
            "src/repro/dsp/lib.py": (
                "def leaf(x):\n"
                "    return x\n"
            ),
            "src/repro/dsp/use.py": (
                "from repro.dsp.lib import leaf\n"
                "def caller(x):\n"
                "    return leaf(x)\n"
            ),
        })
        assert "repro.dsp.lib:leaf" in \
            project.functions["repro.dsp.use:caller"].calls

    def test_module_alias_attribute_edge(self):
        project = _build({
            "src/repro/dsp/lib.py": "def leaf(x):\n    return x\n",
            "src/repro/dsp/use.py": (
                "import repro.dsp.lib as lib\n"
                "def caller(x):\n"
                "    return lib.leaf(x)\n"
            ),
        })
        assert "repro.dsp.lib:leaf" in \
            project.functions["repro.dsp.use:caller"].calls

    def test_call_inside_comprehension_is_an_edge(self):
        project = _build({
            "src/repro/dsp/lib.py": "def leaf(x):\n    return x\n",
            "src/repro/dsp/use.py": (
                "from repro.dsp.lib import leaf\n"
                "def caller(xs):\n"
                "    return [leaf(x) for x in xs]\n"
            ),
        })
        assert "repro.dsp.lib:leaf" in \
            project.functions["repro.dsp.use:caller"].calls

    def test_unresolvable_call_produces_no_edge(self):
        project = _build({
            "src/repro/dsp/use.py": (
                "def caller(obj):\n"
                "    return obj.method()\n"
            ),
        })
        assert project.functions["repro.dsp.use:caller"].calls == set()

    def test_reachability_is_transitive(self):
        project = _build({
            "src/repro/dsp/a.py": (
                "from repro.dsp.b import mid\n"
                "def entry(x):\n"
                "    return mid(x)\n"
            ),
            "src/repro/dsp/b.py": (
                "from repro.dsp.c import leaf\n"
                "def mid(x):\n"
                "    return leaf(x)\n"
            ),
            "src/repro/dsp/c.py": "def leaf(x):\n    return x\n",
        })
        reachable = project.reachable_from({"repro.dsp.a:entry"})
        assert "repro.dsp.c:leaf" in reachable


class TestFunctionSummaries:
    def test_return_dtype_from_annotation(self):
        project = _build({
            "src/repro/dsp/a.py": (
                "def f(x) -> int:\n"
                "    return x\n"
            ),
        })
        assert project.functions["repro.dsp.a:f"].returns_dtype == "int"

    def test_return_dtype_inferred_from_body(self):
        project = _build({
            "src/repro/dsp/a.py": (
                "def f(x):\n"
                "    return x * 0.5\n"
            ),
        })
        assert project.functions["repro.dsp.a:f"].returns_dtype == "float"

    def test_second_pass_sees_one_call_level(self):
        project = _build({
            "src/repro/dsp/a.py": (
                "def inner(x):\n"
                "    return x * 0.5\n"
                "def outer(x):\n"
                "    return inner(x)\n"
            ),
        })
        assert project.functions[
            "repro.dsp.a:outer"].returns_dtype == "float"

    def test_contextmanager_decorator_detected(self):
        project = _build({
            "src/repro/dsp/a.py": (
                "from contextlib import contextmanager\n"
                "@contextmanager\n"
                "def scope():\n"
                "    yield\n"
            ),
        })
        assert project.functions["repro.dsp.a:scope"].is_contextmanager


class TestSubclassQuery:
    def test_subclasses_found_across_modules(self):
        project = _build({
            "src/repro/kernels/dispatch.py": (
                "class KernelBackend:\n"
                "    name = 'base'\n"
            ),
            "src/repro/kernels/np_b.py": (
                "from repro.kernels.dispatch import KernelBackend\n"
                "class NumpyB(KernelBackend):\n"
                "    name = 'numpy'\n"
            ),
        })
        subs = project.subclasses_of(
            "repro.kernels.dispatch:KernelBackend")
        assert [klass.name for klass in subs] == ["NumpyB"]


class TestParallelParsing:
    def test_parallel_matches_serial(self):
        paths = [SRC / "repro" / "analysis"]
        serial = parse_files(paths, jobs=1)
        parallel = parse_files(paths, jobs=4)
        assert [p.path for p in serial] == [p.path for p in parallel]
        assert all(
            ast.dump(a.tree) == ast.dump(b.tree)
            for a, b in zip(serial, parallel)
            if a.tree is not None and b.tree is not None
        )

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="speedup is only measurable with >1 core")
    def test_parallel_is_faster_on_multicore(self):
        paths = [SRC]
        parse_files(paths, jobs=1)  # warm the page cache
        start = time.perf_counter()
        parse_files(paths, jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parse_files(paths, jobs=os.cpu_count())
        parallel_s = time.perf_counter() - start
        # Pool startup costs real time; demand better than break-even,
        # not a perfect scaling curve.
        assert parallel_s < serial_s * 1.1


class TestFullProjectBudget:
    def test_index_plus_rules_under_ten_seconds(self):
        from repro.analysis import analyze_paths

        start = time.perf_counter()
        findings = analyze_paths([SRC], jobs=os.cpu_count() or 1)
        elapsed = time.perf_counter() - start
        assert findings == []
        assert elapsed < 10.0, f"full src analysis took {elapsed:.1f}s"
