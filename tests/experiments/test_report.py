"""Tests for the one-shot reproduction report generator."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import report as report_mod


@pytest.fixture(scope="module")
def quick_report() -> str:
    # Shrink the quick profile further for test speed.
    small = dict(report_mod.QUICK)
    small.update(n_frames=60, iperf_s=0.1, wimax_frames=6,
                 snrs=[-3.0, 0.0, 6.0], sirs=[40.0, 8.0],
                 defense_trials=1, jam_probabilities=[1.0, 0.5])
    original = report_mod.QUICK
    report_mod.QUICK = small
    try:
        return report_mod.generate_report(quick=True)
    finally:
        report_mod.QUICK = original


class TestReport:
    def test_contains_every_paper_item(self, quick_report):
        for heading in ("Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
                        "Table 1", "Figs. 10/11", "Fig. 12",
                        "Countermeasures", "802.15.4"):
            assert heading in quick_report

    def test_defense_tournament_table(self, quick_report):
        assert "AUC (logistic)" in quick_report
        assert "AUC (xu-rule)" in quick_report
        assert "| always |" in quick_report
        assert "| p0.5 |" in quick_report

    def test_headline_numbers_present(self, quick_report):
        assert "2.640 µs" in quick_report    # T_resp(xcorr)
        assert "-51.0dB" in quick_report     # Table 1 cell
        assert "Mbps" in quick_report

    def test_renders_as_markdown_tables(self, quick_report):
        assert quick_report.count("|---") > 8
        assert quick_report.startswith("# Reproduction report")

    def test_cli_writes_file(self, tmp_path, capsys):
        small = dict(report_mod.QUICK)
        small.update(n_frames=40, iperf_s=0.08, wimax_frames=4,
                     snrs=[0.0], sirs=[40.0],
                     defense_trials=1, jam_probabilities=[1.0])
        original = report_mod.QUICK
        report_mod.QUICK = small
        try:
            out = tmp_path / "report.md"
            report_mod.main([str(out), "--quick"])
            assert out.exists()
            assert "Reproduction report" in out.read_text()
            assert "written" in capsys.readouterr().out
        finally:
            report_mod.QUICK = original
