"""Tests for the experiment harnesses (scaled-down runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presets import reactive_jammer
from repro.experiments.detection import (
    _CurveTrialSpec,
    _energy_trial,
    _energy_trial_looped,
    _xcorr_trial,
    _xcorr_trial_looped,
    energy_detector_curve,
    long_preamble_curve,
    measured_false_alarm_rate,
    short_preamble_curve,
    threshold_for_false_alarm_rate,
)
from repro.experiments.table1 import format_table, measure_insertion_losses
from repro.experiments.timelines import jamming_timelines, measure_response_time
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.experiments.wimax_jamming import run_experiment
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients


class TestFalseAlarmCalibration:
    def test_threshold_monotone_in_fa_rate(self, rng):
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        ci, cq = quantize_coefficients(template)
        strict = threshold_for_false_alarm_rate(ci, cq, 0.083)
        loose = threshold_for_false_alarm_rate(ci, cq, 0.52)
        assert strict > loose

    def test_analytic_model_matches_measurement(self, rng):
        # Validate the exponential-tail model at a measurable FA rate.
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        ci, cq = quantize_coefficients(template)
        target = 2000.0  # triggers/s, measurable in a short run
        threshold = threshold_for_false_alarm_rate(ci, cq, target)
        corr = CrossCorrelator(ci, cq, threshold=threshold)
        measured = measured_false_alarm_rate(corr, duration_s=0.15, rng=rng)
        assert measured == pytest.approx(target, rel=0.6)

    def test_rejects_bad_rates(self, rng):
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        ci, cq = quantize_coefficients(template)
        with pytest.raises(Exception):
            threshold_for_false_alarm_rate(ci, cq, 0.0)


class TestBatchedTrialIdentity:
    """The batched trial engine reproduces the streaming loop exactly."""

    @pytest.mark.parametrize("frame_kind", ["full", "single_long"])
    def test_xcorr_trial_matches_looped(self, frame_kind):
        from repro.core.coeffs import wifi_long_preamble_template

        ci, cq = quantize_coefficients(wifi_long_preamble_template())
        threshold = threshold_for_false_alarm_rate(ci, cq, 0.083)
        spec = _CurveTrialSpec(frame_kind=frame_kind, snr_db=0.0,
                               n_frames=30, frame_seed=77,
                               coeffs_i=ci, coeffs_q=cq,
                               threshold=threshold)
        for seed in (1, 2, 3):
            batched = _xcorr_trial(spec, np.random.default_rng(seed))
            looped = _xcorr_trial_looped(spec,
                                         np.random.default_rng(seed))
            assert batched == looped

    def test_energy_trial_matches_looped(self):
        spec = _CurveTrialSpec(frame_kind="full", snr_db=3.0,
                               n_frames=30, frame_seed=77,
                               energy_threshold_db=10.0)
        for seed in (1, 2, 3):
            batched = _energy_trial(spec, np.random.default_rng(seed))
            looped = _energy_trial_looped(spec,
                                          np.random.default_rng(seed))
            assert batched == looped

    def test_false_alarm_rate_matches_streaming_facade(self, rng):
        """The chained batch calibration equals process()+rising_edges."""
        from repro.hw.trigger import rising_edges

        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        ci, cq = quantize_coefficients(template)
        threshold = threshold_for_false_alarm_rate(ci, cq, 3000.0)
        duration_s = 0.01
        seed = 424242

        batched = measured_false_alarm_rate(
            CrossCorrelator(ci, cq, threshold=threshold), duration_s,
            np.random.default_rng(seed), chunk_samples=1 << 16)

        from repro import units
        from repro.channel.awgn import awgn

        corr = CrossCorrelator(ci, cq, threshold=threshold)
        stream_rng = np.random.default_rng(seed)
        remaining = int(duration_s * units.BASEBAND_RATE)
        triggers = 0
        last = False
        while remaining > 0:
            n = min(1 << 16, remaining)
            trig = corr.process(awgn(n, 1.0, stream_rng))
            triggers += rising_edges(trig, last).size
            last = bool(trig[-1])
            remaining -= n
        assert batched == triggers / duration_s


class TestDetectionCurves:
    def test_long_preamble_monotone_and_knee(self):
        points = long_preamble_curve([-6.0, 0.0, 6.0], n_frames=120,
                                     full_frames=False)
        probs = [p.detection_probability for p in points]
        assert probs[0] < 0.2          # below the noise floor
        assert probs[2] > 0.9          # well above the knee
        assert probs == sorted(probs)  # monotone in SNR

    def test_full_frames_beat_single_preambles(self):
        snrs = [-3.0, 0.0]
        single = long_preamble_curve(snrs, n_frames=150, full_frames=False)
        full = long_preamble_curve(snrs, n_frames=150, full_frames=True)
        # Two long preambles per frame: strictly more chances.
        for s, f in zip(single, full):
            assert f.detection_probability >= s.detection_probability

    def test_lower_fa_rate_lowers_detection(self):
        snrs = [-2.0]
        strict = long_preamble_curve(snrs, n_frames=150, fa_per_second=0.083,
                                     full_frames=False)
        loose = long_preamble_curve(snrs, n_frames=150, fa_per_second=0.52,
                                    full_frames=False)
        assert strict[0].detection_probability <= loose[0].detection_probability

    def test_short_preamble_detects_full_frames(self):
        points = short_preamble_curve([0.0, 6.0], n_frames=100)
        assert points[1].detection_probability > 0.95

    def test_energy_detector_three_regimes(self):
        points = energy_detector_curve([-6.0, 9.5, 15.0], n_frames=100,
                                       threshold_db=10.0)
        by_snr = {p.snr_db: p for p in points}
        # Regime 1: below threshold, nothing.
        assert by_snr[-6.0].detection_probability == 0.0
        # Regime 2: near threshold, marginal/multiple detections.
        assert 0.0 < by_snr[9.5].detection_probability
        # Regime 3: a single clean detection per frame.
        assert by_snr[15.0].detection_probability == 1.0
        assert by_snr[15.0].mean_detections_per_frame == pytest.approx(1.0, abs=0.05)


class TestTable1:
    def test_measured_matches_paper(self):
        measured = measure_insertion_losses()
        assert measured[(1, 2)] == pytest.approx(-51.0, abs=0.01)
        assert measured[(4, 5)] is None

    def test_format_renders_all_ports(self):
        table = format_table(measure_insertion_losses())
        assert "-51.0dB" in table
        assert table.count("\n") == 5


class TestTimelines:
    def test_analytic_budget(self):
        tl = jamming_timelines()
        assert tl.t_resp_xcorr == pytest.approx(2.64e-6)

    def test_measured_end_to_end(self):
        measured = measure_response_time()
        assert measured.detection_latency == pytest.approx(2.56e-6)
        assert measured.rf_response_latency == pytest.approx(80e-9)
        assert measured.total == pytest.approx(2.64e-6)


class TestWifiJammingTestbed:
    def test_power_arithmetic(self):
        bed = WifiJammingTestbed()
        assert bed.client_power_at_ap_dbm() == pytest.approx(14.0 - 51.0)
        # SIR = S - (jam_tx + loss) => jam_tx = S - SIR - loss.
        assert bed.jammer_tx_for_sir(20.0) == pytest.approx(-37.0 - 20.0 + 38.4)

    def test_jammer_off_baseline(self):
        bed = WifiJammingTestbed(duration_s=0.3)
        point = bed.run_point(None, None)
        assert point.personality == "off"
        assert 27.0 < point.report.bandwidth_mbps < 33.0
        assert point.packet_reception_ratio > 0.95

    def test_reactive_jammer_cliff_ordering(self):
        bed = WifiJammingTestbed(duration_s=0.25)
        strong = bed.run_point(reactive_jammer(1e-4), sir_db=5.0)
        weak = bed.run_point(reactive_jammer(1e-4), sir_db=40.0)
        assert strong.bandwidth_kbps < 1000.0
        assert weak.bandwidth_kbps > 25_000.0

    def test_mismatched_point_args_rejected(self):
        bed = WifiJammingTestbed()
        with pytest.raises(Exception):
            bed.run_point(reactive_jammer(1e-4), None)


class TestWimaxExperiment:
    def test_misdetection_and_combined(self):
        results = run_experiment(n_frames=15)
        xcorr = results["xcorr_only"]
        combined = results["combined"]
        # The paper's finding: xcorr alone misses most frames; the
        # combined scheme detects all of them, one burst per frame.
        assert xcorr.misdetection_rate > 0.4
        assert combined.detection_rate == 1.0
        assert combined.jam_bursts == 15

    def test_traces_exposed(self):
        results = run_experiment(n_frames=2)
        r = results["combined"]
        assert r.rx_trace.size == r.tx_trace.size
        assert np.any(np.abs(r.tx_trace) > 0)


class TestRocCurve:
    def test_detection_grows_with_false_alarm_budget(self):
        from repro.core.coeffs import wifi_long_preamble_template
        from repro.experiments.detection import roc_curve

        points = roc_curve(wifi_long_preamble_template(), snr_db=-1.0,
                           fa_rates_per_s=[0.01, 0.1, 1.0, 100.0],
                           n_frames=150)
        pds = [pd for _fa, pd in points]
        # Monotone non-decreasing in the admitted false-alarm rate.
        assert all(a <= b + 0.05 for a, b in zip(pds, pds[1:]))
        assert pds[-1] > pds[0]
