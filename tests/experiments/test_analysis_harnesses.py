"""Tests for the analysis harnesses (energy, calibration, sweeps)."""

from __future__ import annotations

import pytest

from repro.core.presets import continuous_jammer, reactive_jammer
from repro.errors import ConfigurationError
from repro.experiments.energy_analysis import (
    EnergyPoint,
    find_kill_sir,
    energy_comparison,
)
from repro.experiments.link_calibration import CalibrationPoint, run_calibration
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.phy.wifi.params import WifiRate


class TestEnergyAnalysis:
    def test_energy_point_arithmetic(self):
        point = EnergyPoint(personality="x", kill_sir_db=10.0,
                            jammer_tx_dbm=0.0, airtime_s=0.05,
                            duration_s=0.5, energy_joules=50e-6)
        assert point.duty_cycle == pytest.approx(0.1)
        # 50 uJ over 0.5 s = 100 uW = -10 dBm.
        assert point.mean_power_dbm == pytest.approx(-10.0)

    def test_find_kill_sir_continuous(self):
        bed = WifiJammingTestbed(duration_s=0.12)
        sir = find_kill_sir(bed, continuous_jammer(),
                            sir_grid_db=[36.0, 30.0, 24.0])
        assert sir == 30.0  # the CCA-denial cliff

    def test_find_kill_sir_reports_failure(self):
        bed = WifiJammingTestbed(duration_s=0.1)
        with pytest.raises(ConfigurationError):
            find_kill_sir(bed, reactive_jammer(1e-5),
                          sir_grid_db=[45.0])  # far too weak

    def test_comparison_orders_personalities(self):
        points = energy_comparison(duration_s=0.12)
        names = [p.personality for p in points]
        assert names == ["continuous", "reactive-0.1ms", "reactive-0.01ms"]
        kill_sirs = [p.kill_sir_db for p in points]
        assert kill_sirs == sorted(kill_sirs, reverse=True)


class TestLinkCalibration:
    def test_decision_agreement_logic(self):
        agree = CalibrationPoint(WifiRate.MBPS_6, 0.0, 0.0, 0.0,
                                 model_success=0.1, measured_success=0.2,
                                 n_trials=10)
        disagree = CalibrationPoint(WifiRate.MBPS_6, 0.0, 0.0, 0.0,
                                    model_success=0.1, measured_success=0.9,
                                    n_trials=10)
        assert agree.decisions_agree
        assert not disagree.decisions_agree

    def test_single_run_is_conservative(self):
        points = run_calibration(n_trials=8)
        for p in points:
            assert p.model_success <= p.measured_success + 0.3

    def test_extreme_points_agree(self):
        points = run_calibration(n_trials=8)
        clean = [p for p in points if p.model_success > 0.9]
        dead = [p for p in points if p.model_success < 0.1
                and p.sir_db <= 0.0]
        assert clean and dead
        for p in clean + dead:
            assert p.decisions_agree


class TestSweep:
    def test_sweep_covers_grid_plus_baseline(self):
        bed = WifiJammingTestbed(duration_s=0.08)
        points = bed.sweep(sir_values_db=[40.0, 8.0],
                           personalities=[reactive_jammer(1e-4)])
        assert len(points) == 3  # off + 2 SIRs
        assert points[0].personality == "off"
        assert {p.sir_at_ap_db for p in points[1:]} == {40.0, 8.0}

    def test_sweep_default_personalities(self):
        bed = WifiJammingTestbed(duration_s=0.05)
        points = bed.sweep(sir_values_db=[40.0])
        names = {p.personality for p in points}
        assert names == {"off", "continuous", "reactive-0.1ms",
                         "reactive-0.01ms"}
