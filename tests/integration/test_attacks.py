"""Integration tests for the attack applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.channel.awgn import awgn
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import wifi_short_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import JammerPersonality, reactive_jammer
from repro.dsp.measure import normalized_cross_correlation
from repro.dsp.resample import resample
from repro.hw.tx_controller import JamWaveform
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.preamble import long_training_symbol
from repro.phy.wifi.params import WIFI_SAMPLE_RATE


class TestReplayAttack:
    """The REPLAY waveform as a sync-spoofing attack (paper §2.4).

    The jammer captures the victim's own preamble samples and replays
    them repeatedly: every replayed copy raises preamble-correlation
    peaks at third-party receivers, flooding their synchronizers with
    false frame starts.
    """

    def test_replayed_preamble_resyncs_receivers(self, rng):
        noise_floor = 1e-4
        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        frame = build_ppdu(psdu, WifiFrameConfig())
        rx = mix_at_port(
            [Transmission(frame, WIFI_SAMPLE_RATE, 100e-6,
                          power=units.db_to_linear(20.0) * noise_floor)],
            out_rate=units.BASEBAND_RATE, duration=600e-6,
            noise_power=noise_floor, rng=rng,
        )

        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            # Replay the last 512 samples (the captured preamble) for
            # a long uptime: continuous preamble ghosts.
            personality=JammerPersonality(
                name="replayer", uptime_samples=8000,
                waveform=JamWaveform.REPLAY),
        )
        report = jammer.run(rx)
        assert report.jams, "the replayer never triggered"

        # A third-party receiver's preamble correlator sees ghost
        # preambles throughout the replay window.
        victim = rx + report.tx * 3.0
        capture20 = resample(victim, units.BASEBAND_RATE, WIFI_SAMPLE_RATE)
        lts = long_training_symbol()
        corr = normalized_cross_correlation(capture20, lts)
        replay_start = int(report.jams[0].start / units.BASEBAND_RATE
                           * WIFI_SAMPLE_RATE)
        window = corr[replay_start:replay_start + 6000]
        # Multiple distinct strong peaks: false frame starts.
        peaks = np.flatnonzero(window > 0.5)
        assert peaks.size > 2

    def test_replay_echoes_captured_signal(self, rng):
        # The replayed burst correlates strongly against the original
        # preamble region it captured.
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(template=template,
                                      xcorr_threshold=30_000),
            events=JammingEventBuilder().on_correlation(),
            personality=JammerPersonality(
                name="replayer", uptime_samples=128,
                waveform=JamWaveform.REPLAY),
        )
        jammer.driver.set_replay_length(64)
        rx = awgn(2000, 1e-8, rng)
        rx[500:564] += template
        report = jammer.run(rx)
        burst = report.tx[report.jams[0].start:report.jams[0].end]
        rho = np.abs(np.vdot(burst[:64], template)) / (
            np.linalg.norm(burst[:64]) * np.linalg.norm(template))
        assert rho > 0.9


class TestSurgicalPlusInjection:
    def test_full_attack_chain(self):
        from repro.apps.packet_injection import AckInjectionAttack

        attack = AckInjectionAttack()
        results = [attack.run(np.random.default_rng(seed))
                   for seed in (1, 2, 3)]
        assert all(r.attack_succeeded for r in results)

    def test_attack_works_across_rates(self):
        # Protocol awareness: the attacker reads the victim's rate to
        # time the forged ACK; verify the chain at two PHY rates.
        from repro.apps.packet_injection import AckInjectionAttack
        from repro.phy.wifi.params import WifiRate

        for rate in (WifiRate.MBPS_12, WifiRate.MBPS_54):
            attack = AckInjectionAttack(data_rate=rate)
            result = attack.run(np.random.default_rng(3))
            assert result.attack_succeeded, rate
