"""Protocol-aware *targeted* jamming: hit one network, spare another.

The paper's title claim is protocol awareness: "the cross-correlator
performs template-based detection and enables the platform to react to
only packets of a single wireless standard."  This scenario pushes it
one level deeper — two co-channel WiMAX base stations with different
(IDcell, segment) identities broadcast simultaneously; the jammer
loads the *target cell's* preamble template and must jam its frames
while leaving the bystander cell untouched.  An energy detector could
never make that distinction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import wimax_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.phy.wimax.frame import build_downlink_frame
from repro.phy.wimax.params import FRAME_DURATION_S, WIMAX_SAMPLE_RATE, WimaxConfig

NOISE = 1e-4
N_FRAMES = 6
#: The bystander transmits half a frame later so the preambles of the
#: two cells never overlap (co-channel but staggered TDD).
STAGGER_S = FRAME_DURATION_S / 2


def _two_cell_capture(rng):
    """Target cell (1, 0) and bystander cell (5, 2) on one channel.

    Short downlink subframes (10 OFDMA symbols ~ 1 ms) keep the two
    staggered cells' bursts from overlapping in time.
    """
    target_cfg = WimaxConfig(cell_id=1, segment=0, dl_symbols=10)
    bystander_cfg = WimaxConfig(cell_id=5, segment=2, dl_symbols=10)
    transmissions = []
    target_starts, bystander_starts = [], []
    for k in range(N_FRAMES):
        t0 = k * FRAME_DURATION_S
        target_starts.append(t0)
        transmissions.append(Transmission(
            build_downlink_frame(target_cfg, rng), WIMAX_SAMPLE_RATE,
            start_time=t0, power=units.db_to_linear(12.0) * NOISE))
        t1 = t0 + STAGGER_S
        bystander_starts.append(t1)
        transmissions.append(Transmission(
            build_downlink_frame(bystander_cfg, rng), WIMAX_SAMPLE_RATE,
            start_time=t1, power=units.db_to_linear(12.0) * NOISE))
    rx = mix_at_port(transmissions, out_rate=units.BASEBAND_RATE,
                     duration=N_FRAMES * FRAME_DURATION_S + STAGGER_S,
                     noise_power=NOISE, rng=rng)
    return rx, target_starts, bystander_starts


def _preamble_hits(report, starts):
    """How many of the frames starting at ``starts`` got a burst in
    their preamble region (~first 150 us)."""
    hits = 0
    for start in starts:
        lo, hi = start, start + 150e-6
        if any(lo <= j.start / units.BASEBAND_RATE < hi for j in report.jams):
            hits += 1
    return hits


class TestTargetedJamming:
    def test_jams_target_cell_only(self, rng):
        rx, target_starts, bystander_starts = _two_cell_capture(rng)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wimax_preamble_template(cell_id=1, segment=0),
                xcorr_threshold=11_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-4),
        )
        report = jammer.run(rx)
        target_hits = _preamble_hits(report, target_starts)
        bystander_hits = _preamble_hits(report, bystander_starts)
        # Protocol awareness: most target frames hit, bystander spared.
        assert target_hits >= int(0.6 * N_FRAMES)
        assert bystander_hits <= 1

    def test_energy_detection_cannot_discriminate(self, rng):
        rx, target_starts, bystander_starts = _two_cell_capture(rng)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(energy_high_db=10.0),
            events=JammingEventBuilder().on_energy_rise(),
            personality=reactive_jammer(1e-4),
        )
        report = jammer.run(rx)
        # The energy detector fires on both networks' bursts.
        assert _preamble_hits(report, target_starts) >= int(0.8 * N_FRAMES)
        assert _preamble_hits(report, bystander_starts) >= int(0.8 * N_FRAMES)

    def test_cell_searcher_confirms_the_victim(self, rng):
        # The attacker can verify which cell it is about to target.
        from repro.dsp.resample import resample
        from repro.phy.wimax.receiver import WimaxCellSearcher

        rx, _t, _b = _two_cell_capture(rng)
        at_native = resample(rx[:3_000_000], units.BASEBAND_RATE,
                             WIMAX_SAMPLE_RATE)
        searcher = WimaxCellSearcher(cell_ids=[1, 5], segments=[0, 2])
        result = searcher.search(at_native[:200_000])
        assert (result.cell_id, result.segment) in {(1, 0), (5, 2)}


class TestSurgicalFchAttack:
    def test_delay_register_places_burst_on_the_fch(self, rng):
        """The paper's 'surgical jamming' on WiMAX: detect the preamble,
        wait out its remaining ~98 us via the jam-delay register, and
        drop a burst exactly on the FCH symbol.  The frame's control
        header dies; the preamble (and detection) survives untouched.
        """
        from repro.dsp.ofdm import ofdm_demodulate
        from repro.dsp.resample import resample
        from repro.errors import DecodeError
        from repro.phy.wimax.fch import FCH_SYMBOLS, decode_fch
        from repro.phy.wimax.frame import build_downlink_frame, data_carriers
        from repro.phy.wimax.params import (
            WIMAX_OFDM,
            WIMAX_SAMPLE_RATE,
            WimaxConfig,
        )
        from repro.phy.wimax.receiver import WimaxCellSearcher

        noise = 1e-4
        frame = build_downlink_frame(WimaxConfig(), rng)
        rx = mix_at_port(
            [Transmission(frame, WIMAX_SAMPLE_RATE, 100e-6,
                          power=units.db_to_linear(12.0) * noise)],
            out_rate=units.BASEBAND_RATE, duration=2e-3,
            noise_power=noise, rng=rng)

        # Trigger fires ~2.56 us into the preamble; the FCH symbol
        # spans [101, 202) us of the frame.  Delay to land inside it.
        symbol_s = WIMAX_OFDM.symbol_length / WIMAX_SAMPLE_RATE
        delay_s = symbol_s - 2.56e-6 + 10e-6
        jammer = ReactiveJammer()
        jammer.configure(
            DetectionConfig(template=wimax_preamble_template(),
                            xcorr_threshold=11_000),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(uptime_seconds=60e-6, delay_seconds=delay_s),
        )
        report = jammer.run(rx)
        assert report.jams, "the surgical jammer never fired"
        victim = rx + report.tx * 2.0

        native = resample(victim, units.BASEBAND_RATE, WIMAX_SAMPLE_RATE)
        searcher = WimaxCellSearcher(cell_ids=[1], segments=[0])
        found = searcher.search(native)
        assert (found.cell_id, found.segment) == (1, 0)  # preamble fine

        fch_start = found.frame_start + WIMAX_OFDM.symbol_length
        symbol = native[fch_start:fch_start + WIMAX_OFDM.symbol_length]
        points = ofdm_demodulate(WIMAX_OFDM, symbol, data_carriers())
        points = points / np.sqrt(np.mean(np.abs(points) ** 2))
        with pytest.raises(DecodeError):
            decode_fch(points[:FCH_SYMBOLS])
