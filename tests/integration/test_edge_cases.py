"""Edge-case batch: gaps identified across module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import JammingReport, ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.mac.frames import FrameKind, MacFrame
from repro.mac.medium import Medium
from repro.phy.wifi.params import WifiRate


def flat_loss(src: str, dst: str) -> float | None:
    return -40.0 if src != dst else None


class TestMediumEdges:
    def test_multiple_overlapping_jams_aggregate(self):
        medium = Medium(flat_loss)
        frame = MacFrame(FrameKind.DATA, "tx", "rx", 1534, WifiRate.MBPS_6)
        emission = medium.emit_frame("tx", frame, 0.0, tx_power_dbm=10.0)
        # Two weak bursts over the data region; individually harmless,
        # their combined power halves the SINR.
        for offset in (100e-6, 100e-6):
            medium.emit_jam("jam", offset, 300e-6, tx_power_dbm=-15.0)
        combined = medium.frame_success_probability(emission, "rx")
        medium2 = Medium(flat_loss)
        e2 = medium2.emit_frame("tx", frame, 0.0, tx_power_dbm=10.0)
        medium2.emit_jam("jam", 100e-6, 300e-6, tx_power_dbm=-15.0)
        single = medium2.frame_success_probability(e2, "rx")
        assert combined <= single

    def test_capture_boundary_at_10db(self):
        medium = Medium(flat_loss)
        frame = MacFrame(FrameKind.DATA, "tx", "rx", 1534, WifiRate.MBPS_6)
        emission = medium.emit_frame("tx", frame, 0.0, tx_power_dbm=10.0)
        # An overlapping frame 9 dB down: no capture, collision.
        medium.emit_frame("other", frame, 50e-6, tx_power_dbm=1.0)
        assert medium.frame_success_probability(emission, "rx") == 0.0

    def test_jam_ending_before_frame_harmless(self):
        medium = Medium(flat_loss)
        frame = MacFrame(FrameKind.DATA, "tx", "rx", 1534, WifiRate.MBPS_6)
        medium.emit_jam("jam", 0.0, 50e-6, tx_power_dbm=30.0)
        emission = medium.emit_frame("tx", frame, 100e-6, tx_power_dbm=10.0)
        assert medium.frame_success_probability(emission, "rx") > 0.99

    def test_unknown_node_is_isolated(self):
        medium = Medium(lambda s, d: None)
        frame = MacFrame(FrameKind.DATA, "tx", "rx", 100, WifiRate.MBPS_6)
        emission = medium.emit_frame("tx", frame, 0.0, tx_power_dbm=10.0)
        assert medium.frame_success_probability(emission, "rx") == 0.0


class TestReportEdges:
    def test_empty_report_properties(self):
        report = JammingReport(tx=np.zeros(10, dtype=complex))
        assert report.detection_times == []
        assert report.jam_spans_seconds == []
        assert report.total_jam_airtime == 0.0

    def test_jammer_handles_empty_signal(self, rng):
        jammer = ReactiveJammer()
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        jammer.configure(
            DetectionConfig(template=template, xcorr_threshold=30_000),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(1e-5),
        )
        report = jammer.run(np.zeros(0, dtype=complex))
        assert report.tx.size == 0


class TestBurstsSpanningChunks:
    def test_jam_interval_straddles_many_chunks(self, rng):
        # A long burst across many small chunks stays contiguous.
        from repro.channel.awgn import awgn

        jammer = ReactiveJammer()
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        jammer.configure(
            DetectionConfig(template=template, xcorr_threshold=30_000),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(uptime_seconds=4e-5),  # 1000 samples
        )
        rx = awgn(3000, 1e-8, rng)
        rx[200:264] += template
        report = jammer.run(rx, chunk_size=97)
        jam = report.jams[0]
        active = np.flatnonzero(np.abs(report.tx) > 0)
        assert active[0] == jam.start
        assert active[-1] == jam.end - 1
        assert active.size == jam.end - jam.start  # no gaps

    def test_burst_truncated_at_capture_end(self, rng):
        from repro.channel.awgn import awgn

        jammer = ReactiveJammer()
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        jammer.configure(
            DetectionConfig(template=template, xcorr_threshold=30_000),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(uptime_seconds=1e-3),  # longer than capture
        )
        rx = awgn(1000, 1e-8, rng)
        rx[500:564] += template
        report = jammer.run(rx)
        # The interval extends beyond the capture; tx covers what fits.
        assert report.jams[0].end > rx.size
        assert np.all(np.abs(report.tx[566:]) > 0)


class TestUnitsEdges:
    def test_zero_duration_jam_span(self):
        assert units.seconds_to_samples(0.0) == 0

    def test_sample_clock_identities(self):
        assert units.samples_to_clocks(1) * units.CLOCK_PERIOD \
            == pytest.approx(units.SAMPLE_PERIOD)
