"""Integration tests: full pipelines across packages."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import (
    infer_template_from_capture,
    wifi_short_preamble_template,
    wimax_preamble_template,
)
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import continuous_jammer, reactive_jammer
from repro.hw.trigger import TriggerSource
from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.receiver import WifiReceiver
from repro.phy.wimax.frame import downlink_stream
from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig

NOISE = 1e-4


def wifi_frame_on_air(rng, psdu_bytes=100, rate=WifiRate.MBPS_54,
                      snr_db=20.0, start=100e-6, duration=400e-6):
    """A WiFi frame mixed onto the jammer's 25 MSPS timeline."""
    psdu = rng.integers(0, 256, psdu_bytes, dtype=np.uint8).tobytes()
    frame = build_ppdu(psdu, WifiFrameConfig(rate=rate))
    rx = mix_at_port(
        [Transmission(frame, WIFI_SAMPLE_RATE, start_time=start,
                      power=units.db_to_linear(snr_db) * NOISE)],
        out_rate=units.BASEBAND_RATE, duration=duration,
        noise_power=NOISE, rng=rng,
    )
    return rx, frame, psdu


class TestWifiJammingPipeline:
    def test_short_preamble_triggers_before_data(self, rng):
        rx, _frame, _psdu = wifi_frame_on_air(rng)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-4),
        )
        report = jammer.run(rx)
        assert report.jams, "no jam burst fired"
        start_s = report.jams[0].start / units.BASEBAND_RATE
        # Burst must start inside the 16 us preamble: the paper's claim
        # that an 802.11g packet is jammed before the first data symbol.
        assert 100e-6 < start_s < 116e-6

    def test_jam_burst_corrupts_the_frame(self, rng):
        rx, frame, psdu = wifi_frame_on_air(rng, snr_db=25.0)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-4),
        )
        report = jammer.run(rx)
        # Couple the jammer's TX back onto the victim's timeline at
        # comparable power and try to decode at 20 MSPS.
        victim_rx = rx + report.tx * 5.0
        from repro.dsp.resample import resample

        capture = resample(victim_rx, units.BASEBAND_RATE, WIFI_SAMPLE_RATE)
        from repro.errors import DecodeError

        try:
            result = WifiReceiver().receive(capture)
            decoded = result.psdu
        except DecodeError:
            decoded = None
        assert decoded != psdu

    def test_frame_decodes_when_jammer_disabled(self, rng):
        rx, _frame, psdu = wifi_frame_on_air(rng, snr_db=30.0,
                                             rate=WifiRate.MBPS_12)
        from repro.dsp.resample import resample

        capture = resample(rx, units.BASEBAND_RATE, WIFI_SAMPLE_RATE)
        result = WifiReceiver().receive(capture)
        assert result.psdu == psdu

    def test_energy_only_jamming_is_protocol_agnostic(self, rng):
        rx, _f, _p = wifi_frame_on_air(rng, snr_db=20.0)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(energy_high_db=10.0),
            events=JammingEventBuilder().on_energy_rise(),
            personality=reactive_jammer(1e-5),
        )
        report = jammer.run(rx)
        in_frame = [j for j in report.jams
                    if 100e-6 <= j.trigger_time / 25e6 <= 120e-6]
        assert in_frame


class TestTemplateInferencePipeline:
    def test_infer_then_jam_unknown_signal(self, rng):
        # Capture an unknown repeating-preamble signal, infer the
        # template, program it, and verify detection of later frames.
        code = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        capture = (rng.standard_normal(2000)
                   + 1j * rng.standard_normal(2000)) * np.sqrt(NOISE / 2)
        for start in (300, 364):
            capture[start:start + 64] += code * 0.05
        template = infer_template_from_capture(capture)

        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(template=template,
                                      xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-5),
        )
        live = (rng.standard_normal(3000)
                + 1j * rng.standard_normal(3000)) * np.sqrt(NOISE / 2)
        live[1000:1064] += code * 0.05
        report = jammer.run(live)
        assert report.jams


class TestWimaxPipeline:
    def test_combined_detection_jams_every_frame(self, rng):
        config = WimaxConfig()
        broadcast = downlink_stream(config, 4, rng)
        rx = mix_at_port(
            [Transmission(broadcast, WIMAX_SAMPLE_RATE, 0.0,
                          power=units.db_to_linear(12.0) * NOISE)],
            out_rate=units.BASEBAND_RATE, duration=4 * 0.005,
            noise_power=NOISE, rng=rng,
        )
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wimax_preamble_template(),
                xcorr_threshold=12_000,
                energy_high_db=10.0),
            events=(JammingEventBuilder()
                    .on_correlation().on_energy_rise().any_of()),
            personality=reactive_jammer(1e-4),
        )
        report = jammer.run(rx)
        frame_samples = 0.005 * units.BASEBAND_RATE
        hit_frames = {int(j.trigger_time // frame_samples)
                      for j in report.jams}
        assert hit_frames == {0, 1, 2, 3}


class TestReconfigurability:
    def test_three_personalities_one_device(self, rng):
        # Paper §4.3: continuous, 0.1 ms, 0.01 ms on one instantiation.
        rx, _f, _p = wifi_frame_on_air(rng)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-4),
        )
        writes_before = jammer.driver.register_writes()
        r1 = jammer.run(rx)
        jammer.reset()
        jammer.apply_personality(reactive_jammer(1e-5))
        r2 = jammer.run(rx)
        jammer.reset()
        jammer.apply_personality(continuous_jammer())
        r3 = jammer.run(rx)
        writes_after = jammer.driver.register_writes()

        assert r1.total_jam_airtime == pytest.approx(1e-4)
        assert r2.total_jam_airtime == pytest.approx(1e-5)
        assert np.all(np.abs(r3.tx) > 0)
        # Personality swaps cost only a handful of register writes —
        # no "FPGA reprogramming".
        assert writes_after - writes_before < 16


class TestDetectionSourceBookkeeping:
    def test_sources_attributed_correctly(self, rng):
        rx, _f, _p = wifi_frame_on_air(rng, snr_db=20.0)
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(
                template=wifi_short_preamble_template(),
                xcorr_threshold=25_000,
                energy_high_db=10.0),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-5),
        )
        report = jammer.run(rx)
        assert report.detections_by_source(TriggerSource.XCORR)
        assert report.detections_by_source(TriggerSource.ENERGY_HIGH)
        counts = jammer.driver.detection_counts()
        assert counts[TriggerSource.XCORR] == len(
            report.detections_by_source(TriggerSource.XCORR))
