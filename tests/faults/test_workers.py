"""Tests for the process-level worker-fault plans and injector."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.faults.workers import (
    NO_WORKER_FAULTS,
    WorkerFaultInjector,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerFaultSpec,
)


class TestSpecValidation:
    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkerFaultSpec(WorkerFaultKind.KILL, rate=1.5)
        with pytest.raises(ConfigurationError):
            WorkerFaultSpec(WorkerFaultKind.KILL, rate=-0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerFaultSpec(WorkerFaultKind.SLOW, duration_s=-1.0)

    def test_hang_needs_a_duration(self):
        with pytest.raises(ConfigurationError):
            WorkerFaultSpec(WorkerFaultKind.HANG)
        WorkerFaultSpec(WorkerFaultKind.HANG, duration_s=5.0)  # fine

    def test_selects_filters(self):
        spec = WorkerFaultSpec(WorkerFaultKind.KILL,
                               shard_indices=frozenset({2}),
                               attempts=frozenset({0, 1}))
        assert spec.selects(2, 0)
        assert spec.selects(2, 1)
        assert not spec.selects(2, 2)
        assert not spec.selects(3, 0)
        poison = WorkerFaultSpec(WorkerFaultKind.KILL, attempts=None)
        assert poison.selects(0, 99)


class TestPlanDeterminism:
    def test_replay_is_byte_identical(self):
        plan = (WorkerFaultPlan(seed=42)
                .kill_workers(0.3)
                .hang_workers(0.1, duration_s=30.0)
                .slow_workers(0.2, duration_s=0.5))
        replayed = WorkerFaultPlan(seed=plan.seed, specs=plan.specs)
        assert plan.schedule_digest() == replayed.schedule_digest()

    def test_decision_is_order_independent(self):
        plan = WorkerFaultPlan(seed=7).kill_workers(0.5)
        forward = [plan.decision(i, 0) for i in range(16)]
        backward = [plan.decision(i, 0) for i in reversed(range(16))]
        assert forward == list(reversed(backward))

    def test_seed_changes_the_schedule(self):
        a = WorkerFaultPlan(seed=1).kill_workers(0.5)
        b = WorkerFaultPlan(seed=2).kill_workers(0.5)
        assert a.schedule_digest() != b.schedule_digest()

    def test_builders_do_not_mutate(self):
        base = WorkerFaultPlan(seed=3)
        extended = base.kill_shards([0])
        assert base.specs == ()
        assert len(extended.specs) == 1

    def test_targeted_kill_hits_exactly_the_named_shards(self):
        plan = WorkerFaultPlan(seed=5).kill_shards([1, 3])
        hits = {(f.shard_index, f.attempt) for f in plan.schedule(6, 2)}
        assert hits == {(1, 0), (3, 0)}

    def test_rate_zero_and_rate_one(self):
        never = WorkerFaultPlan(seed=9).kill_workers(0.0)
        always = WorkerFaultPlan(seed=9).kill_workers(1.0, attempts=None)
        assert never.schedule(32, 3) == []
        assert len(always.schedule(32, 3)) == 32 * 3

    def test_first_matching_spec_wins(self):
        plan = (WorkerFaultPlan(seed=11)
                .kill_shards([0])
                .slow_workers(1.0, duration_s=0.1, attempts=None))
        fault = plan.decision(0, 0)
        assert fault.kind is WorkerFaultKind.KILL
        assert fault.spec_index == 0

    def test_no_faults_plan_is_empty(self):
        assert NO_WORKER_FAULTS.schedule(64, 3) == []


class TestInjector:
    def test_kill_raises_in_serial_mode(self):
        injector = WorkerFaultInjector(WorkerFaultPlan(seed=0)
                                       .kill_shards([2]))
        with pytest.raises(WorkerCrashError):
            injector.apply(2, 0, in_worker=False)

    def test_clean_attempts_pass_through(self):
        injector = WorkerFaultInjector(WorkerFaultPlan(seed=0)
                                       .kill_shards([2]))
        injector.apply(2, 1, in_worker=False)  # attempt filter: first only
        injector.apply(0, 0, in_worker=False)  # shard filter

    def test_slow_stalls_for_the_configured_duration(self):
        injector = WorkerFaultInjector(
            WorkerFaultPlan(seed=0).slow_workers(1.0, duration_s=0.05))
        start = time.perf_counter()
        injector.apply(0, 0, in_worker=False)
        assert time.perf_counter() - start >= 0.05

    def test_injector_pickles_small(self):
        import pickle

        injector = WorkerFaultInjector(WorkerFaultPlan(seed=1)
                                       .kill_workers(0.5))
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan.schedule_digest() \
            == injector.plan.schedule_digest()
