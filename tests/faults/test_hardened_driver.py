"""The hardened UhdDriver: verified writes, retry budget, scrub."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RegisterError, RegisterWriteError
from repro.faults import FaultPlan, FaultyRegisterBus, NO_FAULTS
from repro.hw import register_map as regmap
from repro.hw.uhd import DEFAULT_MAX_RETRIES, UhdDriver
from repro.hw.usrp import UsrpN210


def _driver(plan, **kwargs):
    bus = FaultyRegisterBus(plan)
    device = UsrpN210(bus=bus)
    return UhdDriver(device, **kwargs), bus


def test_verified_write_recovers_from_drops():
    driver, bus = _driver(FaultPlan(seed=1).drop_writes(0.5))
    for _ in range(20):
        driver.set_xcorr_threshold(123_456)
    assert bus.read(regmap.REG_XCORR_THRESHOLD) == 123_456
    h = driver.health
    assert h.writes == 20
    assert h.retries > 0
    assert h.recovered_writes > 0
    assert h.write_failures == 0
    assert h.backoff_ops >= h.retries


def test_verified_write_recovers_from_bitflips():
    driver, bus = _driver(FaultPlan(seed=2).bitflip_writes(0.5))
    for _ in range(20):
        driver.set_jam_delay(777)
    assert bus.read(regmap.REG_JAM_DELAY) == 777
    assert driver.health.recovered_writes > 0
    assert driver.health.write_failures == 0


def test_exhausted_retry_budget_raises():
    driver, _ = _driver(FaultPlan(seed=3).drop_writes(1.0), max_retries=3)
    with pytest.raises(RegisterWriteError):
        driver.set_jam_delay(1)
    assert driver.health.write_failures == 1
    assert driver.health.retries == 3


def test_unverified_driver_is_fire_and_forget():
    driver, bus = _driver(FaultPlan(seed=4).drop_writes(1.0),
                          verify_writes=False)
    driver.set_jam_delay(42)
    assert bus.read(regmap.REG_JAM_DELAY) == 0
    assert driver.health.writes == 0
    assert driver.health.retries == 0
    # The shadow still records intent, so a later scrub can repair.
    assert driver.shadow_registers()[regmap.REG_JAM_DELAY] == 42


def test_host_side_validation_bypasses_retry_loop():
    driver, _ = _driver(NO_FAULTS)
    with pytest.raises(RegisterError):
        driver._write(regmap.REG_JAM_DELAY, 1 << 32)
    assert driver.health.writes == 0


def test_scrub_repairs_upsets():
    driver, bus = _driver(NO_FAULTS)
    driver.set_xcorr_threshold(1000)
    driver.set_jam_delay(50)
    driver.set_jam_uptime(2500)
    bus.upset(regmap.REG_XCORR_THRESHOLD, 0xBAD)
    bus.upset(regmap.REG_JAM_UPTIME, 0)
    repaired = driver.scrub()
    assert repaired == [regmap.REG_XCORR_THRESHOLD, regmap.REG_JAM_UPTIME]
    assert bus.read(regmap.REG_XCORR_THRESHOLD) == 1000
    assert bus.read(regmap.REG_JAM_UPTIME) == 2500
    assert driver.health.scrub_passes == 1
    assert driver.health.scrub_repairs == 2


def test_scrub_is_idempotent_when_clean():
    driver, _ = _driver(NO_FAULTS)
    driver.set_jam_delay(10)
    assert driver.scrub() == []
    assert driver.health.scrub_repairs == 0


def test_shadow_tracks_latest_intent():
    driver, _ = _driver(NO_FAULTS)
    driver.set_jam_delay(1)
    driver.set_jam_delay(2)
    shadow = driver.shadow_registers()
    assert shadow[regmap.REG_JAM_DELAY] == 2
    # The copy is detached from driver state.
    shadow[regmap.REG_JAM_DELAY] = 99
    assert driver.shadow_registers()[regmap.REG_JAM_DELAY] == 2


def test_negative_retry_budget_rejected():
    with pytest.raises(ConfigurationError):
        _driver(NO_FAULTS, max_retries=-1)


def test_default_retry_budget_survives_heavy_drops():
    """At 50% drops, 9 attempts make a failure a ~0.2% event per write."""
    driver, _ = _driver(FaultPlan(seed=6).drop_writes(0.5))
    assert DEFAULT_MAX_RETRIES == 8
    for i in range(50):
        driver.set_jam_delay(i + 1)
    assert driver.health.write_failures == 0
