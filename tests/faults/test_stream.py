"""StreamFaultInjector: chunk-invariant RX data-path faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.faults import FaultPlan, NO_FAULTS, StreamFaultInjector
from repro.faults.plan import StreamFaultKind


def _ramp(n: int, start: int = 0) -> np.ndarray:
    return (np.arange(start, start + n) + 1j).astype(np.complex128)


def test_no_faults_passes_through():
    inj = StreamFaultInjector(NO_FAULTS)
    chunk = _ramp(256)
    out = inj.process(chunk)
    np.testing.assert_array_equal(out, chunk)
    assert inj.clock == 256


def test_overrun_zeros_the_run():
    plan = FaultPlan(seed=1).overruns(5000, duration_samples=32)
    inj = StreamFaultInjector(plan)
    out = inj.process(_ramp(4096))
    zero_runs = np.count_nonzero(out == 0)
    assert zero_runs >= 32
    assert inj.fault_log
    assert all(f.kind is StreamFaultKind.OVERRUN for f in inj.fault_log)


def test_dc_spike_adds_offset():
    plan = FaultPlan(seed=2).dc_spikes(5000, duration_samples=16, magnitude=0.5)
    inj = StreamFaultInjector(plan)
    chunk = np.zeros(4096, dtype=np.complex128)
    out = inj.process(chunk)
    spiked = out[out != 0]
    assert spiked.size >= 16
    np.testing.assert_allclose(spiked, 0.5)


def test_gain_step_scales_the_run():
    plan = FaultPlan(seed=3).gain_steps(5000, duration_samples=16, gain=0.25)
    inj = StreamFaultInjector(plan)
    chunk = np.ones(4096, dtype=np.complex128)
    out = inj.process(chunk)
    stepped = out[out != 1.0]
    assert stepped.size >= 16
    np.testing.assert_allclose(stepped, 0.25)


def test_stuck_run_repeats_first_sample_across_chunks():
    plan = FaultPlan(seed=4).stuck_runs(5000, duration_samples=64)
    inj = StreamFaultInjector(plan)
    # Feed one long ramp in small chunks; every stuck run must hold the
    # value of its first sample even when the run spans a chunk seam.
    signal = _ramp(8192)
    out = np.concatenate([inj.process(signal[i:i + 128])
                          for i in range(0, 8192, 128)])
    for event in inj.fault_log:
        lo, hi = event.start, min(event.end, 8192)
        np.testing.assert_array_equal(out[lo:hi], signal[lo])


def test_chunk_size_invariance():
    plan = (FaultPlan(seed=5).overruns(800, duration_samples=48)
            .dc_spikes(800, duration_samples=24, magnitude=0.3)
            .gain_steps(800, duration_samples=24, gain=0.5)
            .stuck_runs(800, duration_samples=48))
    signal = _ramp(20_000)
    whole = StreamFaultInjector(plan).process(signal)
    inj = StreamFaultInjector(plan)
    chunked = np.concatenate([inj.process(signal[i:i + 333])
                              for i in range(0, 20_000, 333)])
    np.testing.assert_array_equal(whole, chunked)


def test_skip_keeps_schedule_aligned():
    plan = FaultPlan(seed=5).overruns(800, duration_samples=48)
    signal = _ramp(20_000)
    reference = StreamFaultInjector(plan).process(signal)
    inj = StreamFaultInjector(plan)
    inj.skip(10_000)
    assert inj.clock == 10_000
    out = inj.process(signal[10_000:])
    np.testing.assert_array_equal(out, reference[10_000:])


def test_raise_on_overrun():
    plan = FaultPlan(seed=6).overruns(5000, duration_samples=32)
    inj = StreamFaultInjector(plan, raise_on_overrun=True)
    with pytest.raises(StreamError, match="overrun"):
        for i in range(0, 65_536, 1024):
            inj.process(_ramp(1024, start=i))


def test_rejects_bad_input():
    inj = StreamFaultInjector(NO_FAULTS)
    with pytest.raises(StreamError):
        inj.process(np.zeros((2, 2), dtype=np.complex128))
    with pytest.raises(StreamError):
        inj.skip(-1)
