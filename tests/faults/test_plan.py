"""The fault-plan DSL: validation, immutability, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    NO_FAULTS,
    ControlFaultKind,
    ControlFaultSpec,
    FaultPlan,
    StreamFaultKind,
    StreamFaultSpec,
    WORD_BITS,
)


class TestSpecValidation:
    def test_control_rate_must_be_probability(self):
        with pytest.raises(ConfigurationError):
            ControlFaultSpec(ControlFaultKind.DROP, rate=1.5)
        with pytest.raises(ConfigurationError):
            ControlFaultSpec(ControlFaultKind.DROP, rate=-0.1)

    def test_delay_needs_positive_skew(self):
        with pytest.raises(ConfigurationError):
            ControlFaultSpec(ControlFaultKind.DELAY, rate=0.5, max_delay_ops=0)

    def test_stream_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamFaultSpec(StreamFaultKind.OVERRUN, rate_per_million=0.0)

    def test_stream_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamFaultSpec(StreamFaultKind.OVERRUN, rate_per_million=10,
                            duration_samples=0)


class TestBuilder:
    def test_builders_return_new_plans(self):
        base = FaultPlan(seed=1)
        extended = base.drop_writes(0.1).overruns(20)
        assert base.control == ()
        assert base.stream == ()
        assert len(extended.control) == 1
        assert len(extended.stream) == 1
        assert extended.seed == 1

    def test_address_filters_are_frozen(self):
        plan = FaultPlan().bitflip_writes(0.5, addresses=[20, 22])
        assert plan.control[0].addresses == frozenset({20, 22})

    def test_no_faults_is_empty(self):
        assert NO_FAULTS.control == ()
        assert NO_FAULTS.stream == ()
        assert NO_FAULTS.control_schedule(16) == [None] * 16
        assert NO_FAULTS.stream_schedule(1_000_000) == []


class TestDeterminism:
    def test_same_plan_same_digest(self):
        def build():
            return (FaultPlan(seed=77)
                    .drop_writes(0.2)
                    .bitflip_writes(0.1, addresses=[20])
                    .overruns(50)
                    .dc_spikes(25, magnitude=0.3))
        assert build().schedule_digest() == build().schedule_digest()

    def test_different_seed_different_digest(self):
        a = FaultPlan(seed=1).drop_writes(0.3).overruns(100)
        b = FaultPlan(seed=2).drop_writes(0.3).overruns(100)
        assert a.schedule_digest() != b.schedule_digest()

    def test_decision_stream_restarts_identically(self):
        plan = FaultPlan(seed=5).drop_writes(0.5).duplicate_writes(0.2)
        first = plan.control_schedule(64)
        second = plan.control_schedule(64)
        assert first == second

    def test_rate_extremes(self):
        all_faults = FaultPlan(seed=3).drop_writes(1.0)
        assert all(d is not None for d in all_faults.control_schedule(32))
        no_faults = FaultPlan(seed=3).drop_writes(0.0)
        assert all(d is None for d in no_faults.control_schedule(32))


class TestSchedules:
    def test_bitflip_draws_valid_bits(self):
        plan = FaultPlan(seed=9).bitflip_writes(1.0)
        for decision in plan.control_schedule(128):
            assert 0 <= decision.bit < WORD_BITS

    def test_delay_draws_bounded_skew(self):
        plan = FaultPlan(seed=9).delay_writes(1.0, max_delay_ops=3)
        for decision in plan.control_schedule(128):
            assert 1 <= decision.delay_ops <= 3

    def test_stream_events_ordered_and_bounded(self):
        plan = FaultPlan(seed=4).overruns(100).stuck_runs(50)
        events = plan.stream_schedule(500_000)
        assert events, "expected events in 0.5M samples at 150/M total"
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        assert all(e.start < 500_000 for e in events)
        assert all(e.end == e.start + e.duration for e in events)

    def test_per_spec_substreams_are_independent(self):
        lone = FaultPlan(seed=8).overruns(100)
        paired = FaultPlan(seed=8).overruns(100).dc_spikes(100)
        lone_overruns = [e for e in lone.stream_schedule(200_000)]
        paired_overruns = [e for e in paired.stream_schedule(200_000)
                           if e.kind is StreamFaultKind.OVERRUN]
        assert lone_overruns == paired_overruns
