"""The in-fabric watchdog: duty guard, re-arm timeout, safe state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import register_map as regmap
from repro.hw.usrp import UsrpN210
from repro.hw.watchdog import (
    TRIP_DUTY_CYCLE,
    TRIP_ILLEGAL_REGISTER,
    TRIP_REARM_TIMEOUT,
    Watchdog,
    WatchdogConfig,
)


class TestConfigValidation:
    def test_duty_cycle_bounds(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(max_duty_cycle=0.0)
        with pytest.raises(ConfigurationError):
            WatchdogConfig(max_duty_cycle=1.5)

    def test_window_positive(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(duty_window_samples=0)

    def test_timeout_non_negative(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(rearm_timeout_samples=-1)


class TestDutyGuard:
    def _wd(self, max_duty=0.5, window=100):
        return Watchdog(WatchdogConfig(max_duty_cycle=max_duty,
                                       duty_window_samples=window))

    def test_admit_within_budget(self):
        wd = self._wd()
        assert wd.admit_interval(0, 50)
        assert wd.duty_cycle(100) == 0.5
        assert wd.trips == []

    def test_veto_over_budget(self):
        wd = self._wd()
        assert wd.admit_interval(0, 50)
        assert not wd.admit_interval(60, 80)
        trips = wd.trips_by_reason(TRIP_DUTY_CYCLE)
        assert len(trips) == 1
        assert trips[0].time == 60
        # The vetoed burst left no trace in the budget.
        assert wd.duty_cycle(100) == 0.5

    def test_sliding_window_frees_budget(self):
        wd = self._wd()
        assert wd.admit_interval(0, 50)
        assert not wd.admit_interval(60, 110)
        # A full window later the old span has aged out.
        assert wd.admit_interval(200, 250)

    def test_guard_disabled_at_full_duty(self):
        wd = self._wd(max_duty=1.0)
        for k in range(10):
            assert wd.admit_interval(k * 10, k * 10 + 10)
        assert wd.trips == []

    def test_continuous_throttled_to_budget(self):
        wd = self._wd()
        allowed = wd.continuous_allowance(0, 80)
        assert allowed == 50
        assert wd.trips_by_reason(TRIP_DUTY_CYCLE)
        # The budget is spent for the rest of the window...
        assert wd.continuous_allowance(50, 40) == 0
        # ...and refills once the window slides past the spans.
        assert wd.continuous_allowance(200, 40) == 40

    def test_reset_clears_state(self):
        wd = self._wd()
        wd.admit_interval(0, 50)
        wd.admit_interval(60, 80)
        wd.reset()
        assert wd.trips == []
        assert wd.duty_cycle(100) == 0.0


class TestSafeState:
    def test_flag_and_clear(self):
        wd = Watchdog()
        assert not wd.safe_state
        wd.flag_illegal(21, time=5, detail="bad waveform")
        assert wd.safe_state
        assert wd.illegal_registers == {21: "bad waveform"}
        wd.clear_illegal(21)
        assert not wd.safe_state

    def test_trips_once_per_flagged_register(self):
        wd = Watchdog()
        wd.flag_illegal(21, time=5, detail="bad")
        wd.flag_illegal(21, time=9, detail="still bad")
        assert len(wd.trips_by_reason(TRIP_ILLEGAL_REGISTER)) == 1
        wd.clear_illegal(21)
        wd.flag_illegal(21, time=20, detail="bad again")
        assert len(wd.trips_by_reason(TRIP_ILLEGAL_REGISTER)) == 2


class _FakeFsm:
    def __init__(self, armed_since):
        self.armed_since = armed_since
        self.resets = 0

    def reset(self):
        self.resets += 1


class TestRearmTimeout:
    def test_disabled_by_default(self):
        wd = Watchdog()
        fsm = _FakeFsm(armed_since=0)
        assert not wd.check_rearm(fsm, now=10 ** 9)
        assert fsm.resets == 0

    def test_stale_fsm_is_reset(self):
        wd = Watchdog(WatchdogConfig(rearm_timeout_samples=1000))
        fsm = _FakeFsm(armed_since=100)
        assert not wd.check_rearm(fsm, now=1100)  # exactly at the limit
        assert wd.check_rearm(fsm, now=1101)
        assert fsm.resets == 1
        assert wd.trips_by_reason(TRIP_REARM_TIMEOUT)

    def test_idle_fsm_untouched(self):
        wd = Watchdog(WatchdogConfig(rearm_timeout_samples=10))
        fsm = _FakeFsm(armed_since=None)
        assert not wd.check_rearm(fsm, now=10 ** 6)
        assert fsm.resets == 0


class TestCoreIntegration:
    """Safe state entry/exit through the register decode path."""

    def _device(self):
        device = UsrpN210(watchdog=Watchdog())
        bus = device.bus
        bus.write(regmap.REG_CONTROL_FLAGS,
                  regmap.FLAG_JAMMER_ENABLE | regmap.FLAG_CONTINUOUS)
        return device, bus

    def test_illegal_waveform_suppresses_tx(self):
        device, bus = self._device()
        noise = np.zeros(256, dtype=np.complex128)
        assert np.any(device.process(noise).tx != 0)  # continuous TX on
        bus.write(regmap.REG_JAM_WAVEFORM, 3)  # undefined preset select
        assert device.core.watchdog.safe_state
        assert np.all(device.process(noise).tx == 0)
        trips = device.core.watchdog.trips_by_reason(TRIP_ILLEGAL_REGISTER)
        assert len(trips) == 1
        assert str(regmap.REG_JAM_WAVEFORM) in trips[0].detail

    def test_legal_word_exits_safe_state(self):
        device, bus = self._device()
        noise = np.zeros(256, dtype=np.complex128)
        bus.write(regmap.REG_JAM_WAVEFORM, 3)
        assert np.all(device.process(noise).tx == 0)
        bus.write(regmap.REG_JAM_WAVEFORM, 0)  # back to WGN
        assert not device.core.watchdog.safe_state
        assert np.any(device.process(noise).tx != 0)

    def test_without_watchdog_illegal_word_raises(self):
        device = UsrpN210()
        with pytest.raises(ConfigurationError):
            device.bus.write(regmap.REG_JAM_WAVEFORM, 3)
