"""Per-chunk recovery in ReactiveJammer.run: degradation policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import DegradationPolicy, HealthReport, ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.errors import ConfigurationError, StreamError
from repro.faults import FaultPlan, FaultyRegisterBus, NO_FAULTS, StreamFaultInjector
from repro.hw import register_map as regmap
from repro.hw.usrp import UsrpN210
from repro.hw.watchdog import Watchdog

CHUNK = 1024


def _overrun_plan():
    # ~10 overruns in 50k samples, deterministic.
    return FaultPlan(seed=21).overruns(200, duration_samples=96)


def _configure(jammer, template):
    jammer.configure(
        detection=DetectionConfig(template=template, xcorr_threshold=30_000),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-5),
    )


@pytest.fixture
def template(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, 64))


def _signal(template, rng, n=50_000, burst_at=40_000):
    signal = (rng.normal(0, 1e-3, n) + 1j * rng.normal(0, 1e-3, n))
    signal[burst_at:burst_at + template.size] += template
    return signal.astype(np.complex128)


def test_fail_fast_reraises(template, rng):
    injector = StreamFaultInjector(_overrun_plan(), raise_on_overrun=True)
    jammer = ReactiveJammer(stream_faults=injector)
    _configure(jammer, template)
    with pytest.raises(StreamError, match="overrun"):
        jammer.run(_signal(template, rng), chunk_size=CHUNK)


def test_skip_and_log_survives_and_accounts(template, rng):
    injector = StreamFaultInjector(_overrun_plan(), raise_on_overrun=True)
    jammer = ReactiveJammer(stream_faults=injector)
    _configure(jammer, template)
    signal = _signal(template, rng, n=50 * CHUNK)
    report = jammer.run(signal, chunk_size=CHUNK,
                        degradation=DegradationPolicy.SKIP_AND_LOG)
    health = report.health
    assert health.chunks_skipped > 0
    assert health.samples_skipped == health.chunks_skipped * CHUNK
    assert len(health.stream_errors) == health.chunks_skipped
    assert all("overrun" in msg for msg in health.stream_errors)
    assert health.degraded
    # The transmit waveform covers the full input span: skipped chunks
    # contribute silence, not a shortened timeline.
    assert report.tx.size == signal.size
    total = health.chunks_processed + health.chunks_skipped
    assert total == -(-signal.size // CHUNK)


def test_skipped_chunks_keep_timeline_aligned(template, rng):
    """A detection after a skipped chunk lands at its true sample time."""
    injector = StreamFaultInjector(_overrun_plan(), raise_on_overrun=True)
    jammer = ReactiveJammer(stream_faults=injector)
    _configure(jammer, template)
    burst_at = 40_000
    signal = _signal(template, rng, burst_at=burst_at)
    report = jammer.run(signal, chunk_size=CHUNK,
                        degradation=DegradationPolicy.SKIP_AND_LOG)
    assert report.health.chunks_skipped > 0
    assert report.detections
    assert any(burst_at <= d.time < burst_at + template.size + 128
               for d in report.detections)


def test_scrub_during_run_repairs_upsets(template, rng):
    bus = FaultyRegisterBus(NO_FAULTS)
    jammer = ReactiveJammer(UsrpN210(bus=bus))
    _configure(jammer, template)
    bus.upset(regmap.REG_XCORR_THRESHOLD, 0xFFFF_FFFF)
    report = jammer.run(_signal(template, rng), chunk_size=CHUNK,
                        scrub_every_chunks=1)
    assert regmap.REG_XCORR_THRESHOLD in report.health.scrub_repairs
    assert report.health.degraded
    # The repaired threshold was back in place for the burst at 40k.
    assert report.detections


def test_clean_run_is_not_degraded(template, rng):
    jammer = ReactiveJammer()
    _configure(jammer, template)
    report = jammer.run(_signal(template, rng), chunk_size=CHUNK)
    assert report.health.chunks_processed > 0
    assert report.health.chunks_skipped == 0
    assert not report.health.degraded
    assert report.health.driver["writes"] > 0


def test_watchdog_trips_surface_in_health(template, rng):
    jammer = ReactiveJammer(watchdog=Watchdog())
    _configure(jammer, template)
    jammer.device.core.watchdog.flag_illegal(21, time=0, detail="planted")
    report = jammer.run(_signal(template, rng, n=4096, burst_at=1024),
                        chunk_size=CHUNK)
    assert report.health.watchdog_trips
    assert report.health.degraded


def test_device_conflicts_with_wiring_kwargs():
    with pytest.raises(ConfigurationError):
        ReactiveJammer(UsrpN210(), watchdog=Watchdog())
    with pytest.raises(ConfigurationError):
        ReactiveJammer(UsrpN210(),
                       stream_faults=StreamFaultInjector(NO_FAULTS))


def test_run_argument_validation(template, rng):
    jammer = ReactiveJammer()
    _configure(jammer, template)
    with pytest.raises(ConfigurationError):
        jammer.run(np.zeros(8, dtype=complex), chunk_size=0)
    with pytest.raises(ConfigurationError):
        jammer.run(np.zeros(8, dtype=complex), scrub_every_chunks=-1)


def test_health_report_defaults():
    assert not HealthReport().degraded
