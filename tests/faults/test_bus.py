"""FaultyRegisterBus: scripted control-plane faults on the wire."""

from __future__ import annotations

import pytest

from repro.errors import RegisterError
from repro.faults import FaultPlan, FaultyRegisterBus, NO_FAULTS
from repro.faults.plan import ControlFaultKind

ADDR = 20
OTHER = 21


def test_no_faults_is_a_plain_bus():
    bus = FaultyRegisterBus(NO_FAULTS)
    bus.write(ADDR, 0x1234)
    assert bus.read(ADDR) == 0x1234
    assert bus.fault_log == []


def test_drop_all_writes():
    bus = FaultyRegisterBus(FaultPlan(seed=1).drop_writes(1.0))
    bus.write(ADDR, 42)
    assert bus.read(ADDR) == 0
    assert [f.kind for f in bus.fault_log] == [ControlFaultKind.DROP]


def test_bitflip_corrupts_exactly_one_bit():
    bus = FaultyRegisterBus(FaultPlan(seed=2).bitflip_writes(1.0))
    bus.write(ADDR, 0)
    landed = bus.read(ADDR)
    assert landed != 0
    assert bin(landed).count("1") == 1


def test_duplicate_writes_twice():
    bus = FaultyRegisterBus(FaultPlan(seed=3).duplicate_writes(1.0))
    seen = []
    bus.watch(ADDR, seen.append)
    bus.write(ADDR, 7)
    assert seen == [7, 7]
    assert bus.read(ADDR) == 7


def test_delayed_write_lands_after_more_traffic():
    bus = FaultyRegisterBus(FaultPlan(seed=4).delay_writes(1.0, max_delay_ops=2))
    bus.faults_enabled = False
    bus.write(ADDR, 1)
    bus.faults_enabled = True
    bus.write(ADDR, 2)          # delayed 1..2 ops
    assert bus.pending_writes == 1
    bus.faults_enabled = False
    # Each bus op (read included) advances the wire clock.
    for _ in range(3):
        bus.read(OTHER)
    assert bus.pending_writes == 0
    assert bus.read(ADDR) == 2


def test_flush_lands_all_pending_writes():
    bus = FaultyRegisterBus(FaultPlan(seed=4).delay_writes(1.0, max_delay_ops=4))
    bus.write(ADDR, 9)
    assert bus.pending_writes == 1
    bus.flush()
    assert bus.pending_writes == 0
    assert bus.read(ADDR) == 9


def test_address_filter_spares_other_registers():
    plan = FaultPlan(seed=5).drop_writes(1.0, addresses={OTHER})
    bus = FaultyRegisterBus(plan)
    bus.write(ADDR, 3)
    bus.write(OTHER, 4)
    assert bus.read(ADDR) == 3
    assert bus.read(OTHER) == 0
    assert len(bus.fault_log) == 1


def test_faults_enabled_gate():
    bus = FaultyRegisterBus(FaultPlan(seed=6).drop_writes(1.0))
    bus.faults_enabled = False
    bus.write(ADDR, 11)
    assert bus.read(ADDR) == 11
    assert bus.fault_log == []
    bus.faults_enabled = True
    bus.write(ADDR, 12)
    assert bus.read(ADDR) == 11


def test_validation_happens_before_faults():
    """A fault plan cannot smuggle an illegal word past the bus contract."""
    bus = FaultyRegisterBus(FaultPlan(seed=7).drop_writes(1.0))
    with pytest.raises(RegisterError):
        bus.write(ADDR, 1 << 32)
    with pytest.raises(RegisterError):
        bus.write(300, 1)
    assert bus.fault_log == []


def test_upset_bypasses_watchers():
    bus = FaultyRegisterBus(NO_FAULTS)
    seen = []
    bus.watch(ADDR, seen.append)
    bus.write(ADDR, 5)
    bus.upset(ADDR, 0xDEAD)
    assert seen == [5]
    assert bus.read(ADDR) == 0xDEAD
