"""Tests for repro.units: conversions and clock constants."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import units


class TestDbConversions:
    def test_db_to_linear_zero_is_unity(self):
        assert units.db_to_linear(0.0) == 1.0

    def test_db_to_linear_ten_db(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_negative(self):
        assert units.db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_roundtrip(self):
        for db in (-30.0, -3.0, 0.0, 7.5, 42.0):
            assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_amplitude_db_roundtrip(self):
        for db in (-20.0, 0.0, 6.0):
            assert units.amplitude_to_db(units.db_to_amplitude(db)) == pytest.approx(db)

    def test_amplitude_is_half_power_exponent(self):
        # 20 dB in power is 10x in amplitude.
        assert units.db_to_amplitude(20.0) == pytest.approx(10.0)

    def test_amplitude_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.amplitude_to_db(0.0)


class TestDbm:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        for dbm in (-95.0, -30.0, 0.0, 20.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)


class TestClockConstants:
    def test_paper_clock_rates(self):
        assert units.FPGA_CLOCK_HZ == 100_000_000
        assert units.BASEBAND_RATE == 25_000_000

    def test_four_clocks_per_sample(self):
        assert units.CLOCKS_PER_SAMPLE == 4

    def test_sample_period_is_forty_ns(self):
        assert units.SAMPLE_PERIOD == pytest.approx(40e-9)

    def test_clock_period_is_ten_ns(self):
        assert units.CLOCK_PERIOD == pytest.approx(10e-9)


class TestSampleTimeConversions:
    def test_samples_to_seconds_default_rate(self):
        assert units.samples_to_seconds(25_000_000) == pytest.approx(1.0)

    def test_seconds_to_samples_rounds(self):
        # 1e-7 s is 2.5 samples; round() banker's-rounds to 2.
        assert units.seconds_to_samples(1e-7) == 2

    def test_seconds_to_samples_exact(self):
        assert units.seconds_to_samples(1e-4) == 2500

    def test_roundtrip_whole_samples(self):
        for n in (1, 64, 2500, 10**6):
            assert units.seconds_to_samples(units.samples_to_seconds(n)) == n

    def test_samples_to_clocks(self):
        assert units.samples_to_clocks(32) == 128

    def test_clocks_to_seconds(self):
        assert units.clocks_to_seconds(8) == pytest.approx(80e-9)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            units.samples_to_seconds(10, sample_rate=0)
        with pytest.raises(ValueError):
            units.seconds_to_samples(1.0, sample_rate=-1)


class TestSignalPower:
    def test_unit_tone(self):
        tone = np.exp(1j * np.linspace(0, 20, 1000))
        assert units.signal_power(tone) == pytest.approx(1.0)

    def test_scaling_is_quadratic(self):
        sig = np.ones(100, dtype=np.complex128)
        assert units.signal_power(3.0 * sig) == pytest.approx(9.0)

    def test_empty_signal_has_zero_power(self):
        assert units.signal_power(np.zeros(0, dtype=np.complex128)) == 0.0

    def test_signal_power_db(self):
        sig = np.full(64, 10.0 + 0j)
        assert units.signal_power_db(sig) == pytest.approx(20.0)


class TestSnrScale:
    def test_scales_to_target(self, rng):
        sig = rng.standard_normal(4000) + 1j * rng.standard_normal(4000)
        scaled = units.snr_scale(sig, snr_db=13.0, noise_power=2.0)
        achieved = units.signal_power(scaled) / 2.0
        assert units.linear_to_db(achieved) == pytest.approx(13.0, abs=1e-9)

    def test_rejects_zero_signal(self):
        with pytest.raises(ValueError):
            units.snr_scale(np.zeros(16, dtype=np.complex128), 0.0)


def test_seconds_to_samples_rounding_midpoint():
    # round() uses banker's rounding; pin the behaviour so callers
    # relying on it are covered.
    assert units.seconds_to_samples(2.5 / units.BASEBAND_RATE) in (2, 3)
    assert units.seconds_to_samples(3.5 / units.BASEBAND_RATE) in (3, 4)
    # and exact integers never move
    assert units.seconds_to_samples(7 / units.BASEBAND_RATE) == 7


def test_db_linear_consistency_with_math():
    assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)
    assert math.isclose(units.linear_to_db(100.0), 20.0)
