"""Correctness of the fused sign-bit correlation kernels.

The ground truth throughout is the seed model's four-pass
``np.correlate`` evaluation over the sign-sliced stream; the fused and
batched kernels must reproduce it byte-for-byte, for any chunking of
the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.kernels import (
    prepare_coefficients,
    sign_plane,
    xcorr_detect,
    xcorr_detect_batch,
    xcorr_metric,
)

TAPS = 64


def _random_bank(rng, taps=TAPS):
    return (rng.integers(-4, 4, taps), rng.integers(-4, 4, taps))


def _reference_metric(samples, ci, cq, history=None):
    """The seed datapath: sign slice, four np.correlate passes, square."""
    sign_i = np.where(np.real(samples) < 0, -1, 1).astype(np.int64)
    sign_q = np.where(np.imag(samples) < 0, -1, 1).astype(np.int64)
    pairs = ci.size - 1
    hist_i = np.zeros(pairs, dtype=np.int64)
    hist_q = np.zeros(pairs, dtype=np.int64)
    if history is not None:
        hist_i = history[0::2].astype(np.int64)
        hist_q = history[1::2].astype(np.int64)
    full_i = np.concatenate([hist_i, sign_i])
    full_q = np.concatenate([hist_q, sign_q])
    corr_re = (np.correlate(full_i, ci, mode="valid")
               + np.correlate(full_q, cq, mode="valid"))
    corr_im = (np.correlate(full_q, ci, mode="valid")
               - np.correlate(full_i, cq, mode="valid"))
    return corr_re * corr_re + corr_im * corr_im


def _plane_with_history(samples, pairs, history=None):
    plane = np.empty(2 * (pairs + samples.size), dtype=np.int8)
    plane[:2 * pairs] = 0 if history is None else history
    sign_plane(samples, out=plane[2 * pairs:])
    return plane


class TestPrepareCoefficients:
    def test_stacked_layout(self):
        prepared = prepare_coefficients([1, -2], [3, 0])
        np.testing.assert_array_equal(
            prepared.stacked,
            [[1, -3], [3, 1], [-2, 0], [0, -2]])
        assert prepared.taps == 2
        assert prepared.history_pairs == 1

    def test_three_bit_bank_runs_in_float32(self):
        rng = np.random.default_rng(0)
        prepared = prepare_coefficients(*_random_bank(rng))
        assert prepared.gemm_dtype == np.float32

    def test_wide_bank_falls_back_to_float64(self):
        ci = np.full(64, 1 << 10)
        prepared = prepare_coefficients(ci, ci)
        assert prepared.gemm_dtype == np.float64

    def test_rejects_mismatched_banks(self):
        with pytest.raises(ConfigurationError):
            prepare_coefficients([1, 2], [1, 2, 3])

    def test_rejects_empty_banks(self):
        with pytest.raises(ConfigurationError):
            prepare_coefficients([], [])

    def test_matrices_are_frozen(self):
        prepared = prepare_coefficients([1, 2], [3, 4])
        with pytest.raises(ValueError):
            prepared.a_matrix[0, 0] = 9.0


class TestSignPlane:
    def test_interleaves_and_maps_zero_positive(self):
        samples = np.array([1 - 2j, -3 + 0j, 0 + 0j])
        np.testing.assert_array_equal(
            sign_plane(samples), [1, -1, -1, 1, 1, 1])

    def test_out_shape_is_validated(self):
        with pytest.raises(StreamError):
            sign_plane(np.zeros(4, dtype=complex),
                       out=np.empty(7, dtype=np.int8))


class TestXcorrMetric:
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 500])
    def test_matches_reference(self, n):
        rng = np.random.default_rng(n)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        samples = rng.normal(size=n) + 1j * rng.normal(size=n)
        plane = _plane_with_history(samples, prepared.history_pairs)
        np.testing.assert_array_equal(
            xcorr_metric(plane, prepared),
            _reference_metric(samples, ci, cq))

    def test_metric_dtype_is_int64(self):
        rng = np.random.default_rng(1)
        prepared = prepare_coefficients(*_random_bank(rng))
        samples = rng.normal(size=100) + 1j * rng.normal(size=100)
        plane = _plane_with_history(samples, prepared.history_pairs)
        assert xcorr_metric(plane, prepared).dtype == np.int64

    def test_chunk_size_invariance(self):
        """Any chunking of the same stream yields the same metrics."""
        rng = np.random.default_rng(2)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        pairs = prepared.history_pairs
        stream = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        whole = xcorr_metric(
            _plane_with_history(stream, pairs), prepared)
        for sizes in ([1000], [1, 999], [63, 64, 873], [100] * 10):
            history = np.zeros(2 * pairs, dtype=np.int8)
            got = []
            start = 0
            for size in sizes:
                chunk = stream[start:start + size]
                plane = _plane_with_history(chunk, pairs, history)
                got.append(xcorr_metric(plane, prepared))
                history = plane[2 * chunk.size:].copy()
                start += size
            np.testing.assert_array_equal(np.concatenate(got), whole)

    def test_facade_matches_reference(self):
        rng = np.random.default_rng(3)
        ci, cq = _random_bank(rng)
        correlator = CrossCorrelator(ci, cq, threshold=1000)
        samples = rng.normal(size=300) + 1j * rng.normal(size=300)
        np.testing.assert_array_equal(
            correlator.metric(samples),
            _reference_metric(samples, ci, cq))

    def test_paper_bank_matches_reference(self):
        from repro.core.coeffs import wifi_long_preamble_template

        rng = np.random.default_rng(4)
        ci, cq = quantize_coefficients(wifi_long_preamble_template())
        prepared = prepare_coefficients(ci, cq)
        samples = rng.normal(size=2048) + 1j * rng.normal(size=2048)
        plane = _plane_with_history(samples, prepared.history_pairs)
        np.testing.assert_array_equal(
            xcorr_metric(plane, prepared),
            _reference_metric(samples, ci, cq))


class TestXcorrDetect:
    def test_fused_stream_matches_parts(self):
        rng = np.random.default_rng(5)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        samples = rng.normal(size=400) + 1j * rng.normal(size=400)
        plane = _plane_with_history(samples, prepared.history_pairs)
        metric = xcorr_metric(plane, prepared)
        threshold = int(np.percentile(metric, 90))
        result = xcorr_detect(plane, prepared, threshold)
        np.testing.assert_array_equal(result.metric, metric)
        np.testing.assert_array_equal(result.trigger, metric > threshold)
        expected_edges = np.flatnonzero(
            np.diff(np.concatenate([[False], metric > threshold])
                    .astype(np.int8)) > 0)
        np.testing.assert_array_equal(result.edges, expected_edges)
        assert result.last == bool((metric > threshold)[-1])


class TestXcorrDetectBatch:
    def _stream_reference(self, rows, lengths, prepared, threshold):
        """Feed the rows one by one through the streaming kernel."""
        pairs = prepared.history_pairs
        history = np.zeros(2 * pairs, dtype=np.int8)
        last = False
        triggers, edge_counts = [], []
        for row, length in zip(rows, lengths):
            chunk = row[:length]
            plane = _plane_with_history(chunk, pairs, history)
            result = xcorr_detect(plane, prepared, threshold, last=last)
            history = plane[2 * chunk.size:].copy()
            last = result.last
            triggers.append(result.trigger)
            edge_counts.append(result.edges.size)
        return triggers, edge_counts, history, last

    def test_byte_identical_to_streaming(self):
        rng = np.random.default_rng(6)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        width = 300
        lengths = np.array([300, 150, 64, 300, 299], dtype=np.int64)
        blocks = rng.normal(size=(5, width)) \
            + 1j * rng.normal(size=(5, width))
        metric_all = _reference_metric(
            np.concatenate([blocks[b, :lengths[b]] for b in range(5)]),
            ci, cq)
        threshold = int(np.percentile(metric_all, 85))

        result = xcorr_detect_batch(blocks, lengths, prepared, threshold)
        triggers, edge_counts, history, last = self._stream_reference(
            blocks, lengths, prepared, threshold)

        for b, length in enumerate(lengths):
            np.testing.assert_array_equal(
                result.trigger[b, :length], triggers[b])
            assert int(result.edge_plane[b].sum()) == edge_counts[b]
        np.testing.assert_array_equal(result.history, history)
        assert result.last == last

    def test_short_rows_fall_back_to_sequential_stitch(self):
        """Rows shorter than the history depth still chain exactly."""
        rng = np.random.default_rng(7)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        lengths = np.array([200, 5, 3, 200], dtype=np.int64)
        blocks = rng.normal(size=(4, 200)) \
            + 1j * rng.normal(size=(4, 200))
        threshold = 100_000
        result = xcorr_detect_batch(blocks, lengths, prepared, threshold)
        triggers, edge_counts, history, last = self._stream_reference(
            blocks, lengths, prepared, threshold)
        for b, length in enumerate(lengths):
            np.testing.assert_array_equal(
                result.trigger[b, :length], triggers[b])
            assert int(result.edge_plane[b].sum()) == edge_counts[b]
        np.testing.assert_array_equal(result.history, history)
        assert result.last == last

    def test_carry_state_chains_across_calls(self):
        """Splitting a batch into two calls with carried state is exact."""
        rng = np.random.default_rng(8)
        ci, cq = _random_bank(rng)
        prepared = prepare_coefficients(ci, cq)
        blocks = rng.normal(size=(6, 128)) \
            + 1j * rng.normal(size=(6, 128))
        lengths = np.full(6, 128, dtype=np.int64)
        threshold = 50_000

        whole = xcorr_detect_batch(blocks, lengths, prepared, threshold)
        first = xcorr_detect_batch(blocks[:3], lengths[:3], prepared,
                                   threshold)
        second = xcorr_detect_batch(blocks[3:], lengths[3:], prepared,
                                    threshold, history=first.history,
                                    last=first.last)
        np.testing.assert_array_equal(
            np.vstack([first.edge_plane, second.edge_plane]),
            whole.edge_plane)
        np.testing.assert_array_equal(second.history, whole.history)
        assert second.last == whole.last

    def test_rejects_bad_shapes(self):
        prepared = prepare_coefficients([1, 2], [3, 4])
        with pytest.raises(StreamError):
            xcorr_detect_batch(np.zeros(8, dtype=complex),
                               np.array([8]), prepared, 0)
        with pytest.raises(StreamError):
            xcorr_detect_batch(np.zeros((2, 8), dtype=complex),
                               np.array([8, 9]), prepared, 0)
        with pytest.raises(StreamError):
            xcorr_detect_batch(np.zeros((2, 8), dtype=complex),
                               np.array([8, 0]), prepared, 0)
