"""Correctness of the batched energy-differentiator kernels.

The ground truth is the streaming :class:`EnergyDifferentiator`
facade; the batched kernel must match it byte-for-byte including the
float64 tail stitching (float prefixes do not cancel, so this is a
real constraint, not a formality).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.hw.energy_differentiator import (
    DEFAULT_DELAY,
    DEFAULT_WINDOW,
    EnergyDifferentiator,
)
from repro.kernels import energy_detect_batch, moving_sums


def _linear(db):
    return 10.0 ** (db / 10.0)


class TestMovingSums:
    def test_matches_sequential_cumsum(self):
        rng = np.random.default_rng(0)
        window = 32
        padded = rng.random(window + 500)
        csum = np.cumsum(padded)
        expected = csum[window:] - csum[:-window]
        np.testing.assert_array_equal(
            moving_sums(padded, window), expected)

    def test_batched_rows_match_row_by_row(self):
        rng = np.random.default_rng(1)
        window = 8
        padded = rng.random((5, window + 100))
        batched = moving_sums(padded, window)
        for b in range(5):
            np.testing.assert_array_equal(
                batched[b], moving_sums(padded[b], window))


class TestEnergyDetectBatch:
    def _stream_reference(self, rows, lengths, threshold_db):
        detector = EnergyDifferentiator(threshold_high_db=threshold_db,
                                        threshold_low_db=threshold_db)
        outs = []
        last_high = last_low = False
        for row, length in zip(rows, lengths):
            trig_high, trig_low, edges_high, edges_low = detector.detect(
                row[:length], last_high, last_low)
            last_high = bool(trig_high[-1])
            last_low = bool(trig_low[-1])
            outs.append((trig_high, trig_low,
                         edges_high.size, edges_low.size))
        return outs, detector

    @pytest.mark.parametrize("lengths", [
        [400, 400, 400],
        [400, 150, 399, 64],
    ])
    def test_byte_identical_to_streaming(self, lengths):
        rng = np.random.default_rng(2)
        lengths = np.asarray(lengths, dtype=np.int64)
        width = int(lengths.max())
        batch = lengths.size
        blocks = rng.normal(size=(batch, width)) \
            + 1j * rng.normal(size=(batch, width))
        # A burst so the thresholds actually fire.
        blocks[1, 50:90] *= 6.0
        threshold_db = 6.0
        thr = _linear(threshold_db)

        result = energy_detect_batch(blocks, lengths,
                                     DEFAULT_WINDOW, DEFAULT_DELAY,
                                     thr, thr)
        outs, detector = self._stream_reference(blocks, lengths,
                                                threshold_db)
        for b, length in enumerate(lengths):
            trig_high, trig_low, n_high, n_low = outs[b]
            np.testing.assert_array_equal(
                result.trigger_high[b, :length], trig_high)
            np.testing.assert_array_equal(
                result.trigger_low[b, :length], trig_low)
            assert int(result.edge_high[b].sum()) == n_high
            assert int(result.edge_low[b].sum()) == n_low
        np.testing.assert_array_equal(result.energy_tail,
                                      detector._energy_tail)
        np.testing.assert_array_equal(result.sum_tail,
                                      detector._sum_tail)

    def test_short_rows_fall_back_to_sequential_stitch(self):
        """Rows shorter than the tails still chain bit-exactly."""
        rng = np.random.default_rng(3)
        lengths = np.array([300, 10, 3, 300], dtype=np.int64)
        blocks = rng.normal(size=(4, 300)) \
            + 1j * rng.normal(size=(4, 300))
        thr = _linear(6.0)
        result = energy_detect_batch(blocks, lengths,
                                     DEFAULT_WINDOW, DEFAULT_DELAY,
                                     thr, thr)
        outs, detector = self._stream_reference(blocks, lengths, 6.0)
        for b, length in enumerate(lengths):
            trig_high, trig_low, _, _ = outs[b]
            np.testing.assert_array_equal(
                result.trigger_high[b, :length], trig_high)
            np.testing.assert_array_equal(
                result.trigger_low[b, :length], trig_low)
        np.testing.assert_array_equal(result.energy_tail,
                                      detector._energy_tail)
        np.testing.assert_array_equal(result.sum_tail,
                                      detector._sum_tail)

    def test_carry_state_chains_across_calls(self):
        rng = np.random.default_rng(4)
        blocks = rng.normal(size=(6, 200)) \
            + 1j * rng.normal(size=(6, 200))
        lengths = np.full(6, 200, dtype=np.int64)
        thr = _linear(6.0)

        whole = energy_detect_batch(blocks, lengths,
                                    DEFAULT_WINDOW, DEFAULT_DELAY,
                                    thr, thr)
        first = energy_detect_batch(blocks[:2], lengths[:2],
                                    DEFAULT_WINDOW, DEFAULT_DELAY,
                                    thr, thr)
        second = energy_detect_batch(blocks[2:], lengths[2:],
                                     DEFAULT_WINDOW, DEFAULT_DELAY,
                                     thr, thr,
                                     energy_tail=first.energy_tail,
                                     sum_tail=first.sum_tail,
                                     last_high=first.last_high,
                                     last_low=first.last_low)
        np.testing.assert_array_equal(
            np.vstack([first.edge_high, second.edge_high]),
            whole.edge_high)
        np.testing.assert_array_equal(
            np.vstack([first.edge_low, second.edge_low]),
            whole.edge_low)
        np.testing.assert_array_equal(second.energy_tail,
                                      whole.energy_tail)
        np.testing.assert_array_equal(second.sum_tail, whole.sum_tail)
        assert second.last_high == whole.last_high
        assert second.last_low == whole.last_low

    def test_rejects_bad_shapes(self):
        with pytest.raises(StreamError):
            energy_detect_batch(np.zeros(8, dtype=complex),
                                np.array([8]), 4, 8, 2.0, 2.0)
        with pytest.raises(StreamError):
            energy_detect_batch(np.zeros((2, 8), dtype=complex),
                                np.array([8, 9]), 4, 8, 2.0, 2.0)
