"""Backend registry and selection semantics."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import (
    BACKEND_ENV,
    BackendUnavailable,
    KernelBackend,
    NumpyKernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.kernels.dispatch import _FACTORIES, _INSTANCES, _WARNED


@pytest.fixture
def scratch_registry():
    """Snapshot and restore the registry around mutation tests."""
    factories = dict(_FACTORIES)
    instances = dict(_INSTANCES)
    warned = set(_WARNED)
    yield
    _FACTORIES.clear()
    _FACTORIES.update(factories)
    _INSTANCES.clear()
    _INSTANCES.update(instances)
    _WARNED.clear()
    _WARNED.update(warned)


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert get_backend().name == "numpy"
        assert isinstance(get_backend(), NumpyKernelBackend)

    def test_explicit_name_resolves(self):
        assert get_backend("numpy").name == "numpy"

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_resolved_instance_passes_through(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend

    def test_explicit_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("no-such-backend")

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert get_backend().name == "numpy"

    def test_env_unknown_falls_back_with_warning(self, monkeypatch,
                                                 scratch_registry):
        monkeypatch.setenv(BACKEND_ENV, "bogus-backend")
        _WARNED.clear()
        with pytest.warns(RuntimeWarning, match="bogus-backend"):
            backend = get_backend()
        assert backend.name == "numpy"
        # The warning is one-shot per name.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend().name == "numpy"

    def test_env_unavailable_falls_back(self, monkeypatch,
                                        scratch_registry):
        def broken():
            raise BackendUnavailable("optional dep missing")

        register_backend("broken", broken)
        _WARNED.clear()
        monkeypatch.setenv(BACKEND_ENV, "broken")
        with pytest.warns(RuntimeWarning, match="broken"):
            assert get_backend().name == "numpy"

    def test_explicit_unavailable_raises(self, scratch_registry):
        def broken():
            raise BackendUnavailable("optional dep missing")

        register_backend("broken2", broken)
        with pytest.raises(BackendUnavailable):
            get_backend("broken2")


class TestRegistry:
    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()

    def test_unavailable_backend_is_hidden(self, scratch_registry):
        def broken():
            raise BackendUnavailable("optional dep missing")

        register_backend("broken3", broken)
        assert "broken3" not in available_backends()

    def test_custom_backend_dispatches(self, scratch_registry):
        class Doubler(KernelBackend):
            name = "doubler"

            def moving_sums(self, padded, window, out=None,
                            csum_scratch=None):
                return 2 * NumpyKernelBackend().moving_sums(padded, window)

        register_backend("doubler", Doubler)
        padded = np.arange(8, dtype=np.float64)
        ref = get_backend("numpy").moving_sums(padded, 2)
        doubled = get_backend("doubler").moving_sums(padded, 2)
        np.testing.assert_array_equal(doubled, 2 * ref)
