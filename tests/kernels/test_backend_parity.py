"""Every registered backend is byte-identical to the numpy reference.

These are property tests: random sign planes and random 3-bit
coefficient banks, with the numpy reference compared against an int64
brute-force evaluation (and against the numba JIT when that optional
dependency is installed — the numba cases auto-skip otherwise).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    BackendUnavailable,
    available_backends,
    get_backend,
    prepare_coefficients,
)


def _brute_metric(plane, ci, cq):
    """Int64 brute force straight off the Fig. 3 datapath."""
    taps = ci.size
    sign_i = plane[0::2].astype(np.int64)
    sign_q = plane[1::2].astype(np.int64)
    n = sign_i.size - (taps - 1)
    out = np.empty(n, dtype=np.int64)
    for t in range(n):
        wi = sign_i[t:t + taps]
        wq = sign_q[t:t + taps]
        corr_re = int(np.dot(ci, wi) + np.dot(cq, wq))
        corr_im = int(np.dot(ci, wq) - np.dot(cq, wi))
        out[t] = corr_re * corr_re + corr_im * corr_im
    return out


def _numba_backend_or_skip():
    try:
        return get_backend("numba")
    except BackendUnavailable:
        pytest.skip("numba is not installed")


#: Small banks keep the brute force cheap while exercising every
#: alignment of the block-Toeplitz evaluation.
bank_and_plane = st.integers(min_value=2, max_value=12).flatmap(
    lambda taps: st.tuples(
        st.lists(st.integers(-4, 3), min_size=taps, max_size=taps),
        st.lists(st.integers(-4, 3), min_size=taps, max_size=taps),
        st.lists(st.sampled_from([-1, 0, 1]),
                 min_size=2 * taps, max_size=2 * (taps + 40)),
    )
)


class TestNumpyAgainstBruteForce:
    @given(bank_and_plane)
    @settings(max_examples=60, deadline=None)
    def test_metric_matches_brute_force(self, case):
        ci_list, cq_list, plane_list = case
        ci = np.array(ci_list, dtype=np.int64)
        cq = np.array(cq_list, dtype=np.int64)
        # Round the plane down to whole I/Q pairs.
        plane = np.array(plane_list[:len(plane_list) & ~1],
                         dtype=np.int8)
        if plane.size // 2 < ci.size:
            plane = np.pad(plane, (0, 2 * ci.size - plane.size))
        prepared = prepare_coefficients(ci, cq)
        got = get_backend("numpy").xcorr_metric(plane, prepared)
        np.testing.assert_array_equal(got, _brute_metric(plane, ci, cq))


class TestNumbaParity:
    @given(bank_and_plane)
    @settings(max_examples=25, deadline=None)
    def test_xcorr_metric_parity(self, case):
        backend = _numba_backend_or_skip()
        ci_list, cq_list, plane_list = case
        ci = np.array(ci_list, dtype=np.int64)
        cq = np.array(cq_list, dtype=np.int64)
        plane = np.array(plane_list[:len(plane_list) & ~1],
                         dtype=np.int8)
        if plane.size // 2 < ci.size:
            plane = np.pad(plane, (0, 2 * ci.size - plane.size))
        prepared = prepare_coefficients(ci, cq)
        np.testing.assert_array_equal(
            backend.xcorr_metric(plane, prepared),
            get_backend("numpy").xcorr_metric(plane, prepared))

    @given(st.integers(1, 16), st.integers(1, 200), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_moving_sums_parity(self, window, n, seed):
        backend = _numba_backend_or_skip()
        rng = np.random.default_rng(seed)
        padded = rng.random(window + n)
        np.testing.assert_array_equal(
            backend.moving_sums(padded, window),
            get_backend("numpy").moving_sums(padded, window))


class TestAllAvailableBackends:
    def test_every_available_backend_agrees_on_the_paper_shape(self):
        rng = np.random.default_rng(9)
        ci = rng.integers(-4, 4, 64)
        cq = rng.integers(-4, 4, 64)
        prepared = prepare_coefficients(ci, cq)
        plane = rng.choice(
            np.array([-1, 1], dtype=np.int8), size=2 * (63 + 777))
        reference = get_backend("numpy").xcorr_metric(plane, prepared)
        for name in available_backends():
            np.testing.assert_array_equal(
                get_backend(name).xcorr_metric(plane, prepared),
                reference, err_msg=f"backend {name!r} diverged")
