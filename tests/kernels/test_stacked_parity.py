"""Property suite: the stacked bank is K independent correlators.

Hypothesis drives random coefficient banks, random thresholds, and —
the load-bearing part — *random chunk splits* of one sample stream.
However the stream is sliced, the streaming
:class:`repro.hw.BankedCrossCorrelator` must stay byte-identical to K
independent streaming :class:`repro.hw.CrossCorrelator` instances,
bank by bank: metric plane, trigger plane, rising edges, and the
per-bank carry state that chains edges across chunk boundaries.

A numba-vs-numpy leg pins backend parity for the stacked op and
auto-skips when the optional JIT dependency is absent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import BankedCrossCorrelator
from repro.hw.cross_correlator import CrossCorrelator
from repro.hw.register_map import CORRELATOR_LENGTH
from repro.kernels import (
    BackendUnavailable,
    get_backend,
    prepare_stacked,
    xcorr_detect_stacked,
    xcorr_detect_stacked_batch,
)

#: seed for the data stream, bank count, per-chunk sizes (zeros allowed
#: — an empty chunk must be a no-op), and a per-bank threshold scale.
stream_case = st.tuples(
    st.integers(0, 2 ** 32 - 1),
    st.integers(1, 4),
    st.lists(st.integers(0, 160), min_size=1, max_size=6),
    st.integers(0, 2_000),
)


def _make_banks(rng, n_banks):
    return [(rng.integers(-4, 4, CORRELATOR_LENGTH),
             rng.integers(-4, 4, CORRELATOR_LENGTH))
            for _ in range(n_banks)]


class TestStreamingChunkSplits:
    @given(stream_case)
    @settings(max_examples=40, deadline=None)
    def test_detect_matches_independent_streams(self, case):
        seed, n_banks, chunk_sizes, threshold_scale = case
        rng = np.random.default_rng(seed)
        banks = _make_banks(rng, n_banks)
        # Low thresholds so triggers and edges actually occur on noise.
        thresholds = rng.integers(0, threshold_scale + 1, n_banks)
        samples = rng.normal(size=sum(chunk_sizes)) \
            + 1j * rng.normal(size=sum(chunk_sizes))

        banked = BankedCrossCorrelator()
        banked.load_banks(banks, thresholds)
        singles = [CrossCorrelator(ci, cq, threshold=int(thr))
                   for (ci, cq), thr in zip(banks, thresholds)]
        lasts = [False] * n_banks

        position = 0
        for size in chunk_sizes:
            chunk = samples[position:position + size]
            position += size
            trigger, edges = banked.detect(chunk)
            assert trigger.shape == (n_banks, size)
            for k, single in enumerate(singles):
                t, e = single.detect(chunk, last=lasts[k])
                if t.size:
                    lasts[k] = bool(t[-1])
                np.testing.assert_array_equal(trigger[k], t)
                np.testing.assert_array_equal(edges[k], e)

    @given(stream_case)
    @settings(max_examples=30, deadline=None)
    def test_metric_plane_matches_independent_streams(self, case):
        seed, n_banks, chunk_sizes, _scale = case
        rng = np.random.default_rng(seed)
        banks = _make_banks(rng, n_banks)
        samples = rng.normal(size=sum(chunk_sizes)) \
            + 1j * rng.normal(size=sum(chunk_sizes))

        banked = BankedCrossCorrelator()
        banked.load_banks(banks, np.zeros(n_banks, dtype=np.int64))
        singles = [CrossCorrelator(ci, cq) for ci, cq in banks]

        position = 0
        for size in chunk_sizes:
            chunk = samples[position:position + size]
            position += size
            plane = banked.metric(chunk)
            assert plane.shape == (n_banks, size)
            for k, single in enumerate(singles):
                np.testing.assert_array_equal(plane[k],
                                              single.metric(chunk))

    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_chunked_equals_one_shot(self, seed, n_banks):
        rng = np.random.default_rng(seed)
        banks = _make_banks(rng, n_banks)
        thresholds = rng.integers(0, 2_000, n_banks)
        samples = rng.normal(size=300) + 1j * rng.normal(size=300)

        one_shot = BankedCrossCorrelator()
        one_shot.load_banks(banks, thresholds)
        _trigger, whole_edges = one_shot.detect(samples)

        chunked = BankedCrossCorrelator()
        chunked.load_banks(banks, thresholds)
        collected = [[] for _ in range(n_banks)]
        for start in range(0, 300, 77):
            _t, edges = chunked.detect(samples[start:start + 77])
            for k in range(n_banks):
                collected[k].extend(edges[k] + start)
        for k in range(n_banks):
            np.testing.assert_array_equal(np.array(collected[k]),
                                          whole_edges[k])


class TestBatchLeg:
    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 3),
           st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_batch_rows_equal_streaming_stacked(self, seed, n_banks,
                                                batch):
        rng = np.random.default_rng(seed)
        banks = [(rng.integers(-4, 4, 8), rng.integers(-4, 4, 8))
                 for _ in range(n_banks)]
        stacked = prepare_stacked(banks)
        thresholds = rng.integers(0, 200, n_banks)
        width = 40
        lengths = rng.integers(1, width + 1, batch)
        blocks = rng.normal(size=(batch, width)) \
            + 1j * rng.normal(size=(batch, width))

        result = xcorr_detect_stacked_batch(blocks, lengths, stacked,
                                            thresholds)

        history = np.zeros(2 * stacked.history_pairs, dtype=np.int8)
        last = np.zeros(n_banks, dtype=bool)
        from repro.kernels import sign_plane
        for b in range(batch):
            row = blocks[b, :lengths[b]]
            plane = np.concatenate([history, sign_plane(row)])
            ref = xcorr_detect_stacked(plane, stacked, thresholds,
                                       last=last)
            n = int(lengths[b])
            np.testing.assert_array_equal(result.metric[b, :, :n],
                                          ref.metric)
            np.testing.assert_array_equal(result.trigger[b, :, :n],
                                          ref.trigger)
            for k in range(n_banks):
                np.testing.assert_array_equal(
                    np.flatnonzero(result.edge_plane[b, k, :n]),
                    ref.edges[k])
            history = plane[2 * n:]
            last = ref.last
        np.testing.assert_array_equal(result.history, history)
        np.testing.assert_array_equal(result.last, last)


class TestNumbaStackedParity:
    def _backend_or_skip(self):
        try:
            return get_backend("numba")
        except BackendUnavailable:
            pytest.skip("numba is not installed")

    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 4),
           st.integers(1, 120))
    @settings(max_examples=25, deadline=None)
    def test_xcorr_metric_stacked_parity(self, seed, n_banks, n):
        backend = self._backend_or_skip()
        rng = np.random.default_rng(seed)
        banks = [(rng.integers(-4, 4, 12), rng.integers(-4, 4, 12))
                 for _ in range(n_banks)]
        stacked = prepare_stacked(banks)
        plane = rng.choice(np.array([-1, 0, 1], dtype=np.int8),
                           size=2 * (stacked.history_pairs + n))
        np.testing.assert_array_equal(
            backend.xcorr_metric_stacked(plane, stacked),
            get_backend("numpy").xcorr_metric_stacked(plane, stacked))
