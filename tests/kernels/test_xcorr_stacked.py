"""Correctness of the stacked multi-bank correlation kernels.

The invariant under test throughout: bank ``k`` of one stacked pass is
byte-identical to an independent single-bank correlator holding only
bank ``k`` — metric plane, trigger plane, edge lists, and carry state.
The prepare step's memoization (bank fingerprints, thresholds) is
pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import (
    prepare_coefficients,
    prepare_stacked,
    sign_plane,
    stacked_bank_program,
    xcorr_detect,
    xcorr_detect_stacked,
    xcorr_metric,
    xcorr_metric_stacked,
)
from repro.runtime.cache import DEFAULT_CACHE

TAPS = 64


def _random_banks(rng, n_banks, taps=TAPS):
    return [(rng.integers(-4, 4, taps), rng.integers(-4, 4, taps))
            for _ in range(n_banks)]


def _plane(rng, n, history_pairs):
    samples = rng.normal(size=n) + 1j * rng.normal(size=n)
    history = rng.choice(np.array([-1, 1], dtype=np.int8),
                         size=2 * history_pairs)
    return np.concatenate([history, sign_plane(samples)])


class TestPrepareStacked:
    def test_rejects_empty_and_ragged_banks(self):
        with pytest.raises(ConfigurationError):
            prepare_stacked([])
        with pytest.raises(ConfigurationError):
            prepare_stacked([(np.ones(4), np.ones(5))])
        with pytest.raises(ConfigurationError):
            prepare_stacked([(np.zeros(0), np.zeros(0))])

    def test_shapes_and_padding(self):
        rng = np.random.default_rng(0)
        banks = [(rng.integers(-4, 4, 5), rng.integers(-4, 4, 5)),
                 (rng.integers(-4, 4, 8), rng.integers(-4, 4, 8))]
        coeffs = prepare_stacked(banks)
        assert coeffs.taps == 8
        assert coeffs.n_banks == 2
        assert coeffs.bank_taps == (5, 8)
        assert coeffs.stacked.shape == (16, 4)
        # Front padding: the short bank's first 3 pairs are zero.
        assert not coeffs.stacked[:6, 0:2].any()
        assert coeffs.a_matrix.shape == (16, 8 * 4)

    def test_repeat_call_is_a_cache_hit_returning_same_instance(self):
        rng = np.random.default_rng(1)
        banks = _random_banks(rng, 3)
        first = prepare_stacked(banks)
        hits = DEFAULT_CACHE.hits
        misses = DEFAULT_CACHE.misses
        # Same contents through a different container/dtype spelling.
        respelled = tuple((np.asarray(ci, dtype=np.int32), list(map(int, cq)))
                          for ci, cq in banks)
        second = prepare_stacked(respelled)
        assert second is first
        assert DEFAULT_CACHE.hits == hits + 1
        assert DEFAULT_CACHE.misses == misses

    def test_different_banks_miss(self):
        rng = np.random.default_rng(2)
        banks = _random_banks(rng, 2)
        prepare_stacked(banks)
        misses = DEFAULT_CACHE.misses
        other = [(ci + 1, cq) for ci, cq in banks]
        prepare_stacked(other)
        assert DEFAULT_CACHE.misses == misses + 1


class TestStackedBankProgram:
    def test_threshold_sweep_reuses_the_prepared_stack(self):
        rng = np.random.default_rng(3)
        banks = _random_banks(rng, 2)
        prepared_a, thr_a = stacked_bank_program(banks, (100, 200))
        hits = DEFAULT_CACHE.hits
        misses = DEFAULT_CACHE.misses
        prepared_b, thr_b = stacked_bank_program(banks, (100, 999))
        # New program key (miss) but the padding level hits.
        assert prepared_b is prepared_a
        assert DEFAULT_CACHE.misses == misses + 1
        assert DEFAULT_CACHE.hits == hits + 1
        assert thr_b.tolist() == [100, 999]
        assert not thr_b.flags.writeable

    def test_validation(self):
        rng = np.random.default_rng(4)
        banks = _random_banks(rng, 2)
        with pytest.raises(ConfigurationError):
            stacked_bank_program(banks, (100,))
        with pytest.raises(ConfigurationError):
            stacked_bank_program(banks, (100, 1 << 32))
        with pytest.raises(ConfigurationError):
            stacked_bank_program(banks, (-1, 100))


class TestStackedMetric:
    @pytest.mark.parametrize("n_banks", [1, 2, 4])
    def test_rows_match_single_bank_metric(self, n_banks):
        rng = np.random.default_rng(5)
        banks = _random_banks(rng, n_banks)
        stacked = prepare_stacked(banks)
        plane = _plane(rng, 700, stacked.history_pairs)
        out = xcorr_metric_stacked(plane, stacked)
        assert out.shape == (n_banks, 700)
        assert out.dtype == np.int64
        for k, bank in enumerate(banks):
            single = xcorr_metric(plane, prepare_coefficients(*bank))
            np.testing.assert_array_equal(out[k], single)

    def test_variable_tap_banks_match_their_own_history_depth(self):
        # Shorter banks are front-padded; with the shared history the
        # padded taps multiply zeros-or-anything into nothing, so each
        # bank matches a standalone correlator of its own length fed
        # the *tail* of the shared history.
        rng = np.random.default_rng(6)
        banks = [(rng.integers(-4, 4, t), rng.integers(-4, 4, t))
                 for t in (5, 3, 8)]
        stacked = prepare_stacked(banks)
        plane = _plane(rng, 300, stacked.history_pairs)
        out = xcorr_metric_stacked(plane, stacked)
        for k, bank in enumerate(banks):
            taps = bank[0].size
            tail = plane[2 * (stacked.taps - taps):]
            single = xcorr_metric(tail, prepare_coefficients(*bank))
            np.testing.assert_array_equal(out[k], single)

    def test_batched_rows(self):
        rng = np.random.default_rng(7)
        banks = _random_banks(rng, 2)
        stacked = prepare_stacked(banks)
        planes = np.stack([_plane(rng, 256, stacked.history_pairs)
                           for _ in range(3)])
        out = xcorr_metric_stacked(planes, stacked)
        assert out.shape == (3, 2, 256)
        for r in range(3):
            np.testing.assert_array_equal(
                out[r], xcorr_metric_stacked(planes[r], stacked))


class TestStackedDetect:
    def test_edges_and_carry_match_single_bank_detect(self):
        rng = np.random.default_rng(8)
        banks = _random_banks(rng, 3)
        stacked = prepare_stacked(banks)
        thresholds = np.array([50_000, 20_000, 5_000], dtype=np.int64)
        plane = _plane(rng, 900, stacked.history_pairs)
        result = xcorr_detect_stacked(plane, stacked, thresholds)
        assert result.trigger.shape == (3, 900)
        assert result.last.shape == (3,)
        for k, bank in enumerate(banks):
            single = xcorr_detect(plane, prepare_coefficients(*bank),
                                  int(thresholds[k]), last=False)
            np.testing.assert_array_equal(result.trigger[k], single.trigger)
            np.testing.assert_array_equal(result.edges[k], single.edges)
            assert bool(result.last[k]) == bool(single.last)

    def test_carry_in_suppresses_leading_edge(self):
        rng = np.random.default_rng(9)
        banks = _random_banks(rng, 2)
        stacked = prepare_stacked(banks)
        plane = _plane(rng, 400, stacked.history_pairs)
        # Threshold 0 triggers everywhere (metric >= 0, strictly > 0
        # almost surely), so the first sample is a rising edge only
        # without carry-in.
        thresholds = np.zeros(2, dtype=np.int64)
        cold = xcorr_detect_stacked(plane, stacked, thresholds)
        warm = xcorr_detect_stacked(plane, stacked, thresholds,
                                    last=np.array([True, False]))
        assert 0 in cold.edges[0] and 0 in cold.edges[1]
        assert 0 not in warm.edges[0]
        assert 0 in warm.edges[1]

    def test_threshold_shape_mismatch_rejected(self):
        rng = np.random.default_rng(10)
        banks = _random_banks(rng, 2)
        stacked = prepare_stacked(banks)
        plane = _plane(rng, 64, stacked.history_pairs)
        with pytest.raises(ConfigurationError):
            xcorr_detect_stacked(plane, stacked,
                                 np.array([1, 2, 3], dtype=np.int64))
