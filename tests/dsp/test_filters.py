"""Tests for repro.dsp.filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.filters import FirFilter, design_lowpass, moving_sum
from repro.errors import ConfigurationError, StreamError


class TestDesignLowpass:
    def test_unit_dc_gain(self):
        taps = design_lowpass(cutoff=5e6, sample_rate=25e6, num_taps=41)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_attenuates_stopband(self):
        taps = design_lowpass(cutoff=2e6, sample_rate=25e6, num_taps=101)
        freqs = np.fft.rfftfreq(4096, d=1 / 25e6)
        response = np.abs(np.fft.rfft(taps, 4096))
        stop = response[freqs > 6e6]
        assert np.max(stop) < 0.05

    def test_passband_flat(self):
        taps = design_lowpass(cutoff=5e6, sample_rate=25e6, num_taps=101)
        freqs = np.fft.rfftfreq(4096, d=1 / 25e6)
        response = np.abs(np.fft.rfft(taps, 4096))
        passband = response[freqs < 2e6]
        assert np.min(passband) > 0.9

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            design_lowpass(cutoff=13e6, sample_rate=25e6)

    def test_rejects_zero_cutoff(self):
        with pytest.raises(ConfigurationError):
            design_lowpass(cutoff=0.0, sample_rate=25e6)

    def test_rejects_bad_tap_count(self):
        with pytest.raises(ConfigurationError):
            design_lowpass(cutoff=5e6, sample_rate=25e6, num_taps=0)


class TestFirFilter:
    def test_identity_filter(self, rng):
        f = FirFilter(np.array([1.0]))
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert np.allclose(f.process(x), x)

    def test_chunked_equals_single_shot(self, rng):
        taps = design_lowpass(5e6, 25e6, num_taps=31)
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        whole = FirFilter(taps).process(x)
        chunked = FirFilter(taps)
        parts = [chunked.process(x[i:i + 137]) for i in range(0, 1000, 137)]
        assert np.allclose(np.concatenate(parts), whole)

    def test_reset_clears_state(self, rng):
        taps = design_lowpass(5e6, 25e6, num_taps=31)
        f = FirFilter(taps)
        x = rng.standard_normal(64) + 0j
        first = f.process(x)
        f.reset()
        second = f.process(x)
        assert np.allclose(first, second)

    def test_group_delay(self):
        f = FirFilter(np.ones(31) / 31)
        assert f.group_delay_samples == 15.0

    def test_empty_chunk(self):
        f = FirFilter(np.array([1.0, 0.5]))
        assert f.process(np.zeros(0)).size == 0

    def test_rejects_2d_input(self):
        f = FirFilter(np.array([1.0]))
        with pytest.raises(StreamError):
            f.process(np.zeros((2, 2)))

    def test_rejects_empty_taps(self):
        with pytest.raises(ConfigurationError):
            FirFilter(np.array([]))

    def test_taps_returns_copy(self):
        taps = np.array([1.0, 2.0])
        f = FirFilter(taps)
        f.taps[0] = 99.0
        assert f.taps[0] == 1.0


class TestMovingSum:
    def test_window_one_is_identity(self, rng):
        x = rng.standard_normal(20)
        assert np.allclose(moving_sum(x, 1), x)

    def test_matches_bruteforce(self, rng):
        x = rng.standard_normal(50)
        out = moving_sum(x, 7)
        for n in range(50):
            expected = np.sum(x[max(0, n - 6):n + 1])
            assert out[n] == pytest.approx(expected)

    def test_constant_input_saturates_to_window(self):
        out = moving_sum(np.ones(40), 8)
        assert np.allclose(out[7:], 8.0)
        assert np.allclose(out[:8], np.arange(1, 9))

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            moving_sum(np.ones(4), 0)
