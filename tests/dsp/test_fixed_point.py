"""Tests for repro.dsp.fixed_point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.fixed_point import (
    COEFF3,
    IQ16,
    FixedPointFormat,
    quantize,
    quantize_iq16,
    sign_bits,
    sign_bits_iq,
)
from repro.errors import ConfigurationError


class TestFixedPointFormat:
    def test_iq16_range(self):
        assert IQ16.max_int == 32767
        assert IQ16.min_int == -32768
        assert IQ16.max_value == pytest.approx(32767 / 32768)
        assert IQ16.min_value == -1.0

    def test_coeff3_range(self):
        assert COEFF3.max_int == 3
        assert COEFF3.min_int == -4
        assert COEFF3.scale == 1

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(total_bits=0)

    def test_rejects_negative_fractional(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(total_bits=8, fractional_bits=-1)

    def test_rejects_all_fractional(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(total_bits=8, fractional_bits=8)

    def test_to_int_saturates_high(self):
        fmt = FixedPointFormat(total_bits=8, fractional_bits=4)
        assert fmt.to_int(np.array([1000.0]))[0] == fmt.max_int

    def test_to_int_saturates_low(self):
        fmt = FixedPointFormat(total_bits=8, fractional_bits=4)
        assert fmt.to_int(np.array([-1000.0]))[0] == fmt.min_int

    def test_roundtrip_within_range(self):
        fmt = FixedPointFormat(total_bits=12, fractional_bits=6)
        values = np.array([0.0, 0.5, -0.5, 1.25, -2.0])
        back = fmt.to_float(fmt.to_int(values))
        assert np.allclose(back, values)

    def test_quantization_step(self):
        fmt = FixedPointFormat(total_bits=8, fractional_bits=4)
        # step is 1/16; 0.06 rounds to 1/16
        assert fmt.to_float(fmt.to_int(np.array([0.06])))[0] == pytest.approx(1 / 16)


class TestQuantize:
    def test_real_passthrough_of_exact_values(self):
        fmt = FixedPointFormat(total_bits=16, fractional_bits=8)
        values = np.array([1.0, -0.5, 0.25])
        assert np.allclose(quantize(values, fmt), values)

    def test_complex_componentwise(self):
        values = np.array([0.3 + 0.7j, -0.2 - 0.9j])
        out = quantize(values, IQ16)
        assert np.allclose(out.real, quantize(values.real, IQ16))
        assert np.allclose(out.imag, quantize(values.imag, IQ16))

    def test_iq16_clips_at_full_scale(self):
        out = quantize_iq16(np.array([2.0 + 3.0j]))
        assert out[0].real == pytest.approx(32767 / 32768)
        assert out[0].imag == pytest.approx(32767 / 32768)

    def test_iq16_error_bound(self, rng):
        values = rng.uniform(-0.9, 0.9, 500) + 1j * rng.uniform(-0.9, 0.9, 500)
        out = quantize_iq16(values)
        step = 1 / 32768
        assert np.max(np.abs(out.real - values.real)) <= step / 2 + 1e-12
        assert np.max(np.abs(out.imag - values.imag)) <= step / 2 + 1e-12


class TestSignBits:
    def test_positive_maps_to_plus_one(self):
        assert sign_bits(np.array([0.5]))[0] == 1

    def test_negative_maps_to_minus_one(self):
        assert sign_bits(np.array([-0.5]))[0] == -1

    def test_zero_maps_to_plus_one_like_hardware(self):
        # MSB of +0 is clear in two's complement.
        assert sign_bits(np.array([0.0]))[0] == 1

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            sign_bits(np.array([1.0 + 1.0j]))

    def test_sign_bits_iq_components(self):
        values = np.array([1 + 1j, -1 + 1j, 1 - 1j, -1 - 1j, 0 + 0j])
        i, q = sign_bits_iq(values)
        assert list(i) == [1, -1, 1, -1, 1]
        assert list(q) == [1, 1, -1, -1, 1]

    def test_sign_bits_iq_dtype(self, rng):
        values = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        i, q = sign_bits_iq(values)
        assert i.dtype == np.int8
        assert q.dtype == np.int8
        assert set(np.unique(i)) <= {-1, 1}
