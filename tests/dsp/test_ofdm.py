"""Tests for the generic OFDM engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.ofdm import (
    OfdmParameters,
    ofdm_demodulate,
    ofdm_modulate,
    ofdm_symbol_stream,
    subcarriers_to_fft_bins,
)
from repro.errors import ConfigurationError, StreamError

WIFI = OfdmParameters(fft_size=64, cp_length=16, sample_rate=20e6)
WIMAX = OfdmParameters(fft_size=1024, cp_length=128, sample_rate=11.4e6)


class TestOfdmParameters:
    def test_symbol_length(self):
        assert WIFI.symbol_length == 80
        assert WIMAX.symbol_length == 1152

    def test_symbol_duration(self):
        assert WIFI.symbol_duration == pytest.approx(4e-6)

    def test_subcarrier_spacing(self):
        assert WIFI.subcarrier_spacing == pytest.approx(312_500.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            OfdmParameters(fft_size=60, cp_length=4, sample_rate=1e6)

    def test_rejects_cp_too_long(self):
        with pytest.raises(ConfigurationError):
            OfdmParameters(fft_size=64, cp_length=64, sample_rate=1e6)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            OfdmParameters(fft_size=64, cp_length=16, sample_rate=0)


class TestBinMapping:
    def test_positive_carriers(self):
        bins = subcarriers_to_fft_bins(np.array([1, 2, 26]), 64)
        assert list(bins) == [1, 2, 26]

    def test_negative_carriers_wrap(self):
        bins = subcarriers_to_fft_bins(np.array([-1, -26]), 64)
        assert list(bins) == [63, 38]

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            subcarriers_to_fft_bins(np.array([32]), 64)
        with pytest.raises(ConfigurationError):
            subcarriers_to_fft_bins(np.array([-33]), 64)


class TestModulateDemodulate:
    def test_roundtrip(self, rng):
        carriers = np.array([k for k in range(-26, 27) if k != 0])
        values = rng.standard_normal(52) + 1j * rng.standard_normal(52)
        symbol = ofdm_modulate(WIFI, carriers, values)
        assert symbol.size == WIFI.symbol_length
        back = ofdm_demodulate(WIFI, symbol, carriers)
        assert np.allclose(back, values)

    def test_cyclic_prefix_is_tail_copy(self, rng):
        carriers = np.arange(1, 27)
        values = rng.standard_normal(26) + 0j
        symbol = ofdm_modulate(WIFI, carriers, values)
        assert np.allclose(symbol[:16], symbol[-16:])

    def test_mean_power_near_unity(self, rng):
        carriers = np.array([k for k in range(-26, 27) if k != 0])
        powers = []
        for _ in range(50):
            values = np.exp(2j * np.pi * rng.random(52))
            symbol = ofdm_modulate(WIFI, carriers, values)
            powers.append(np.mean(np.abs(symbol[16:]) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_duplicate_carriers_rejected(self):
        with pytest.raises(StreamError):
            ofdm_modulate(WIFI, np.array([1, 1]), np.array([1 + 0j, 1 + 0j]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(StreamError):
            ofdm_modulate(WIFI, np.array([1, 2]), np.array([1 + 0j]))

    def test_empty_carriers_rejected(self):
        with pytest.raises(StreamError):
            ofdm_modulate(WIFI, np.array([], dtype=int), np.array([], dtype=complex))

    def test_demodulate_wrong_length_rejected(self):
        with pytest.raises(StreamError):
            ofdm_demodulate(WIFI, np.zeros(10, dtype=complex), np.array([1]))

    def test_large_fft_roundtrip(self, rng):
        carriers = np.arange(-400, 401)
        carriers = carriers[carriers != 0]
        values = (1 - 2 * rng.integers(0, 2, carriers.size)).astype(np.complex128)
        symbol = ofdm_modulate(WIMAX, carriers, values)
        back = ofdm_demodulate(WIMAX, symbol, carriers)
        assert np.allclose(back, values)


class TestSymbolStream:
    def test_stream_length(self, rng):
        carriers = np.arange(1, 9)
        rows = rng.standard_normal((5, 8)) + 0j
        stream = ofdm_symbol_stream(WIFI, carriers, rows)
        assert stream.size == 5 * WIFI.symbol_length

    def test_each_symbol_independent(self, rng):
        carriers = np.arange(1, 9)
        rows = rng.standard_normal((3, 8)) + 0j
        stream = ofdm_symbol_stream(WIFI, carriers, rows)
        for n, row in enumerate(rows):
            single = ofdm_modulate(WIFI, carriers, row)
            chunk = stream[n * 80:(n + 1) * 80]
            assert np.allclose(chunk, single)

    def test_rejects_1d(self):
        with pytest.raises(StreamError):
            ofdm_symbol_stream(WIFI, np.arange(1, 3), np.zeros(2, dtype=complex))

    def test_empty_rows(self):
        out = ofdm_symbol_stream(WIFI, np.arange(1, 3),
                                 np.zeros((0, 2), dtype=complex))
        assert out.size == 0
