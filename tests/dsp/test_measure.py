"""Tests for repro.dsp.measure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.measure import (
    estimate_snr_db,
    frequency_offset_estimate,
    normalized_cross_correlation,
    papr_db,
    sliding_energy,
)
from repro.errors import StreamError


class TestSlidingEnergy:
    def test_matches_bruteforce(self, rng):
        x = rng.standard_normal(40) + 1j * rng.standard_normal(40)
        out = sliding_energy(x, 8)
        for n in range(40):
            expected = np.sum(np.abs(x[max(0, n - 7):n + 1]) ** 2)
            assert out[n] == pytest.approx(expected)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_energy(np.ones(4), 0)


class TestEstimateSnr:
    def test_recovers_known_snr(self, rng):
        noise_ref = rng.standard_normal(200000) + 1j * rng.standard_normal(200000)
        noise_ref /= np.sqrt(2)
        signal = np.exp(2j * np.pi * 0.1 * np.arange(200000))
        for snr_db in (0.0, 10.0, 20.0):
            amp = 10 ** (snr_db / 20)
            rx = amp * signal + (rng.standard_normal(200000)
                                 + 1j * rng.standard_normal(200000)) / np.sqrt(2)
            est = estimate_snr_db(rx, noise_ref)
            assert est == pytest.approx(snr_db, abs=0.3)

    def test_noise_only_gives_negative_infinity_or_low(self, rng):
        noise = (rng.standard_normal(50000) + 1j * rng.standard_normal(50000))
        ref = (rng.standard_normal(50000) + 1j * rng.standard_normal(50000))
        est = estimate_snr_db(noise, ref)
        assert est < -10 or est == float("-inf")

    def test_rejects_zero_noise(self):
        with pytest.raises(StreamError):
            estimate_snr_db(np.ones(10, dtype=complex), np.zeros(10, dtype=complex))


class TestPapr:
    def test_constant_envelope_is_zero_db(self):
        tone = np.exp(2j * np.pi * 0.01 * np.arange(1000))
        assert papr_db(tone) == pytest.approx(0.0, abs=1e-9)

    def test_single_spike(self):
        x = np.ones(100, dtype=complex)
        x[50] = 10.0
        # peak 100, mean (99 + 100)/100 = 1.99
        assert papr_db(x) == pytest.approx(10 * np.log10(100 / 1.99), abs=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(StreamError):
            papr_db(np.zeros(0, dtype=complex))

    def test_rejects_all_zero(self):
        with pytest.raises(StreamError):
            papr_db(np.zeros(8, dtype=complex))

    def test_ofdm_has_high_papr(self, rng):
        from repro.phy.wifi.frame import build_data_field, WifiFrameConfig

        psdu = rng.integers(0, 256, 200, dtype=np.uint8).tobytes()
        wave = build_data_field(psdu, WifiFrameConfig())
        assert papr_db(wave) > 6.0


class TestNormalizedCrossCorrelation:
    def test_perfect_match_peaks_at_one(self, rng):
        template = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        signal = np.concatenate([np.zeros(50, dtype=complex), template,
                                 np.zeros(50, dtype=complex)])
        corr = normalized_cross_correlation(signal, template)
        peak_idx = int(np.argmax(corr))
        # Peak where the template's last sample arrives: 50 + 31
        assert peak_idx == 81
        assert corr[peak_idx] == pytest.approx(1.0)

    def test_phase_invariance(self, rng):
        template = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        signal = np.concatenate([np.zeros(20, dtype=complex),
                                 template * np.exp(1j * 1.23),
                                 np.zeros(20, dtype=complex)])
        corr = normalized_cross_correlation(signal, template)
        assert np.max(corr) == pytest.approx(1.0)

    def test_range_bounded(self, rng):
        template = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        signal = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        corr = normalized_cross_correlation(signal, template)
        assert np.all(corr >= 0.0)
        assert np.all(corr <= 1.0)

    def test_rejects_short_signal(self, rng):
        with pytest.raises(StreamError):
            normalized_cross_correlation(np.zeros(4, dtype=complex),
                                         np.ones(8, dtype=complex))

    def test_rejects_zero_template(self):
        with pytest.raises(StreamError):
            normalized_cross_correlation(np.ones(16, dtype=complex),
                                         np.zeros(8, dtype=complex))


class TestFrequencyOffset:
    def test_recovers_cfo_from_repeated_preamble(self):
        rate = 20e6
        period = 64
        base = np.exp(2j * np.pi * 0.031 * np.arange(period))
        repeated = np.tile(base, 4)
        cfo = 50e3
        t = np.arange(repeated.size) / rate
        rx = repeated * np.exp(2j * np.pi * cfo * t)
        est = frequency_offset_estimate(rx, period, rate)
        assert est == pytest.approx(cfo, rel=0.01)

    def test_zero_offset(self):
        base = np.exp(2j * np.pi * 0.1 * np.arange(32))
        rx = np.tile(base, 3)
        assert frequency_offset_estimate(rx, 32, 20e6) == pytest.approx(0.0, abs=1.0)

    def test_rejects_too_short(self):
        with pytest.raises(StreamError):
            frequency_offset_estimate(np.ones(10, dtype=complex), 8, 20e6)
