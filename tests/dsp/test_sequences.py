"""Tests for LFSR/PN sequence generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.sequences import Lfsr, pn_sequence, random_bits
from repro.errors import ConfigurationError


class TestLfsr:
    def test_wifi_scrambler_polynomial_period(self):
        # x^7 + x^4 + 1 is maximal length: period 127.
        lfsr = Lfsr(taps=(7, 4), state=1, n_bits=7)
        assert lfsr.period() == 127

    def test_default_pn_polynomial_period(self):
        # x^11 + x^9 + 1 is maximal length: period 2047.
        lfsr = Lfsr(taps=(11, 9), state=1, n_bits=11)
        assert lfsr.period() == 2047

    def test_bits_output_binary(self):
        lfsr = Lfsr(taps=(7, 4), state=0x5A, n_bits=7)
        bits = lfsr.bits(200)
        assert set(np.unique(bits)) <= {0, 1}

    def test_deterministic_for_same_seed(self):
        a = Lfsr(taps=(7, 4), state=93, n_bits=7).bits(64)
        b = Lfsr(taps=(7, 4), state=93, n_bits=7).bits(64)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = Lfsr(taps=(7, 4), state=1, n_bits=7).bits(64)
        b = Lfsr(taps=(7, 4), state=2, n_bits=7).bits(64)
        assert not np.array_equal(a, b)

    def test_rejects_zero_state(self):
        with pytest.raises(ConfigurationError):
            Lfsr(taps=(7, 4), state=0, n_bits=7)

    def test_rejects_state_too_wide(self):
        with pytest.raises(ConfigurationError):
            Lfsr(taps=(7, 4), state=0x80, n_bits=7)

    def test_rejects_bad_taps(self):
        with pytest.raises(ConfigurationError):
            Lfsr(taps=(8,), state=1, n_bits=7)
        with pytest.raises(ConfigurationError):
            Lfsr(taps=(), state=1, n_bits=7)

    def test_negative_count_rejected(self):
        lfsr = Lfsr(taps=(7, 4), state=1, n_bits=7)
        with pytest.raises(ValueError):
            lfsr.bits(-1)

    def test_known_first_bits_of_scrambler(self):
        # IEEE 802.11 scrambler seeded all-ones starts 0000111011110010...
        lfsr = Lfsr(taps=(7, 4), state=0x7F, n_bits=7)
        first = "".join(str(b) for b in lfsr.bits(16))
        assert first == "0000111011110010"


class TestPnSequence:
    def test_bipolar_values(self):
        seq = pn_sequence(284, seed=11)
        assert set(np.unique(seq)) <= {-1, 1}

    def test_length(self):
        assert pn_sequence(100, seed=5).size == 100

    def test_roughly_balanced(self):
        seq = pn_sequence(2000, seed=77)
        assert abs(int(np.sum(seq))) < 200

    def test_distinct_seeds_give_distinct_sequences(self):
        a = pn_sequence(284, seed=11)
        b = pn_sequence(284, seed=48)
        assert not np.array_equal(a, b)

    def test_low_cross_correlation_between_seeds(self):
        a = pn_sequence(1000, seed=11).astype(float)
        b = pn_sequence(1000, seed=48).astype(float)
        rho = abs(np.dot(a, b)) / 1000
        assert rho < 0.15


class TestRandomBits:
    def test_length_and_alphabet(self, rng):
        bits = random_bits(1000, rng)
        assert bits.size == 1000
        assert set(np.unique(bits)) <= {0, 1}

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            random_bits(-1, rng)
