"""Tests for spectral measurements and the framework's RF claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.dsp.spectrum import (
    band_power,
    occupied_bandwidth,
    spectral_flatness_db,
    welch_psd,
)
from repro.errors import ConfigurationError, StreamError


class TestWelchPsd:
    def test_tone_peaks_at_its_frequency(self, rng):
        rate = 25e6
        tone = np.exp(2j * np.pi * 3e6 * np.arange(8192) / rate)
        freqs, psd = welch_psd(tone, rate)
        assert freqs[np.argmax(psd)] == pytest.approx(3e6, abs=rate / 256)

    def test_parseval_total_power(self, rng):
        rate = 25e6
        noise = (rng.standard_normal(16384)
                 + 1j * rng.standard_normal(16384)) / np.sqrt(2)
        freqs, psd = welch_psd(noise, rate)
        bin_width = rate / psd.size
        assert float(np.sum(psd) * bin_width) == pytest.approx(1.0, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(StreamError):
            welch_psd(np.ones(10, dtype=complex), 25e6, segment=256)
        with pytest.raises(ConfigurationError):
            welch_psd(np.ones(1000, dtype=complex), -1.0)


class TestOccupiedBandwidth:
    def test_white_noise_fills_the_band(self, rng):
        rate = 25e6
        noise = (rng.standard_normal(32768)
                 + 1j * rng.standard_normal(32768)) / np.sqrt(2)
        bw = occupied_bandwidth(noise, rate, fraction=0.99)
        assert bw > 0.9 * rate

    def test_narrow_tone_is_narrow(self):
        rate = 25e6
        tone = np.exp(2j * np.pi * 1e6 * np.arange(32768) / rate)
        bw = occupied_bandwidth(tone, rate, fraction=0.99)
        assert bw < 0.05 * rate

    def test_fraction_validated(self, rng):
        with pytest.raises(ConfigurationError):
            occupied_bandwidth(np.ones(1000, dtype=complex), 25e6,
                               fraction=1.5)


class TestFrameworkRfClaims:
    def test_wgn_jam_covers_25mhz(self, rng):
        # Paper §2.4: "a pseudorandom 25 MHz White Gaussian Noise
        # signal" — the WGN preset must fill the whole data path band.
        from repro.hw.tx_controller import TransmitController

        tx = TransmitController(uptime_samples=40_000)
        interval = tx.schedule([0])[0]
        _off, wave = tx.synthesize(interval, 0, 40_000)
        bw = occupied_bandwidth(wave, units.BASEBAND_RATE, fraction=0.99)
        assert bw > 0.9 * units.BASEBAND_RATE
        assert spectral_flatness_db(wave, units.BASEBAND_RATE) < 4.0

    def test_wifi_ofdm_occupies_standard_band(self, rng):
        # 52 carriers at 312.5 kHz spacing ~ 16.6 MHz of a 20 MHz chan.
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu

        psdu = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu, WifiFrameConfig())
        bw = occupied_bandwidth(wave[320:], 20e6, fraction=0.98)
        assert 14e6 < bw < 18.5e6

    def test_wifi_guard_bands_quiet(self, rng):
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu

        psdu = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu, WifiFrameConfig())
        in_band = band_power(wave, 20e6, -8e6, 8e6)
        edge = band_power(wave, 20e6, 9e6, 10e6)
        assert in_band > 100 * edge

    def test_wimax_guard_bands_quiet(self, rng):
        from repro.phy.wimax.frame import build_downlink_frame
        from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig

        frame = build_downlink_frame(WimaxConfig(), rng)
        dl = frame[:20_000]
        # 86+ guard carriers per edge at ~11.1 kHz spacing: the outer
        # ~0.9 MHz on each side is silent.
        in_band = band_power(dl, WIMAX_SAMPLE_RATE, -4e6, 4e6)
        edge = band_power(dl, WIMAX_SAMPLE_RATE, 5.0e6, 5.6e6)
        assert in_band > 100 * edge

    def test_zigbee_energy_near_carrier(self, rng):
        from repro.phy.zigbee.frame import preamble_waveform
        from repro.phy.zigbee.params import ZIGBEE_SAMPLE_RATE

        wave = preamble_waveform()
        bw = occupied_bandwidth(wave, ZIGBEE_SAMPLE_RATE, fraction=0.95)
        # O-QPSK at 2 Mchip/s: main lobe ~2-3 MHz.
        assert bw < 3.5e6
