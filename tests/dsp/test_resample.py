"""Tests for repro.dsp.resample — the 20/25 MSPS machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.resample import RationalResampler, rate_ratio, resample
from repro.errors import ConfigurationError


class TestRateRatio:
    def test_twenty_to_twenty_five(self):
        ratio = rate_ratio(20e6, 25e6)
        assert (ratio.numerator, ratio.denominator) == (5, 4)

    def test_wimax_to_jammer(self):
        ratio = rate_ratio(11.4e6, 25e6)
        assert (ratio.numerator, ratio.denominator) == (125, 57)

    def test_identity(self):
        ratio = rate_ratio(25e6, 25e6)
        assert float(ratio) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            rate_ratio(0.0, 25e6)

    def test_rejects_irrational_within_limit(self):
        with pytest.raises(ConfigurationError):
            rate_ratio(1.0, np.pi, max_denominator=10)


class TestRationalResampler:
    def test_factors_reduced(self):
        r = RationalResampler(10, 8)
        assert (r.up, r.down) == (5, 4)

    def test_rejects_zero_factor(self):
        with pytest.raises(ConfigurationError):
            RationalResampler(0, 1)

    def test_output_length(self):
        r = RationalResampler(5, 4)
        assert r.output_length(160) == 200

    def test_identity_is_copy(self, rng):
        r = RationalResampler(3, 3)
        x = rng.standard_normal(64) + 0j
        out = r.process(x)
        assert np.allclose(out, x)
        out[0] = 99
        assert x[0] != 99

    def test_empty_input(self):
        assert RationalResampler(5, 4).process(np.zeros(0)).size == 0

    def test_tone_frequency_preserved(self):
        # A 2 MHz tone at 20 MSPS must still be 2 MHz at 25 MSPS.
        t20 = np.arange(2000) / 20e6
        tone = np.exp(2j * np.pi * 2e6 * t20)
        out = RationalResampler(5, 4).process(tone)
        spectrum = np.abs(np.fft.fft(out))
        freqs = np.fft.fftfreq(out.size, d=1 / 25e6)
        peak_freq = abs(freqs[np.argmax(spectrum)])
        assert peak_freq == pytest.approx(2e6, rel=0.01)


class TestResampleConvenience:
    def test_length_scaling_20_to_25(self, rng):
        x = rng.standard_normal(160) + 0j
        out = resample(x, 20e6, 25e6)
        assert out.size == 200

    def test_identical_rates_returns_copy(self, rng):
        x = rng.standard_normal(32) + 0j
        out = resample(x, 25e6, 25e6)
        assert np.allclose(out, x)
        assert out is not x

    def test_power_roughly_preserved(self, rng):
        x = rng.standard_normal(4000) + 1j * rng.standard_normal(4000)
        out = resample(x, 20e6, 25e6)
        p_in = np.mean(np.abs(x) ** 2)
        p_out = np.mean(np.abs(out) ** 2)
        assert p_out == pytest.approx(p_in, rel=0.1)

    def test_downsample(self, rng):
        x = rng.standard_normal(250) + 0j
        out = resample(x, 25e6, 20e6)
        assert out.size == 200

    def test_long_preamble_becomes_80_samples(self):
        from repro.phy.wifi.preamble import long_training_symbol

        lts = long_training_symbol()
        at25 = resample(lts, 20e6, 25e6)
        # 64 samples at 20 MSPS (3.2 us) -> 80 samples at 25 MSPS.
        assert at25.size == 80
