"""Tests for the multipath channel and its interaction with both sides."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import (
    TappedDelayLine,
    indoor_rayleigh,
    line_of_sight,
    two_ray,
)
from repro.errors import ConfigurationError


class TestTappedDelayLine:
    def test_line_of_sight_is_identity(self, rng):
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert np.allclose(line_of_sight().apply(x), x)

    def test_echo_adds_delayed_copy(self):
        tdl = TappedDelayLine(delays=(0, 3), gains=(1.0, 0.5))
        x = np.zeros(10, dtype=complex)
        x[0] = 1.0
        out = tdl.apply(x)
        assert out[0] == 1.0
        assert out[3] == 0.5

    def test_normalized_unit_power(self, rng):
        tdl = two_ray(delay_samples=4, echo_db=-3.0)
        power = np.sum(np.abs(tdl.impulse_response) ** 2)
        assert power == pytest.approx(1.0)

    def test_delay_spread(self):
        tdl = TappedDelayLine(delays=(0, 2, 9), gains=(1, 0.5, 0.1))
        assert tdl.delay_spread == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TappedDelayLine(delays=(), gains=())
        with pytest.raises(ConfigurationError):
            TappedDelayLine(delays=(0, 0), gains=(1, 1))
        with pytest.raises(ConfigurationError):
            TappedDelayLine(delays=(-1,), gains=(1,))
        with pytest.raises(ConfigurationError):
            two_ray(delay_samples=0)

    def test_rayleigh_profile_shape(self, rng):
        tdl = indoor_rayleigh(rng, n_taps=4, tap_spacing=2)
        assert tdl.delays == (0, 2, 4, 6)
        assert np.sum(np.abs(tdl.impulse_response) ** 2) == pytest.approx(1.0)


class TestOfdmUnderMultipath:
    def test_receiver_equalizes_within_cp(self, rng):
        # Delay spread inside the 16-sample cyclic prefix: the
        # per-subcarrier equalizer absorbs it completely.
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
        from repro.phy.wifi.params import WifiRate
        from repro.phy.wifi.receiver import WifiReceiver

        psdu = rng.integers(0, 256, 150, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_24))
        channel = two_ray(delay_samples=6, echo_db=-4.0)
        rx = channel.apply(wave)
        rx += 0.005 * (rng.standard_normal(rx.size)
                       + 1j * rng.standard_normal(rx.size))
        result = WifiReceiver().receive(rx)
        assert result.psdu == psdu

    def test_receiver_survives_indoor_rayleigh(self, rng):
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
        from repro.phy.wifi.params import WifiRate
        from repro.phy.wifi.receiver import WifiReceiver

        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_12))
        decoded = 0
        trials = 10
        for k in range(trials):
            channel = indoor_rayleigh(np.random.default_rng(100 + k))
            rx = channel.apply(wave)
            rx += 0.005 * (rng.standard_normal(rx.size)
                           + 1j * rng.standard_normal(rx.size))
            try:
                if WifiReceiver().receive(rx).psdu == psdu:
                    decoded += 1
            except Exception:
                pass
        # Most static indoor realizations decode at QPSK (deep fades
        # on individual carriers occasionally break a frame).
        assert decoded >= trials // 2


class TestJammerUnderMultipath:
    def test_correlator_detects_through_two_ray(self, rng):
        from repro import units
        from repro.channel.combining import Transmission, mix_at_port
        from repro.core.coeffs import wifi_short_preamble_template
        from repro.hw.cross_correlator import (
            CrossCorrelator,
            quantize_coefficients,
        )
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
        from repro.phy.wifi.params import WIFI_SAMPLE_RATE

        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu, WifiFrameConfig())
        channel = two_ray(delay_samples=5, echo_db=-5.0)
        faded = channel.apply(wave)
        rx = mix_at_port(
            [Transmission(faded, WIFI_SAMPLE_RATE, 40e-6,
                          power=units.db_to_linear(15.0) * 1e-4)],
            out_rate=units.BASEBAND_RATE, duration=300e-6,
            noise_power=1e-4, rng=rng)
        ci, cq = quantize_coefficients(wifi_short_preamble_template())
        corr = CrossCorrelator(ci, cq, threshold=22_000)
        assert corr.process(rx).any()
