"""Tests for the channel package: AWGN, attenuators, splitter, mixing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.channel.attenuator import Attenuator, VariableAttenuator
from repro.channel.awgn import AwgnChannel, awgn
from repro.channel.combining import Transmission, mix_at_port
from repro.channel.splitter import PAPER_TABLE1_DB, FivePortNetwork
from repro.errors import ConfigurationError


class TestAwgn:
    def test_power_calibrated(self, rng):
        noise = awgn(200_000, 2.5, rng)
        assert units.signal_power(noise) == pytest.approx(2.5, rel=0.02)

    def test_zero_power_is_silence(self, rng):
        assert not awgn(100, 0.0, rng).any()

    def test_rejects_negative(self, rng):
        with pytest.raises(ConfigurationError):
            awgn(10, -1.0, rng)
        with pytest.raises(ConfigurationError):
            awgn(-1, 1.0, rng)

    def test_channel_snr_calibration(self, rng):
        chan = AwgnChannel(noise_power=1.0, seed=3)
        signal = np.exp(2j * np.pi * 0.05 * np.arange(100_000))
        rx = chan.transmit_at_snr(signal, snr_db=7.0)
        measured = units.signal_power(rx)
        # total power = signal + noise = 10^0.7 + 1
        assert measured == pytest.approx(units.db_to_linear(7.0) + 1.0, rel=0.03)

    def test_noise_only_segment(self):
        chan = AwgnChannel(noise_power=0.5, seed=1)
        seg = chan.noise_only(100_000)
        assert units.signal_power(seg) == pytest.approx(0.5, rel=0.03)

    def test_reproducible_by_seed(self):
        a = AwgnChannel(seed=42).noise_only(100)
        b = AwgnChannel(seed=42).noise_only(100)
        assert np.array_equal(a, b)


class TestAttenuators:
    def test_twenty_db_pad(self):
        pad = Attenuator(20.0)
        x = np.ones(10, dtype=complex)
        out = pad.apply(x)
        assert units.signal_power(out) == pytest.approx(0.01)

    def test_zero_loss_identity(self, rng):
        x = rng.standard_normal(16) + 0j
        assert np.allclose(Attenuator(0.0).apply(x), x)

    def test_rejects_gain(self):
        with pytest.raises(ConfigurationError):
            Attenuator(-3.0)

    def test_variable_snaps_to_step(self):
        var = VariableAttenuator(step_db=0.5)
        var.set_loss(10.3)
        assert var.loss_db == pytest.approx(10.5)

    def test_variable_limits(self):
        var = VariableAttenuator(max_db=60.0)
        with pytest.raises(ConfigurationError):
            var.set_loss(61.0)
        with pytest.raises(ConfigurationError):
            var.set_loss(-1.0)


class TestFivePortNetwork:
    def test_paper_table_values(self):
        net = FivePortNetwork()
        assert net.loss_db(1, 2) == pytest.approx(-51.0)
        assert net.loss_db(4, 1) == pytest.approx(-38.4)
        assert net.loss_db(2, 5) == pytest.approx(-32.8)

    def test_jammer_ports_isolated(self):
        net = FivePortNetwork()
        assert net.loss_db(4, 5) is None
        assert net.loss_db(5, 4) is None
        assert net.path_gain(4, 5) == 0.0

    def test_propagate_scales_amplitude(self):
        net = FivePortNetwork()
        x = np.ones(100, dtype=complex)
        out = net.propagate(x, 1, 3)
        assert units.signal_power_db(out) == pytest.approx(-25.2)

    def test_deliver_superposes(self):
        net = FivePortNetwork()
        a = np.ones(10, dtype=complex)
        b = np.ones(10, dtype=complex) * 1j
        out = net.deliver({2: a, 4: b}, dst=1, n_samples=10)
        expected = (net.propagate(a, 2, 1) + net.propagate(b, 4, 1))
        assert np.allclose(out, expected)

    def test_deliver_ignores_own_injection(self):
        net = FivePortNetwork()
        out = net.deliver({1: np.ones(4, dtype=complex)}, dst=1, n_samples=4)
        assert not out.any()

    def test_vna_recovers_table(self):
        net = FivePortNetwork()
        measured = net.vna_characterize()
        for (src, dst), loss in PAPER_TABLE1_DB.items():
            if loss is None:
                assert measured[(src, dst)] is None
            else:
                assert measured[(src, dst)] == pytest.approx(loss, abs=0.01)

    def test_self_loss_undefined(self):
        with pytest.raises(ConfigurationError):
            FivePortNetwork().loss_db(1, 1)

    def test_rejects_gain_in_table(self):
        with pytest.raises(ConfigurationError):
            FivePortNetwork({(1, 2): 3.0})

    def test_rejects_bad_port(self):
        with pytest.raises(ConfigurationError):
            FivePortNetwork().loss_db(0, 1)
        with pytest.raises(ConfigurationError):
            FivePortNetwork().loss_db(1, 6)


class TestMixAtPort:
    def test_single_transmission_power(self, rng):
        sig = np.exp(2j * np.pi * 0.1 * np.arange(50_000))
        out = mix_at_port(
            [Transmission(sig, 25e6, start_time=0.0, power=4.0)],
            out_rate=25e6, duration=50_000 / 25e6,
        )
        assert units.signal_power(out) == pytest.approx(4.0, rel=0.02)

    def test_start_time_offsets(self, rng):
        sig = np.ones(100, dtype=complex)
        out = mix_at_port(
            [Transmission(sig, 25e6, start_time=4e-6, power=1.0)],
            out_rate=25e6, duration=12e-6,
        )
        assert not out[:100].any()
        assert np.all(np.abs(out[100:200]) > 0)

    def test_rate_conversion_applied(self):
        sig = np.ones(160, dtype=complex)  # 8 us at 20 MSPS
        out = mix_at_port(
            [Transmission(sig, 20e6, start_time=0.0, power=1.0)],
            out_rate=25e6, duration=10e-6,
        )
        # Occupies ~200 samples at 25 MSPS.
        energy = np.abs(out) > 0.1
        assert 180 < int(np.sum(energy)) <= 210

    def test_noise_floor(self, rng):
        out = mix_at_port([], out_rate=25e6, duration=4e-5,
                          noise_power=0.5, rng=rng)
        assert units.signal_power(out) == pytest.approx(0.5, rel=0.1)

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            mix_at_port([], out_rate=25e6, duration=1e-5, noise_power=1.0)

    def test_superposition(self, rng):
        a = np.ones(100, dtype=complex)
        out = mix_at_port(
            [Transmission(a, 25e6, 0.0, power=1.0),
             Transmission(a, 25e6, 0.0, power=1.0)],
            out_rate=25e6, duration=4e-6,
        )
        # Two coherent unit-power copies: amplitude doubles.
        assert units.signal_power(out[:100]) == pytest.approx(4.0, rel=0.01)

    def test_transmission_validation(self):
        with pytest.raises(ConfigurationError):
            Transmission(np.ones(4, dtype=complex), -1.0)
        with pytest.raises(ConfigurationError):
            Transmission(np.ones(4, dtype=complex), 25e6, start_time=-1.0)
        with pytest.raises(ConfigurationError):
            Transmission(np.ones(4, dtype=complex), 25e6, power=-1.0)
