"""Tests for the composite custom DSP core and its register plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.hw import register_map as regmap
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.dsp_core import CustomDspCore
from repro.hw.registers import UserRegisterBus, pack_signed_fields
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform


@pytest.fixture
def template(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, 64))


def program_template(core: CustomDspCore, template: np.ndarray) -> None:
    ci, cq = quantize_coefficients(template)
    for off, word in enumerate(pack_signed_fields([int(c) for c in ci], 3)):
        core.bus.write(regmap.REG_COEFF_I_BASE + off, word)
    for off, word in enumerate(pack_signed_fields([int(c) for c in cq], 3)):
        core.bus.write(regmap.REG_COEFF_Q_BASE + off, word)


def make_core(template: np.ndarray, threshold: int = 30_000,
              uptime: int = 100, waveform: JamWaveform = JamWaveform.WGN,
              stages: int = regmap.TRIGGER_MODE_BIT * 0) -> CustomDspCore:
    core = CustomDspCore()
    program_template(core, template)
    core.bus.write(regmap.REG_XCORR_THRESHOLD, threshold)
    # Single XCORR stage.
    core.bus.write(regmap.REG_TRIGGER_CONFIG,
                   (1 << regmap.STAGE_ENABLE_SHIFT) | int(TriggerSource.XCORR))
    core.bus.write(regmap.REG_JAM_UPTIME, uptime)
    core.bus.write(regmap.REG_JAM_WAVEFORM, int(waveform))
    core.bus.write(regmap.REG_CONTROL_FLAGS, regmap.FLAG_JAMMER_ENABLE)
    return core


class TestRegisterPlane:
    def test_coefficients_land_in_correlator(self, template):
        core = CustomDspCore()
        program_template(core, template)
        ci, cq = quantize_coefficients(template)
        got_i, got_q = core.correlator.coefficients
        assert np.array_equal(got_i, ci)
        assert np.array_equal(got_q, cq)

    def test_threshold_register(self, template):
        core = CustomDspCore()
        core.bus.write(regmap.REG_XCORR_THRESHOLD, 12345)
        assert core.correlator.threshold == 12345

    def test_energy_thresholds(self):
        core = CustomDspCore()
        core.bus.write(regmap.REG_ENERGY_THRESHOLD_HIGH,
                       regmap.encode_energy_threshold_db(12.5))
        core.bus.write(regmap.REG_ENERGY_THRESHOLD_LOW,
                       regmap.encode_energy_threshold_db(7.0))
        assert core.energy.threshold_high_db == pytest.approx(12.5)
        assert core.energy.threshold_low_db == pytest.approx(7.0)

    def test_trigger_config_stages(self):
        core = CustomDspCore()
        word = ((1 << regmap.STAGE_ENABLE_SHIFT)
                | (1 << (regmap.STAGE_ENABLE_SHIFT + 1))
                | int(TriggerSource.ENERGY_HIGH)
                | (int(TriggerSource.XCORR) << regmap.STAGE_SOURCE_BITS))
        core.bus.write(regmap.REG_TRIGGER_WINDOW, 50)
        core.bus.write(regmap.REG_TRIGGER_CONFIG, word)
        assert [s.source for s in core.fsm.stages] == [
            TriggerSource.ENERGY_HIGH, TriggerSource.XCORR]

    def test_trigger_any_mode_bit(self):
        core = CustomDspCore()
        word = ((1 << regmap.STAGE_ENABLE_SHIFT)
                | (1 << (regmap.STAGE_ENABLE_SHIFT + 1))
                | regmap.TRIGGER_MODE_BIT)
        core.bus.write(regmap.REG_TRIGGER_CONFIG, word)
        assert core.fsm.mode is TriggerMode.ANY

    def test_jammer_settings(self):
        core = CustomDspCore()
        core.bus.write(regmap.REG_JAM_DELAY, 77)
        core.bus.write(regmap.REG_JAM_UPTIME, 2500)
        core.bus.write(regmap.REG_REPLAY_LENGTH, 256)
        assert core.tx.delay_samples == 77
        assert core.tx.uptime_samples == 2500
        assert core.tx.replay_length == 256

    def test_control_flags(self):
        core = CustomDspCore()
        core.bus.write(regmap.REG_CONTROL_FLAGS,
                       regmap.FLAG_JAMMER_ENABLE | (0xAB << regmap.ANTENNA_SHIFT))
        assert core.jammer_enabled
        assert core.antenna_bits == 0xAB
        core.bus.write(regmap.REG_CONTROL_FLAGS, 0)
        assert not core.jammer_enabled

    def test_registers_used_is_24(self):
        assert regmap.REGISTERS_USED == 24
        assert regmap.REG_REPLAY_LENGTH == 23


class TestDataPath:
    def test_detection_and_jam_pipeline(self, rng, template):
        core = make_core(template)
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        out = core.process(rx)
        xcorr = [d for d in out.detections if d.source is TriggerSource.XCORR]
        assert len(xcorr) == 1
        assert xcorr[0].time == 563
        assert len(out.jams) == 1
        assert out.jams[0].start == 565  # detection + 2 samples (80 ns)
        # TX waveform active only during the burst.
        assert np.all(out.tx[:565] == 0)
        assert np.any(np.abs(out.tx[565:665]) > 0)
        assert np.all(out.tx[665:] == 0)

    def test_chunked_equals_single_shot(self, rng, template):
        rx = awgn(3000, 1e-6, rng)
        rx[700:764] += template
        core_a = make_core(template)
        whole = core_a.process(rx)
        core_b = make_core(template)
        parts = [core_b.process(rx[i:i + 251]) for i in range(0, 3000, 251)]
        tx = np.concatenate([p.tx for p in parts])
        assert np.allclose(tx, whole.tx)
        jams = [j for p in parts for j in p.jams]
        assert [(j.start, j.end) for j in jams] == \
            [(j.start, j.end) for j in whole.jams]

    def test_jammer_disabled_produces_no_tx(self, rng, template):
        core = make_core(template)
        core.bus.write(regmap.REG_CONTROL_FLAGS, 0)  # disable
        rx = awgn(1000, 1e-6, rng)
        rx[300:364] += template
        out = core.process(rx)
        assert len(out.detections) >= 1  # detection still runs
        assert not out.jams
        assert np.all(out.tx == 0)

    def test_continuous_mode_transmits_always(self, rng, template):
        core = make_core(template)
        core.bus.write(regmap.REG_CONTROL_FLAGS,
                       regmap.FLAG_JAMMER_ENABLE | regmap.FLAG_CONTINUOUS)
        rx = awgn(1000, 1e-6, rng)
        out = core.process(rx)
        assert np.all(np.abs(out.tx) > 0)

    def test_detection_counters(self, rng, template):
        core = make_core(template)
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        rx[1500:1564] += template
        core.process(rx)
        assert core.detection_counts[TriggerSource.XCORR] == 2
        assert core.jam_count == 2

    def test_clock_advances(self, rng, template):
        core = make_core(template)
        core.process(awgn(123, 1.0, rng))
        core.process(awgn(77, 1.0, rng))
        assert core.clock == 200

    def test_reset_restores_cold_state(self, rng, template):
        core = make_core(template)
        core.process(awgn(500, 1e-6, rng))
        core.reset()
        assert core.clock == 0
        assert core.jam_count == 0
        assert core.detection_counts[TriggerSource.XCORR] == 0

    def test_empty_chunk(self, template):
        core = make_core(template)
        out = core.process(np.zeros(0, dtype=complex))
        assert out.tx.size == 0

    def test_replay_waveform_echoes_preamble(self, rng, template):
        core = make_core(template, waveform=JamWaveform.REPLAY, uptime=64)
        core.bus.write(regmap.REG_REPLAY_LENGTH, 64)
        rx = awgn(1000, 1e-9, rng)
        rx[300:364] += template * 0.5
        out = core.process(rx)
        assert len(out.jams) == 1
        burst = out.tx[out.jams[0].start:out.jams[0].end]
        # The replayed burst must correlate strongly with the preamble
        # it captured (quantization makes it inexact).
        captured = burst[:64]
        rho = np.abs(np.vdot(captured, template)) / (
            np.linalg.norm(captured) * np.linalg.norm(template))
        assert rho > 0.9
