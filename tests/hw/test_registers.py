"""Tests for the user register bus and field packing."""

from __future__ import annotations

import pytest

from repro.errors import RegisterError
from repro.hw import register_map as regmap
from repro.hw.registers import (
    NUM_REGISTERS,
    UserRegisterBus,
    pack_signed_fields,
    unpack_signed_fields,
)


class TestUserRegisterBus:
    def test_write_read_roundtrip(self):
        bus = UserRegisterBus()
        bus.write(7, 0xDEADBEEF)
        assert bus.read(7) == 0xDEADBEEF

    def test_initial_state_zero(self):
        bus = UserRegisterBus()
        assert all(bus.read(a) == 0 for a in range(NUM_REGISTERS))

    def test_rejects_out_of_range_address(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.write(NUM_REGISTERS, 1)
        with pytest.raises(RegisterError):
            bus.read(-1)

    def test_rejects_oversized_value(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.write(0, 1 << 32)
        with pytest.raises(RegisterError):
            bus.write(0, -1)

    def test_watcher_called_on_write(self):
        bus = UserRegisterBus()
        seen = []
        bus.watch(3, seen.append)
        bus.write(3, 42)
        bus.write(4, 43)  # different address: not seen
        assert seen == [42]

    def test_multiple_watchers(self):
        bus = UserRegisterBus()
        seen_a, seen_b = [], []
        bus.watch(1, seen_a.append)
        bus.watch(1, seen_b.append)
        bus.write(1, 5)
        assert seen_a == [5] and seen_b == [5]

    def test_write_count(self):
        bus = UserRegisterBus()
        for k in range(10):
            bus.write(k, k)
        assert bus.write_count == 10

    def test_watch_invalid_address(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.watch(300, lambda v: None)


class TestFieldPacking:
    def test_roundtrip_3bit(self):
        values = [3, -4, 0, 1, -1, 2, -2, -3, 3, 3, -4]
        words = pack_signed_fields(values, 3)
        back = unpack_signed_fields(words, 3, len(values))
        assert back == values

    def test_64_coefficients_need_7_words(self):
        words = pack_signed_fields([1] * 64, 3)
        assert len(words) == 7

    def test_words_fit_32_bits(self):
        words = pack_signed_fields([-4] * 64, 3)
        assert all(0 <= w <= 0xFFFFFFFF for w in words)

    def test_rejects_value_too_wide(self):
        with pytest.raises(RegisterError):
            pack_signed_fields([4], 3)
        with pytest.raises(RegisterError):
            pack_signed_fields([-5], 3)

    def test_rejects_bad_field_width(self):
        with pytest.raises(RegisterError):
            pack_signed_fields([0], 0)
        with pytest.raises(RegisterError):
            unpack_signed_fields([0], 33, 1)

    def test_unpack_insufficient_words(self):
        with pytest.raises(RegisterError):
            unpack_signed_fields([0], 3, 20)

    def test_roundtrip_various_widths(self):
        for bits in (2, 4, 5, 8, 16):
            lo = -(1 << (bits - 1))
            hi = (1 << (bits - 1)) - 1
            values = [lo, hi, 0, lo // 2, hi // 2]
            words = pack_signed_fields(values, bits)
            assert unpack_signed_fields(words, bits, len(values)) == values


class TestWritePolicy:
    """The bus rejects out-of-range words; it never masks (documented
    policy in UserRegisterBus.write)."""

    def test_word_mask_edge_accepted(self):
        bus = UserRegisterBus()
        bus.write(0, 0xFFFF_FFFF)
        assert bus.read(0) == 0xFFFF_FFFF

    def test_one_past_word_mask_rejected_not_masked(self):
        bus = UserRegisterBus()
        bus.write(0, 5)
        with pytest.raises(RegisterError):
            bus.write(0, 0x1_0000_0000)
        # The failed write must not have touched the register.
        assert bus.read(0) == 5

    def test_negative_rejected_not_wrapped(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.write(0, -1)
        assert bus.read(0) == 0


class TestJamUptimeClip:
    """The register map's 'clipped to 2^32 - 1' contract is code."""

    def test_in_range_passes_through(self):
        assert regmap.clip_jam_uptime(1) == 1
        assert regmap.clip_jam_uptime(12345) == 12345

    def test_upper_edge_kept(self):
        assert regmap.clip_jam_uptime(regmap.JAM_UPTIME_MAX) == \
            regmap.JAM_UPTIME_MAX

    def test_one_past_upper_edge_clipped(self):
        assert regmap.clip_jam_uptime(regmap.JAM_UPTIME_MAX + 1) == \
            regmap.JAM_UPTIME_MAX
        assert regmap.clip_jam_uptime(1 << 40) == regmap.JAM_UPTIME_MAX

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            regmap.clip_jam_uptime(-1)


class TestRegisterSpecTable:
    """The declarative field-width table backing repro-lint RJ002."""

    def test_covers_exactly_the_used_registers(self):
        assert sorted(regmap.SPEC_BY_ADDRESS) == \
            list(range(regmap.TOTAL_REGISTERS_USED))

    def test_max_values_fit_widths(self):
        for spec in regmap.REGISTER_SPECS:
            assert 0 < spec.max_value < (1 << spec.width) + 1
            assert spec.max_value <= 0xFFFF_FFFF

    def test_replay_length_tighter_than_width(self):
        spec = regmap.register_spec(regmap.REG_REPLAY_LENGTH)
        assert spec is not None
        assert spec.max_value == 512

    def test_unassigned_address_has_no_spec(self):
        assert regmap.register_spec(regmap.TOTAL_REGISTERS_USED) is None
        assert regmap.register_spec(200) is None

    def test_banked_extension_is_contiguous_with_the_core_map(self):
        # The paper's 24 registers stay untouched; the multi-standard
        # extension occupies the next 20 addresses exactly.
        assert regmap.REG_BANK_COUNT == regmap.REGISTERS_USED
        assert regmap.TOTAL_REGISTERS_USED == \
            regmap.REGISTERS_USED + regmap.BANKED_REGISTERS_USED
        for index in range(regmap.MAX_BANKS):
            spec = regmap.register_spec(
                regmap.REG_BANK_THRESHOLD_BASE + index)
            assert spec is not None and spec.width == 32

    def test_coeff_words_use_30_bits(self):
        for k in range(regmap.COEFF_WORDS):
            spec_i = regmap.register_spec(regmap.REG_COEFF_I_BASE + k)
            spec_q = regmap.register_spec(regmap.REG_COEFF_Q_BASE + k)
            assert spec_i.width == spec_q.width == 30
