"""Tests for the user register bus and field packing."""

from __future__ import annotations

import pytest

from repro.errors import RegisterError
from repro.hw.registers import (
    NUM_REGISTERS,
    UserRegisterBus,
    pack_signed_fields,
    unpack_signed_fields,
)


class TestUserRegisterBus:
    def test_write_read_roundtrip(self):
        bus = UserRegisterBus()
        bus.write(7, 0xDEADBEEF)
        assert bus.read(7) == 0xDEADBEEF

    def test_initial_state_zero(self):
        bus = UserRegisterBus()
        assert all(bus.read(a) == 0 for a in range(NUM_REGISTERS))

    def test_rejects_out_of_range_address(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.write(NUM_REGISTERS, 1)
        with pytest.raises(RegisterError):
            bus.read(-1)

    def test_rejects_oversized_value(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.write(0, 1 << 32)
        with pytest.raises(RegisterError):
            bus.write(0, -1)

    def test_watcher_called_on_write(self):
        bus = UserRegisterBus()
        seen = []
        bus.watch(3, seen.append)
        bus.write(3, 42)
        bus.write(4, 43)  # different address: not seen
        assert seen == [42]

    def test_multiple_watchers(self):
        bus = UserRegisterBus()
        seen_a, seen_b = [], []
        bus.watch(1, seen_a.append)
        bus.watch(1, seen_b.append)
        bus.write(1, 5)
        assert seen_a == [5] and seen_b == [5]

    def test_write_count(self):
        bus = UserRegisterBus()
        for k in range(10):
            bus.write(k, k)
        assert bus.write_count == 10

    def test_watch_invalid_address(self):
        bus = UserRegisterBus()
        with pytest.raises(RegisterError):
            bus.watch(300, lambda v: None)


class TestFieldPacking:
    def test_roundtrip_3bit(self):
        values = [3, -4, 0, 1, -1, 2, -2, -3, 3, 3, -4]
        words = pack_signed_fields(values, 3)
        back = unpack_signed_fields(words, 3, len(values))
        assert back == values

    def test_64_coefficients_need_7_words(self):
        words = pack_signed_fields([1] * 64, 3)
        assert len(words) == 7

    def test_words_fit_32_bits(self):
        words = pack_signed_fields([-4] * 64, 3)
        assert all(0 <= w <= 0xFFFFFFFF for w in words)

    def test_rejects_value_too_wide(self):
        with pytest.raises(RegisterError):
            pack_signed_fields([4], 3)
        with pytest.raises(RegisterError):
            pack_signed_fields([-5], 3)

    def test_rejects_bad_field_width(self):
        with pytest.raises(RegisterError):
            pack_signed_fields([0], 0)
        with pytest.raises(RegisterError):
            unpack_signed_fields([0], 33, 1)

    def test_unpack_insufficient_words(self):
        with pytest.raises(RegisterError):
            unpack_signed_fields([0], 3, 20)

    def test_roundtrip_various_widths(self):
        for bits in (2, 4, 5, 8, 16):
            lo = -(1 << (bits - 1))
            hi = (1 << (bits - 1)) - 1
            values = [lo, hi, 0, lo // 2, hi // 2]
            words = pack_signed_fields(values, bits)
            assert unpack_signed_fields(words, bits, len(values)) == values
