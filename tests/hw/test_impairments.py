"""Tests for the front-end impairment model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.ddc import DigitalDownConverter
from repro.hw.impairments import TYPICAL_N210, FrontEndImpairments


class TestValidation:
    def test_dc_offset_bounded(self):
        with pytest.raises(ConfigurationError):
            FrontEndImpairments(dc_offset=1.2)

    def test_iq_gain_bounded(self):
        with pytest.raises(ConfigurationError):
            FrontEndImpairments(iq_gain_imbalance_db=10.0)

    def test_phase_bounded(self):
        with pytest.raises(ConfigurationError):
            FrontEndImpairments(iq_phase_error_deg=60.0)

    def test_ideal_flag(self):
        assert FrontEndImpairments().is_ideal
        assert not TYPICAL_N210.is_ideal


class TestEffects:
    def test_ideal_is_identity(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        out = FrontEndImpairments().apply(x)
        assert np.array_equal(out, x)

    def test_dc_offset_shifts_mean(self, rng):
        imp = FrontEndImpairments(dc_offset=0.1 + 0.05j)
        x = rng.standard_normal(100_000) + 1j * rng.standard_normal(100_000)
        out = imp.apply(x)
        assert np.mean(out).real == pytest.approx(0.1, abs=0.01)
        assert np.mean(out).imag == pytest.approx(0.05, abs=0.01)

    def test_iq_gain_scales_q_only(self):
        imp = FrontEndImpairments(iq_gain_imbalance_db=6.0)
        x = np.array([1.0 + 1.0j])
        out = imp.apply(x)
        assert out[0].real == pytest.approx(1.0)
        assert out[0].imag == pytest.approx(10 ** 0.3, rel=1e-6)

    def test_phase_error_leaks_i_into_q(self):
        imp = FrontEndImpairments(iq_phase_error_deg=30.0)
        x = np.array([1.0 + 0.0j])  # pure I
        out = imp.apply(x)
        assert out[0].imag == pytest.approx(np.sin(np.deg2rad(30.0)))

    def test_cfo_rotates_linearly(self):
        # cfo_hz / sample_rate cycles per sample: 1/8 cycle here.
        imp = FrontEndImpairments(cfo_hz=25e6 / 8)
        x = np.ones(8, dtype=complex)
        out = imp.apply(x)
        # Sample 4 is rotated by half a cycle.
        assert out[4].real == pytest.approx(-1.0, abs=1e-9)

    def test_cfo_phase_continuous_across_chunks(self):
        imp = FrontEndImpairments(cfo_hz=123e3)
        x = np.ones(100, dtype=complex)
        whole = imp.apply(x, start_sample=0)
        parts = np.concatenate([
            imp.apply(x[:37], start_sample=0),
            imp.apply(x[37:], start_sample=37),
        ])
        assert np.allclose(parts, whole)

    def test_empty_chunk(self):
        assert TYPICAL_N210.apply(np.zeros(0, dtype=complex)).size == 0


class TestDdcIntegration:
    def test_ddc_applies_impairments(self, rng):
        imp = FrontEndImpairments(dc_offset=0.1)
        ddc = DigitalDownConverter(impairments=imp)
        x = 0.01 * (rng.standard_normal(10_000)
                    + 1j * rng.standard_normal(10_000))
        out = ddc.process(x)
        assert np.mean(out.real) == pytest.approx(0.1, abs=0.01)

    def test_ddc_cfo_continuity(self):
        imp = FrontEndImpairments(cfo_hz=100e3)
        ddc_a = DigitalDownConverter(impairments=imp)
        ddc_b = DigitalDownConverter(impairments=imp)
        x = 0.1 * np.ones(200, dtype=complex)
        whole = ddc_a.process(x)
        parts = np.concatenate([ddc_b.process(x[:77]),
                                ddc_b.process(x[77:])])
        assert np.allclose(parts, whole)

    def test_reset_rewinds_cfo_clock(self):
        imp = FrontEndImpairments(cfo_hz=100e3)
        ddc = DigitalDownConverter(impairments=imp)
        x = 0.1 * np.ones(64, dtype=complex)
        first = ddc.process(x)
        ddc.reset()
        again = ddc.process(x)
        assert np.allclose(first, again)

    def test_sign_correlator_survives_typical_impairments(self, rng):
        # The detection pipeline keeps working through a typical
        # front end (the ablation bench quantifies the margin).
        from repro.hw.cross_correlator import (
            CrossCorrelator,
            quantize_coefficients,
        )

        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq, threshold=25_000)
        block = 0.01 * (rng.standard_normal(500)
                        + 1j * rng.standard_normal(500))
        block[200:264] += 0.3 * template
        impaired = TYPICAL_N210.apply(block)
        assert corr.process(impaired).any()
