"""Tests for the antenna control path."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.antenna import AntennaConfig, AntennaPort
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210


class TestEncoding:
    def test_roundtrip_all_configs(self):
        for rx_port in AntennaPort:
            for tx in (True, False):
                config = AntennaConfig(rx_port=rx_port, tx_enabled=tx)
                assert AntennaConfig.decode(config.encode()) == config

    def test_decode_bounds(self):
        with pytest.raises(ConfigurationError):
            AntennaConfig.decode(0x100)

    def test_default_is_papers_full_duplex_setup(self):
        config = AntennaConfig()
        assert config.rx_port is AntennaPort.RX2
        assert config.tx_enabled
        assert config.full_duplex_capable

    def test_rx_through_radiating_switch_not_full_duplex(self):
        config = AntennaConfig(rx_port=AntennaPort.TX_RX, tx_enabled=True)
        assert not config.full_duplex_capable

    def test_rx_only_on_txrx_port_is_fine(self):
        config = AntennaConfig(rx_port=AntennaPort.TX_RX, tx_enabled=False)
        assert config.full_duplex_capable

    def test_switch_latency_sub_microsecond(self):
        assert AntennaConfig().switch_latency_s < 1e-6


class TestRegisterPath:
    def test_antenna_bits_reach_the_core(self):
        device = UsrpN210()
        driver = UhdDriver(device)
        config = AntennaConfig(rx_port=AntennaPort.RX2, tx_enabled=True)
        driver.set_control(jammer_enabled=True,
                           antenna_bits=config.encode())
        decoded = AntennaConfig.decode(device.core.antenna_bits)
        assert decoded == config

    def test_reconfiguration_is_one_register_write(self):
        device = UsrpN210()
        driver = UhdDriver(device)
        driver.set_control(True, antenna_bits=AntennaConfig().encode())
        before = driver.register_writes()
        other = AntennaConfig(rx_port=AntennaPort.TX_RX, tx_enabled=False)
        driver.set_control(True, antenna_bits=other.encode())
        assert driver.register_writes() - before == 1
