"""Tests for the sign-bit cross-correlator (paper Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.fixed_point import sign_bits_iq
from repro.errors import ConfigurationError, StreamError
from repro.hw.cross_correlator import (
    METRIC_MAX,
    CrossCorrelator,
    quantize_coefficients,
)
from repro.hw.register_map import CORRELATOR_LENGTH


def reference_metric(signal: np.ndarray, coeffs_i: np.ndarray,
                     coeffs_q: np.ndarray) -> np.ndarray:
    """Slow but obviously-correct metric for cross-checking."""
    si, sq = sign_bits_iq(signal)
    si = si.astype(np.int64)
    sq = sq.astype(np.int64)
    n = signal.size
    out = np.zeros(n, dtype=np.int64)
    for end in range(n):
        re = im = 0
        for k in range(CORRELATOR_LENGTH):
            idx = end - (CORRELATOR_LENGTH - 1) + k
            if idx < 0:
                continue  # reset history contributes zero
            re += coeffs_i[k] * si[idx] + coeffs_q[k] * sq[idx]
            im += coeffs_i[k] * sq[idx] - coeffs_q[k] * si[idx]
        out[end] = re * re + im * im
    return out


@pytest.fixture
def template(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, CORRELATOR_LENGTH))


class TestQuantizeCoefficients:
    def test_three_bit_range(self, template):
        ci, cq = quantize_coefficients(template)
        assert ci.min() >= -4 and ci.max() <= 3
        assert cq.min() >= -4 and cq.max() <= 3

    def test_length(self, template):
        ci, cq = quantize_coefficients(template)
        assert ci.size == 64 and cq.size == 64

    def test_peak_maps_to_max(self):
        template = np.zeros(64, dtype=complex)
        template[0] = 1.0
        ci, cq = quantize_coefficients(template)
        assert ci[0] == 3

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            quantize_coefficients(np.ones(63, dtype=complex))

    def test_rejects_zero_template(self):
        with pytest.raises(ConfigurationError):
            quantize_coefficients(np.zeros(64, dtype=complex))


class TestCrossCorrelator:
    def test_matches_reference_implementation(self, rng, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        signal = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        fast = corr.metric(signal)
        slow = reference_metric(signal, ci, cq)
        assert np.array_equal(fast, slow)

    def test_chunked_equals_single_shot(self, rng, template):
        ci, cq = quantize_coefficients(template)
        signal = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        whole = CrossCorrelator(ci, cq).metric(signal)
        chunked = CrossCorrelator(ci, cq)
        parts = [chunked.metric(signal[i:i + 61]) for i in range(0, 500, 61)]
        assert np.array_equal(np.concatenate(parts), whole)

    def test_peak_at_template_end(self, rng, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        signal = 0.001 * (rng.standard_normal(400) + 1j * rng.standard_normal(400))
        signal[100:164] += template
        metric = corr.metric(signal)
        assert int(np.argmax(metric)) == 163

    def test_detection_latency_is_64_samples(self, rng, template):
        # T_xcorr_det: the trigger fires exactly when the 64th template
        # sample arrives (2.56 us at 25 MSPS).
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq, threshold=30_000)
        signal = 0.001 * (rng.standard_normal(400) + 1j * rng.standard_normal(400))
        signal[100:164] += template
        trig = corr.process(signal)
        first = int(np.flatnonzero(trig)[0])
        assert first == 100 + CORRELATOR_LENGTH - 1

    def test_metric_bounded(self, rng, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        signal = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        assert np.max(corr.metric(signal)) <= METRIC_MAX

    def test_threshold_setter_validation(self, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        with pytest.raises(ConfigurationError):
            corr.threshold = -1
        with pytest.raises(ConfigurationError):
            corr.threshold = 1 << 32

    def test_runtime_coefficient_reload(self, rng, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq, threshold=30_000)
        other = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        signal = 0.001 * (rng.standard_normal(300) + 1j * rng.standard_normal(300))
        signal[50:114] += other
        # Template mismatch: no trigger.
        assert not corr.process(signal).any()
        # Reload for the other signal: triggers.
        corr.reset()
        oi, oq = quantize_coefficients(other)
        corr.load_coefficients(oi, oq)
        assert corr.process(signal).any()

    def test_coefficients_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCorrelator(np.full(64, 5), np.zeros(64))

    def test_missing_bank_rejected(self):
        corr = CrossCorrelator()
        with pytest.raises(ConfigurationError):
            corr.load_coefficients(np.zeros(64), None)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCorrelator(np.zeros(32), np.zeros(32))

    def test_2d_input_rejected(self, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        with pytest.raises(StreamError):
            corr.metric(np.zeros((4, 4), dtype=complex))

    def test_empty_chunk(self, template):
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq)
        assert corr.metric(np.zeros(0, dtype=complex)).size == 0

    def test_phase_rotation_tolerated_within_90deg_resolution(self, rng, template):
        # The sign slicer quantizes phase to 90 degrees; a match still
        # clears a mid-level threshold at any carrier phase.
        ci, cq = quantize_coefficients(template)
        corr = CrossCorrelator(ci, cq, threshold=20_000)
        for phase in np.linspace(0, 2 * np.pi, 8, endpoint=False):
            corr.reset()
            signal = 0.001 * (rng.standard_normal(200)
                              + 1j * rng.standard_normal(200))
            signal[64:128] += template * np.exp(1j * phase)
            assert corr.process(signal).any(), f"missed at phase {phase:.2f}"

    def test_scale_invariance_of_sign_slicing(self, rng, template):
        ci, cq = quantize_coefficients(template)
        signal = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        a = CrossCorrelator(ci, cq).metric(signal)
        b = CrossCorrelator(ci, cq).metric(signal * 1000.0)
        assert np.array_equal(a, b)
