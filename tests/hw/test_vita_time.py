"""Tests for the VITA time source."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.usrp import UsrpN210
from repro.hw.vita_time import VitaTimestamp, VitaTimeSource


class TestVitaTimestamp:
    def test_seconds_composition(self):
        ts = VitaTimestamp(full_seconds=10, fractional_seconds=0.25)
        assert ts.seconds == pytest.approx(10.25)

    def test_string_rendering(self):
        ts = VitaTimestamp(full_seconds=3, fractional_seconds=0.5)
        assert str(ts) == "3.500000000"

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            VitaTimestamp(full_seconds=0, fractional_seconds=1.0)


class TestVitaTimeSource:
    def test_sample_to_time_roundtrip(self):
        src = VitaTimeSource(epoch_seconds=100.0)
        for n in (0, 1, 25_000_000, 10 ** 9):
            assert src.sample_at(src.timestamp(n)) == n

    def test_sample_duration(self):
        src = VitaTimeSource()
        ts = src.timestamp(25_000_000)
        assert ts.seconds == pytest.approx(1.0)

    def test_gps_locked_has_no_drift(self):
        a = VitaTimeSource(gps_locked=True)
        b = VitaTimeSource(gps_locked=True)
        assert a.offset_after(b, duration_s=3600.0) == 0.0

    def test_free_running_drift(self):
        locked = VitaTimeSource(gps_locked=True)
        free = VitaTimeSource(gps_locked=False, drift_ppm=2.5)
        # 2.5 ppm over an hour = 9 ms of disagreement.
        assert locked.offset_after(free, 3600.0) == pytest.approx(9e-3)

    def test_drifting_clock_changes_rate(self):
        free = VitaTimeSource(gps_locked=False, drift_ppm=10.0)
        assert free.effective_rate == pytest.approx(25e6 * (1 + 1e-5))

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            VitaTimeSource().timestamp(-1)

    def test_pre_epoch_timestamp_rejected(self):
        src = VitaTimeSource(epoch_seconds=100.0)
        with pytest.raises(ConfigurationError):
            src.sample_at(VitaTimestamp(50, 0.0))

    def test_device_integration(self):
        device = UsrpN210()
        ts = device.timestamp_of(66)
        # 66 samples at 25 MSPS = 2.64 us: T_resp as absolute time.
        assert ts.seconds == pytest.approx(2.64e-6)
