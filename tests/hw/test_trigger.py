"""Tests for the three-stage trigger state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.trigger import (
    TriggerMode,
    TriggerSource,
    TriggerStateMachine,
    rising_edges,
)

X = TriggerSource.XCORR
EH = TriggerSource.ENERGY_HIGH
EL = TriggerSource.ENERGY_LOW


class TestRisingEdges:
    def test_simple_edge(self):
        trig = np.array([0, 0, 1, 1, 0, 1], dtype=bool)
        assert list(rising_edges(trig)) == [2, 5]

    def test_edge_at_start(self):
        trig = np.array([1, 1, 0], dtype=bool)
        assert list(rising_edges(trig)) == [0]

    def test_carry_across_chunks(self):
        trig = np.array([1, 1, 0], dtype=bool)
        assert list(rising_edges(trig, previous_last=True)) == []

    def test_empty(self):
        assert rising_edges(np.zeros(0, dtype=bool)).size == 0

    def test_all_false(self):
        assert rising_edges(np.zeros(10, dtype=bool)).size == 0


class TestSingleStage:
    def test_every_matching_event_fires(self):
        fsm = TriggerStateMachine([X])
        jams = fsm.process_events([(10, X), (20, X), (30, EH)])
        assert jams == [10, 20]

    def test_non_matching_ignored(self):
        fsm = TriggerStateMachine([EH])
        assert fsm.process_events([(5, X), (6, EL)]) == []


class TestSequentialStages:
    def test_two_stage_combination(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        jams = fsm.process_events([(10, EH), (50, X)])
        assert jams == [50]

    def test_order_matters(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        assert fsm.process_events([(10, X), (50, EH)]) == []

    def test_window_expiry_discards_progress(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        assert fsm.process_events([(10, EH), (200, X)]) == []

    def test_window_boundary_inclusive(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        assert fsm.process_events([(10, EH), (110, X)]) == [110]

    def test_three_stages(self):
        fsm = TriggerStateMachine([EH, X, EL], window_samples=1000)
        jams = fsm.process_events([(0, EH), (100, X), (500, EL)])
        assert jams == [500]

    def test_restart_after_fire(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        jams = fsm.process_events([(10, EH), (20, X), (30, EH), (40, X)])
        assert jams == [20, 40]

    def test_restart_after_expiry(self):
        fsm = TriggerStateMachine([EH, X], window_samples=50)
        jams = fsm.process_events([(0, EH), (100, EH), (120, X)])
        assert jams == [120]

    def test_wrong_source_does_not_advance(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        jams = fsm.process_events([(0, EH), (10, EL), (20, X)])
        assert jams == [20]

    def test_reset_discards_progress(self):
        fsm = TriggerStateMachine([EH, X], window_samples=100)
        fsm.process_events([(0, EH)])
        fsm.reset()
        assert fsm.process_events([(10, X)]) == []


class TestAnyMode:
    def test_any_stage_fires(self):
        fsm = TriggerStateMachine([X, EH], mode=TriggerMode.ANY)
        jams = fsm.process_events([(10, EH), (20, X), (30, EL)])
        assert jams == [10, 20]

    def test_any_mode_needs_no_window(self):
        fsm = TriggerStateMachine([X, EH], window_samples=0,
                                  mode=TriggerMode.ANY)
        assert fsm.mode is TriggerMode.ANY


class TestValidation:
    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigurationError):
            TriggerStateMachine([])

    def test_rejects_too_many_stages(self):
        with pytest.raises(ConfigurationError):
            TriggerStateMachine([X, EH, EL, X], window_samples=10)

    def test_sequence_multi_stage_needs_window(self):
        with pytest.raises(ConfigurationError):
            TriggerStateMachine([X, EH], window_samples=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigurationError):
            TriggerStateMachine([X], window_samples=-1)

    def test_stage_listing(self):
        fsm = TriggerStateMachine([X, EH], window_samples=5)
        assert [s.source for s in fsm.stages] == [X, EH]
