"""The stacked multi-standard bank: facade, register bus, driver.

Covers the :class:`repro.hw.BankedCrossCorrelator` facade contract,
the banked register-bus control plane (``REG_BANK_COUNT`` mode switch,
windowed coefficient writes, direct-mapped thresholds), hot-swapping a
bank mid-stream, the ``which_protocol`` telemetry dimension, and the
stale-threshold regression: :meth:`ReactiveJammer.configure` must ship
every per-bank threshold before the count write arms the stacked
correlator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.detection import DetectionConfig, ProtocolBank
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.errors import ConfigurationError, StreamError
from repro.hw import BankedCrossCorrelator, register_map as regmap
from repro.hw.cross_correlator import (
    METRIC_MAX,
    CrossCorrelator,
    quantize_coefficients,
)
from repro.hw.trigger import TriggerSource
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210
from repro.telemetry.metrics import MetricsRegistry


def _random_bank(rng):
    return (rng.integers(-4, 4, 64), rng.integers(-4, 4, 64))


@pytest.fixture
def template_a(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, 64))


@pytest.fixture
def template_b(rng2):
    return np.exp(1j * rng2.uniform(0, 2 * np.pi, 64))


class TestFacadeValidation:
    def test_unconfigured_facade_refuses_the_datapath(self):
        banked = BankedCrossCorrelator()
        assert banked.n_banks == 0
        assert banked.prepared_coefficients is None
        with pytest.raises(ConfigurationError):
            banked.detect(np.zeros(8, dtype=complex))
        with pytest.raises(ConfigurationError):
            banked.metric(np.zeros(8, dtype=complex))
        with pytest.raises(ConfigurationError):
            banked.set_threshold(0, 100)

    def test_bank_count_bounds(self, rng):
        banked = BankedCrossCorrelator()
        with pytest.raises(ConfigurationError):
            banked.load_banks([], [])
        too_many = [_random_bank(rng) for _ in range(regmap.MAX_BANKS + 1)]
        with pytest.raises(ConfigurationError):
            banked.load_banks(too_many,
                              np.zeros(regmap.MAX_BANKS + 1))

    def test_bad_banks_rejected(self, rng):
        banked = BankedCrossCorrelator()
        with pytest.raises(ConfigurationError):
            banked.load_banks([(np.zeros(32), np.zeros(32))], [100])
        with pytest.raises(ConfigurationError):
            banked.load_banks([(np.full(64, 5), np.zeros(64))], [100])

    def test_threshold_validation(self, rng):
        banked = BankedCrossCorrelator()
        banks = [_random_bank(rng)]
        with pytest.raises(ConfigurationError):
            banked.load_banks(banks, [1, 2])  # count mismatch
        with pytest.raises(ConfigurationError):
            banked.load_banks(banks, [1 << 32])
        banked.load_banks(banks, [100])
        with pytest.raises(ConfigurationError):
            banked.set_threshold(0, -1)
        with pytest.raises(ConfigurationError):
            banked.set_threshold(1, 100)  # index out of range
        banked.set_threshold(0, 0xFFFF_FFFF)
        assert banked.thresholds[0] == 0xFFFF_FFFF

    def test_labels_default_and_rename(self, rng):
        banked = BankedCrossCorrelator()
        banked.load_banks([_random_bank(rng), _random_bank(rng)],
                          [10, 20])
        assert banked.labels == ("bank0", "bank1")
        banked.set_label(1, "zigbee")
        assert banked.labels == ("bank0", "zigbee")
        with pytest.raises(ConfigurationError):
            banked.set_label(2, "nope")
        banked.load_banks([_random_bank(rng)], [10], labels=["wifi"])
        assert banked.labels == ("wifi",)

    def test_rejects_multidimensional_chunks(self, rng):
        banked = BankedCrossCorrelator()
        banked.load_banks([_random_bank(rng)], [0])
        with pytest.raises(StreamError):
            banked.detect(np.zeros((2, 8), dtype=complex))


class TestFacadeStreaming:
    def test_detect_matches_singles_on_a_planted_preamble(
            self, rng, template_a, template_b):
        banks = [quantize_coefficients(template_a),
                 quantize_coefficients(template_b)]
        thresholds = [30_000, 30_000]
        rx = awgn(3000, 1e-6, rng)
        rx[500:564] += template_a
        rx[1800:1864] += template_b

        banked = BankedCrossCorrelator()
        banked.load_banks(banks, thresholds, labels=["a", "b"])
        singles = [CrossCorrelator(ci, cq, threshold=thr)
                   for (ci, cq), thr in zip(banks, thresholds)]
        _trigger, edges = banked.detect(rx)
        for k, single in enumerate(singles):
            _t, single_edges = single.detect(rx)
            np.testing.assert_array_equal(edges[k], single_edges)
        assert edges[0].size == 1 and edges[1].size == 1

    def test_load_banks_clears_carries_but_keeps_history(self, rng):
        banked = BankedCrossCorrelator()
        banks = [_random_bank(rng)]
        banked.load_banks(banks, [0])  # threshold 0: fires everywhere
        _t, edges = banked.detect(rng.normal(size=50)
                                  + 1j * rng.normal(size=50))
        assert 0 in edges[0]
        # Still triggering: the carry suppresses a chunk-boundary edge.
        _t, edges = banked.detect(rng.normal(size=50)
                                  + 1j * rng.normal(size=50))
        assert 0 not in edges[0]
        # Reloading the same banks restarts the carries like a fresh
        # bank of correlators...
        banked.load_banks(banks, [0])
        _t, edges = banked.detect(rng.normal(size=50)
                                  + 1j * rng.normal(size=50))
        assert 0 in edges[0]

    def test_reset_and_clear_last(self, rng):
        banks = [_random_bank(rng)]
        banked = BankedCrossCorrelator()
        banked.load_banks(banks, [0])
        samples = rng.normal(size=40) + 1j * rng.normal(size=40)
        banked.detect(samples)
        banked.clear_last()
        _t, edges = banked.detect(samples)
        assert 0 in edges[0]  # carry forgotten
        banked.reset()
        fresh = BankedCrossCorrelator()
        fresh.load_banks(banks, [0])
        np.testing.assert_array_equal(banked.metric(samples),
                                      fresh.metric(samples))

    def test_attach_metrics_counts_chunks_and_samples(self, rng):
        registry = MetricsRegistry()
        banked = BankedCrossCorrelator()
        banked.load_banks([_random_bank(rng)], [1000])
        banked.attach_metrics(registry)
        banked.detect(rng.normal(size=100) + 0j)
        banked.metric(rng.normal(size=50) + 0j)
        assert registry.counter("kernels.xcorr_stacked.chunks").value == 2
        assert registry.counter("kernels.xcorr_stacked.samples").value == 150
        banked.attach_metrics(None)
        banked.detect(rng.normal(size=10) + 0j)
        assert registry.counter("kernels.xcorr_stacked.chunks").value == 2


@pytest.fixture
def banked_rig(template_a, template_b):
    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_correlator_banks([template_a, template_b],
                                [30_000, 30_000],
                                labels=["wifi", "zigbee"])
    driver.set_trigger_stages([TriggerSource.XCORR])
    driver.set_jam_uptime(100)
    driver.set_control(jammer_enabled=True)
    return device, driver


class TestBankedCoreMode:
    def test_banks_ship_over_the_register_bus(self, banked_rig,
                                              template_a, template_b):
        device, _driver = banked_rig
        assert device.core.bank_count == 2
        assert device.bus.read(regmap.REG_BANK_COUNT) == 2
        assert device.core.banked.labels == ("wifi", "zigbee")
        for index, template in enumerate([template_a, template_b]):
            ci, cq = quantize_coefficients(template)
            got_i, got_q = device.core.banked.bank_coefficients(index)
            np.testing.assert_array_equal(got_i, ci)
            np.testing.assert_array_equal(got_q, cq)

    def test_events_carry_the_winning_protocol(self, rng, banked_rig,
                                               template_a, template_b):
        device, driver = banked_rig
        rx = awgn(4000, 1e-6, rng)
        rx[500:564] += template_a
        rx[2000:2064] += template_b
        out = device.run(rx)
        xcorr = [d for d in out.detections
                 if d.source is TriggerSource.XCORR]
        assert [d.protocol for d in xcorr] == ["wifi", "zigbee"]
        assert driver.detection_counts()[TriggerSource.XCORR] == 2
        assert len(out.jams) == 2

    def test_bank_threshold_register_is_live(self, banked_rig):
        device, driver = banked_rig
        driver.set_bank_threshold(1, 12_345)
        assert device.bus.read(regmap.REG_BANK_THRESHOLD_BASE + 1) \
            == 12_345
        assert device.core.banked.thresholds[1] == 12_345

    def test_count_zero_returns_to_the_legacy_correlator(
            self, rng, banked_rig, template_a):
        device, driver = banked_rig
        driver.set_correlator_template(template_a)
        driver.set_xcorr_threshold(30_000)
        driver.set_bank_count(0)
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template_a
        out = device.run(rx)
        xcorr = [d for d in out.detections
                 if d.source is TriggerSource.XCORR]
        assert len(xcorr) == 1
        assert xcorr[0].protocol is None

    def test_hot_swap_takes_effect_next_chunk(self, rng, banked_rig,
                                              template_a, template_b):
        device, driver = banked_rig
        third = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        # Chunk 1: bank 0 still holds template_a, which is absent.
        quiet = awgn(1000, 1e-6, rng)
        out1 = device.run_chunk(quiet) if hasattr(device, "run_chunk") \
            else device.core.process(quiet)
        assert not [d for d in out1.detections
                    if d.source is TriggerSource.XCORR]
        # Swap bank 0 to the third template without touching the run.
        driver.set_correlator_bank(0, third, threshold=30_000,
                                   label="wimax")
        rx = awgn(1500, 1e-6, rng)
        rx[400:464] += third
        out2 = device.core.process(rx)
        xcorr = [d for d in out2.detections
                 if d.source is TriggerSource.XCORR]
        assert [d.protocol for d in xcorr] == ["wimax"]
        assert device.core.banked.labels == ("wimax", "zigbee")

    def test_bank_select_out_of_range_rejected(self, banked_rig,
                                               template_a):
        _device, driver = banked_rig
        with pytest.raises(ConfigurationError):
            driver.set_correlator_bank(regmap.MAX_BANKS, template_a)
        with pytest.raises(ConfigurationError):
            driver.set_bank_threshold(-1, 100)

    def test_bank_count_register_bounds(self, banked_rig):
        device, driver = banked_rig
        with pytest.raises(ConfigurationError):
            driver.set_bank_count(regmap.MAX_BANKS + 1)
        # A rogue direct bus write is rejected by the core decode too.
        with pytest.raises(ConfigurationError):
            device.bus.write(regmap.REG_BANK_COUNT, regmap.MAX_BANKS + 1)  # repro-lint: disable=RJ002 (deliberate overflow, must be rejected)
        assert device.core.bank_count == 2  # unchanged by the rejects


class TestWhichProtocolTelemetry:
    def test_per_protocol_counters(self, rng, banked_rig, template_a,
                                   template_b):
        device, _driver = banked_rig
        registry = MetricsRegistry()
        device.core.attach_metrics(registry)
        device.core.banked.attach_metrics(registry)
        rx = awgn(4000, 1e-6, rng)
        rx[500:564] += template_a
        rx[2000:2064] += template_b
        rx[3000:3064] += template_b
        device.run(rx)
        assert registry.counter(
            "detect.which_protocol.wifi").value == 1
        assert registry.counter(
            "detect.which_protocol.zigbee").value == 2
        assert registry.counter(
            "kernels.xcorr_stacked.chunks").value >= 1


class TestConfigureAtomicity:
    """Regression: no chunk may ever see a freshly-armed stacked
    correlator with stale (power-on) thresholds.  ``configure`` must
    park the bank count at 0, ship every per-bank threshold, and only
    then arm with the final count write."""

    def _recording_jammer(self):
        jammer = ReactiveJammer()
        writes = []
        bus_write = jammer.device.bus.write

        def recorder(address, value):
            writes.append((address, value))
            bus_write(address, value)

        jammer.device.bus.write = recorder
        return jammer, writes

    def _configure(self, jammer, template_a, template_b):
        jammer.configure(
            DetectionConfig(banks=(
                ProtocolBank("wifi", template_a, 30_000),
                ProtocolBank("zigbee", template_b, 20_000),
            )),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(1e-5))

    def test_thresholds_land_before_the_count_arms(self, template_a,
                                                   template_b):
        jammer, writes = self._recording_jammer()
        self._configure(jammer, template_a, template_b)

        count_writes = [i for i, (addr, _v) in enumerate(writes)
                        if addr == regmap.REG_BANK_COUNT]
        threshold_writes = [
            i for i, (addr, _v) in enumerate(writes)
            if regmap.REG_BANK_THRESHOLD_BASE <= addr
            < regmap.REG_BANK_THRESHOLD_BASE + regmap.MAX_BANKS]
        coeff_writes = [
            i for i, (addr, _v) in enumerate(writes)
            if regmap.REG_BANK_COEFF_I_BASE <= addr
            < regmap.REG_BANK_COEFF_Q_BASE + regmap.COEFF_WORDS]

        # Parked at zero first, armed with the true count last.
        assert writes[count_writes[0]][1] == 0
        assert writes[count_writes[-1]][1] == 2
        assert len(threshold_writes) == 2
        # Every threshold lands while the correlator is disarmed and
        # before any coefficient word.
        assert max(threshold_writes) < min(coeff_writes)
        assert max(threshold_writes) < count_writes[-1]
        assert max(coeff_writes) < count_writes[-1]

    def test_configured_thresholds_are_live_not_poweron(
            self, template_a, template_b):
        jammer, _writes = self._recording_jammer()
        self._configure(jammer, template_a, template_b)
        np.testing.assert_array_equal(
            jammer.device.core.banked.thresholds, [30_000, 20_000])
        assert not np.any(
            jammer.device.core.banked.thresholds == METRIC_MAX)

    def test_reconfigure_to_legacy_disarms_the_bank(self, template_a,
                                                    template_b):
        jammer, _writes = self._recording_jammer()
        self._configure(jammer, template_a, template_b)
        assert jammer.device.core.bank_count == 2
        jammer.configure(
            DetectionConfig(template=template_a,
                            xcorr_threshold=30_000),
            JammingEventBuilder().on_correlation(),
            reactive_jammer(1e-5))
        assert jammer.device.core.bank_count == 0
        assert jammer.device.bus.read(regmap.REG_BANK_COUNT) == 0
