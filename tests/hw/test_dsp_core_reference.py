"""The vectorized core vs a sample-by-sample reference implementation.

``CustomDspCore`` runs an event-driven fast path (vectorized triggers,
edge lists, interval synthesis).  This module re-implements the whole
detect-trigger-jam pipeline the slow, obviously-correct way — one
sample at a time, mimicking per-clock hardware — and checks the fast
path produces identical detections, jam intervals, and transmit
samples on short signals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.dsp.fixed_point import quantize_iq16, sign_bits_iq
from repro.hw import register_map as regmap
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.dsp_core import CustomDspCore
from repro.hw.registers import pack_signed_fields
from repro.hw.trigger import TriggerSource
from repro.hw.tx_controller import INIT_LATENCY_SAMPLES


class ReferenceCore:
    """A per-sample software model of the detect-and-jam pipeline.

    Single XCORR trigger stage, WGN waveform; enough surface to
    cross-check the fast path's event machinery end to end.
    """

    def __init__(self, coeffs_i, coeffs_q, threshold, uptime, delay):
        self.ci = np.asarray(coeffs_i, dtype=np.int64)
        self.cq = np.asarray(coeffs_q, dtype=np.int64)
        self.threshold = threshold
        self.uptime = uptime
        self.delay = delay

    def run(self, rx: np.ndarray):
        quantized = quantize_iq16(rx)
        si, sq = sign_bits_iq(quantized)
        si = si.astype(np.int64)
        sq = sq.astype(np.int64)
        n = rx.size
        detections = []
        jams = []
        busy_until = -1
        prev_trig = False
        for t in range(n):
            # 64-tap sign correlation ending at sample t.
            re = im = 0
            for k in range(64):
                idx = t - 63 + k
                if idx < 0:
                    continue
                re += self.ci[k] * si[idx] + self.cq[k] * sq[idx]
                im += self.ci[k] * sq[idx] - self.cq[k] * si[idx]
            trig = (re * re + im * im) > self.threshold
            if trig and not prev_trig:
                detections.append(t)
                if t >= busy_until:
                    start = t + INIT_LATENCY_SAMPLES + self.delay
                    jams.append((t, start, start + self.uptime))
                    busy_until = start + self.uptime
            prev_trig = trig
        return detections, jams


def program_core(template, threshold, uptime, delay) -> CustomDspCore:
    core = CustomDspCore()
    ci, cq = quantize_coefficients(template)
    for off, word in enumerate(pack_signed_fields([int(c) for c in ci], 3)):
        core.bus.write(regmap.REG_COEFF_I_BASE + off, word)
    for off, word in enumerate(pack_signed_fields([int(c) for c in cq], 3)):
        core.bus.write(regmap.REG_COEFF_Q_BASE + off, word)
    core.bus.write(regmap.REG_XCORR_THRESHOLD, threshold)
    core.bus.write(regmap.REG_TRIGGER_CONFIG,
                   (1 << regmap.STAGE_ENABLE_SHIFT) | int(TriggerSource.XCORR))
    core.bus.write(regmap.REG_JAM_UPTIME, uptime)
    core.bus.write(regmap.REG_JAM_DELAY, delay)
    core.bus.write(regmap.REG_CONTROL_FLAGS, regmap.FLAG_JAMMER_ENABLE)
    return core


@pytest.mark.parametrize("uptime,delay,seed", [
    (50, 0, 1),
    (120, 0, 2),
    (30, 25, 3),
    (200, 10, 4),
])
def test_fast_path_matches_reference(uptime, delay, seed):
    rng = np.random.default_rng(seed)
    template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
    threshold = 30_000

    rx = awgn(1500, 1e-6, rng)
    # Two preambles; the second may fall inside the first's busy span
    # depending on uptime, exercising trigger suppression.
    rx[300:364] += template
    rx[480:544] += template

    core = program_core(template, threshold, uptime, delay)
    ci, cq = core.correlator.coefficients
    reference = ReferenceCore(ci, cq, threshold, uptime, delay)

    tx_parts, detections, jams = [], [], []
    for lo in range(0, rx.size, 333):
        chunk_out = core.process(rx[lo:lo + 333])
        tx_parts.append(chunk_out.tx)
        detections.extend(chunk_out.detections)
        jams.extend(chunk_out.jams)
    tx = np.concatenate(tx_parts)
    ref_detections, ref_jams = reference.run(rx)

    fast_detections = [d.time for d in detections
                       if d.source is TriggerSource.XCORR]
    assert fast_detections == ref_detections

    fast_jams = [(j.trigger_time, j.start, j.end) for j in jams]
    assert fast_jams == ref_jams

    # TX activity exactly inside the reference's jam spans.
    active = np.abs(tx) > 0
    expected = np.zeros(rx.size, dtype=bool)
    for _trig, start, end in ref_jams:
        expected[start:min(end, rx.size)] = True
    assert np.array_equal(active, expected)


def test_reference_agrees_on_quiet_input():
    rng = np.random.default_rng(9)
    template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
    core = program_core(template, 30_000, 50, 0)
    ci, cq = core.correlator.coefficients
    reference = ReferenceCore(ci, cq, 30_000, 50, 0)
    rx = awgn(800, 1e-6, rng)
    out = core.process(rx)
    ref_detections, ref_jams = reference.run(rx)
    assert [d.time for d in out.detections
            if d.source is TriggerSource.XCORR] == ref_detections
    assert ref_jams == [(j.trigger_time, j.start, j.end) for j in out.jams]
