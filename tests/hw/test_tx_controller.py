"""Tests for the jamming transmit controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError, StreamError
from repro.hw.tx_controller import (
    INIT_LATENCY_CLOCKS,
    INIT_LATENCY_SAMPLES,
    MAX_REPLAY_LENGTH,
    MAX_UPTIME_SAMPLES,
    JamWaveform,
    TransmitController,
)


class TestLatencyConstants:
    def test_init_latency_is_eight_clocks(self):
        # Paper: 1 cycle to initiate + ~7 to fill the DUC = 80 ns.
        assert INIT_LATENCY_CLOCKS == 8
        assert units.clocks_to_seconds(INIT_LATENCY_CLOCKS) == pytest.approx(80e-9)

    def test_init_latency_in_samples(self):
        assert INIT_LATENCY_SAMPLES == 2


class TestConfiguration:
    def test_uptime_range(self):
        tx = TransmitController()
        tx.uptime_samples = 1
        tx.uptime_samples = MAX_UPTIME_SAMPLES
        with pytest.raises(ConfigurationError):
            tx.uptime_samples = 0
        with pytest.raises(ConfigurationError):
            tx.uptime_samples = MAX_UPTIME_SAMPLES + 1

    def test_uptime_covers_paper_range(self):
        # 1 sample = 40 ns up to ~40 s.
        assert units.samples_to_seconds(1) == pytest.approx(40e-9)
        assert units.samples_to_seconds(MAX_UPTIME_SAMPLES) > 40.0

    def test_replay_length_range(self):
        tx = TransmitController()
        tx.replay_length = 1
        tx.replay_length = MAX_REPLAY_LENGTH
        with pytest.raises(ConfigurationError):
            tx.replay_length = 0
        with pytest.raises(ConfigurationError):
            tx.replay_length = MAX_REPLAY_LENGTH + 1

    def test_amplitude_range(self):
        tx = TransmitController()
        with pytest.raises(ConfigurationError):
            tx.amplitude = 0.0
        with pytest.raises(ConfigurationError):
            tx.amplitude = 1.5

    def test_delay_validation(self):
        tx = TransmitController()
        with pytest.raises(ConfigurationError):
            tx.delay_samples = -1

    def test_host_waveform_validation(self):
        tx = TransmitController()
        with pytest.raises(StreamError):
            tx.set_host_waveform(np.zeros(0, dtype=complex))


class TestScheduling:
    def test_burst_timing(self):
        tx = TransmitController(uptime_samples=100, delay_samples=0)
        intervals = tx.schedule([1000])
        assert len(intervals) == 1
        iv = intervals[0]
        assert iv.start == 1000 + INIT_LATENCY_SAMPLES
        assert iv.end == iv.start + 100

    def test_delay_shifts_burst(self):
        tx = TransmitController(uptime_samples=100, delay_samples=50)
        iv = tx.schedule([1000])[0]
        assert iv.start == 1000 + INIT_LATENCY_SAMPLES + 50

    def test_triggers_during_burst_ignored(self):
        tx = TransmitController(uptime_samples=100)
        intervals = tx.schedule([1000, 1010, 1050])
        assert len(intervals) == 1

    def test_trigger_after_burst_accepted(self):
        tx = TransmitController(uptime_samples=100)
        intervals = tx.schedule([1000, 1200])
        assert len(intervals) == 2

    def test_trigger_exactly_at_busy_end(self):
        tx = TransmitController(uptime_samples=100, delay_samples=0)
        first = tx.schedule([1000])[0]
        assert tx.schedule([first.end]) != []


class TestWgnSynthesis:
    def test_unit_power(self):
        tx = TransmitController(uptime_samples=50_000)
        iv = tx.schedule([0])[0]
        _off, wave = tx.synthesize(iv, 0, 60_000)
        assert np.mean(np.abs(wave) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_chunk_invariance(self):
        tx = TransmitController(uptime_samples=1000)
        iv = tx.schedule([100])[0]
        _o, whole = tx.synthesize(iv, 0, 2000)
        parts = []
        for start in range(0, 2000, 137):
            off, wave = tx.synthesize(iv, start, min(137, 2000 - start))
            chunk = np.zeros(min(137, 2000 - start), dtype=complex)
            chunk[off:off + wave.size] = wave
            parts.append(chunk)
        combined = np.concatenate(parts)
        ref = np.zeros(2000, dtype=complex)
        ref[102:1102] = whole
        assert np.allclose(combined, ref)

    def test_different_bursts_use_different_noise(self):
        tx = TransmitController(uptime_samples=100)
        iv1 = tx.schedule([0])[0]
        iv2 = tx.schedule([500])[0]
        _o1, w1 = tx.synthesize(iv1, 0, 1000)
        _o2, w2 = tx.synthesize(iv2, 0, 1000)
        assert not np.allclose(w1, w2)

    def test_amplitude_scales_waveform(self):
        tx = TransmitController(uptime_samples=10_000)
        tx.amplitude = 0.5
        iv = tx.schedule([0])[0]
        _o, wave = tx.synthesize(iv, 0, 10_002)
        assert np.mean(np.abs(wave) ** 2) == pytest.approx(0.25, rel=0.05)

    def test_no_overlap_returns_empty(self):
        tx = TransmitController(uptime_samples=10)
        iv = tx.schedule([100])[0]
        _o, wave = tx.synthesize(iv, 500, 100)
        assert wave.size == 0


class TestReplay:
    def test_replays_captured_samples(self, rng):
        tx = TransmitController(waveform=JamWaveform.REPLAY,
                                uptime_samples=64, replay_length=32)
        captured = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        tx.observe_rx(captured)
        iv = tx.schedule([100])[0]
        _o, wave = tx.synthesize(iv, 0, 300)
        # 64 samples of cyclic replay of the 32 captured samples.
        assert np.allclose(wave[:32], captured)
        assert np.allclose(wave[32:64], captured)

    def test_capture_depth_limited(self, rng):
        tx = TransmitController(waveform=JamWaveform.REPLAY,
                                uptime_samples=16, replay_length=16)
        history = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        tx.observe_rx(history)
        iv = tx.schedule([200])[0]
        _o, wave = tx.synthesize(iv, 0, 300)
        assert np.allclose(wave[:16], history[-16:])

    def test_snapshot_frozen_at_trigger(self, rng):
        tx = TransmitController(waveform=JamWaveform.REPLAY,
                                uptime_samples=8, replay_length=8)
        first = rng.standard_normal(8) + 0j
        tx.observe_rx(first)
        iv = tx.schedule([50])[0]
        tx.observe_rx(rng.standard_normal(8) + 0j)  # arrives after trigger
        _o, wave = tx.synthesize(iv, 0, 100)
        assert np.allclose(wave[:8], first)

    def test_release_interval_drops_snapshot(self, rng):
        tx = TransmitController(waveform=JamWaveform.REPLAY, uptime_samples=8)
        tx.observe_rx(rng.standard_normal(8) + 0j)
        iv = tx.schedule([10])[0]
        tx.release_interval(iv)
        assert tx._interval_sources == {}


class TestHostStream:
    def test_cycles_host_buffer(self):
        tx = TransmitController(waveform=JamWaveform.HOST_STREAM,
                                uptime_samples=10)
        host = np.array([1, 2, 3, 4], dtype=complex)
        tx.set_host_waveform(host)
        iv = tx.schedule([0])[0]
        _o, wave = tx.synthesize(iv, 0, 20)
        expected = np.array([1, 2, 3, 4, 1, 2, 3, 4, 1, 2], dtype=complex)
        assert np.allclose(wave, expected)

    def test_missing_host_buffer_radiates_silence(self):
        # An un-filled hardware FIFO transmits zeros; it must never
        # crash the data path (found by register fuzzing).
        tx = TransmitController(waveform=JamWaveform.HOST_STREAM,
                                uptime_samples=4)
        iv = tx.schedule([0])[0]
        _off, wave = tx.synthesize(iv, 0, 10)
        assert wave.size == 4
        assert not wave.any()


class TestReset:
    def test_reset_aborts_busy_state(self):
        tx = TransmitController(uptime_samples=1000)
        tx.schedule([100])
        tx.reset()
        assert tx.schedule([150]) != []
