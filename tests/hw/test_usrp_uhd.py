"""Tests for the USRP N210 device model and the UHD-like driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import ConfigurationError, HardwareError
from repro.hw import register_map as regmap
from repro.hw.cross_correlator import quantize_coefficients
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import (
    SBX_FREQ_MAX_HZ,
    SBX_FREQ_MIN_HZ,
    SbxFrontend,
    UsrpN210,
)


@pytest.fixture
def template(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, 64))


@pytest.fixture
def rig(template):
    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_correlator_template(template)
    driver.set_xcorr_threshold(30_000)
    driver.set_trigger_stages([TriggerSource.XCORR])
    driver.set_jam_waveform(JamWaveform.WGN)
    driver.set_jam_uptime(100)
    driver.set_control(jammer_enabled=True)
    return device, driver


class TestSbxFrontend:
    def test_defaults_to_wifi_channel_14(self):
        fe = SbxFrontend()
        assert fe.center_freq_hz == pytest.approx(2.484e9)

    def test_tune_range(self):
        fe = SbxFrontend()
        fe.tune(2.608e9)  # the WiMAX experiment frequency
        assert fe.center_freq_hz == pytest.approx(2.608e9)
        with pytest.raises(HardwareError):
            fe.tune(SBX_FREQ_MIN_HZ - 1)
        with pytest.raises(HardwareError):
            fe.tune(SBX_FREQ_MAX_HZ + 1)

    def test_gain_limits(self):
        fe = SbxFrontend()
        fe.set_tx_gain(31.5)
        fe.set_rx_gain(0.0)
        with pytest.raises(HardwareError):
            fe.set_tx_gain(32.0)
        with pytest.raises(HardwareError):
            fe.set_rx_gain(-1.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(HardwareError):
            SbxFrontend(center_freq_hz=100e6)


class TestUsrpDevice:
    def test_full_duplex_detect_and_jam(self, rng, rig, template):
        device, _driver = rig
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        out = device.run(rx)
        assert len(out.jams) == 1
        assert np.any(np.abs(out.tx) > 0)

    def test_chunk_size_invariance(self, rng, template):
        rx = awgn(5000, 1e-6, rng)
        rx[1000:1064] += template

        def build():
            device = UsrpN210()
            driver = UhdDriver(device)
            driver.set_correlator_template(template)
            driver.set_xcorr_threshold(30_000)
            driver.set_trigger_stages([TriggerSource.XCORR])
            driver.set_jam_uptime(100)
            driver.set_control(True)
            return device

        a = build().run(rx, chunk_size=100)
        b = build().run(rx, chunk_size=4096)
        assert np.allclose(a.tx, b.tx)

    def test_tx_digital_gain(self, rng, rig, template):
        device, _ = rig
        device.set_tx_amplitude_db(-20.0)
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        out = device.run(rx)
        burst = out.tx[np.abs(out.tx) > 0]
        assert np.mean(np.abs(burst) ** 2) == pytest.approx(0.01, rel=0.2)

    def test_bad_chunk_size(self, rig):
        device, _ = rig
        with pytest.raises(ConfigurationError):
            device.run(np.zeros(10, dtype=complex), chunk_size=0)


class TestUhdDriver:
    def test_template_ships_over_register_bus(self, rig, template):
        device, driver = rig
        ci, cq = quantize_coefficients(template)
        got_i, got_q = device.core.correlator.coefficients
        assert np.array_equal(got_i, ci)
        assert np.array_equal(got_q, cq)

    def test_register_write_accounting(self, rig):
        _device, driver = rig
        # 14 coefficient words + threshold + trigger + waveform +
        # uptime + control = 19 writes at minimum.
        assert driver.register_writes() >= 19

    def test_energy_thresholds(self, rig):
        device, driver = rig
        driver.set_energy_thresholds(15.0, 5.0)
        assert device.core.energy.threshold_high_db == pytest.approx(15.0)
        assert device.core.energy.threshold_low_db == pytest.approx(5.0)

    def test_jam_uptime_seconds(self, rig):
        device, driver = rig
        driver.set_jam_uptime_seconds(1e-4)
        assert device.core.tx.uptime_samples == 2500

    def test_jam_delay_seconds(self, rig):
        device, driver = rig
        driver.set_jam_delay_seconds(4e-6)
        assert device.core.tx.delay_samples == 100

    def test_uptime_bounds(self, rig):
        _device, driver = rig
        with pytest.raises(ConfigurationError):
            driver.set_jam_uptime(0)

    def test_uptime_saturates_at_the_hardware_maximum(self, rig):
        from repro.hw.tx_controller import MAX_UPTIME_SAMPLES

        device, driver = rig
        # Oversized requests clip (the register map's "clipped to
        # 2^32 - 1 by the bus width" contract) instead of raising.
        driver.set_jam_uptime(regmap.JAM_UPTIME_MAX + 12345)
        assert device.core.tx.uptime_samples == MAX_UPTIME_SAMPLES
        assert device.bus.read(regmap.REG_JAM_UPTIME) == MAX_UPTIME_SAMPLES

    def test_uptime_at_exact_maximum(self, rig):
        from repro.hw.tx_controller import MAX_UPTIME_SAMPLES

        device, driver = rig
        driver.set_jam_uptime(MAX_UPTIME_SAMPLES)
        assert device.core.tx.uptime_samples == MAX_UPTIME_SAMPLES

    def test_trigger_stage_count_validation(self, rig):
        _device, driver = rig
        with pytest.raises(ConfigurationError):
            driver.set_trigger_stages([])
        with pytest.raises(ConfigurationError):
            driver.set_trigger_stages([TriggerSource.XCORR] * 4)

    def test_multi_stage_needs_window_in_sequence_mode(self, rig):
        _device, driver = rig
        with pytest.raises(ConfigurationError):
            driver.set_trigger_stages(
                [TriggerSource.ENERGY_HIGH, TriggerSource.XCORR])

    def test_any_mode_without_window(self, rig):
        device, driver = rig
        driver.set_trigger_stages(
            [TriggerSource.ENERGY_HIGH, TriggerSource.XCORR],
            mode=TriggerMode.ANY)
        assert device.core.fsm.mode is TriggerMode.ANY

    def test_antenna_bits(self, rig):
        device, driver = rig
        driver.set_control(True, False, antenna_bits=0x3C)
        assert device.core.antenna_bits == 0x3C
        with pytest.raises(ConfigurationError):
            driver.set_control(True, False, antenna_bits=0x100)

    def test_feedback_counters(self, rng, rig, template):
        device, driver = rig
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        device.run(rx)
        assert driver.detection_counts()[TriggerSource.XCORR] == 1
        assert driver.jam_count() == 1

    def test_personality_swap_without_reprogramming(self, rng, rig, template):
        # Paper §4.3: all jammer types realized at runtime on one
        # hardware instantiation via register writes only.
        device, driver = rig
        rx = awgn(2000, 1e-6, rng)
        rx[500:564] += template
        out1 = device.run(rx)
        assert len(out1.jams) == 1
        device.core.reset()
        driver.set_control(jammer_enabled=True, continuous=True)
        out2 = device.run(rx)
        assert np.all(np.abs(out2.tx) > 0)  # now continuous
        device.core.reset()
        driver.set_control(jammer_enabled=True, continuous=False)
        driver.set_jam_uptime(250)
        out3 = device.run(rx)
        assert len(out3.jams) == 1
        assert out3.jams[0].end - out3.jams[0].start == 250


class TestControlPlaneRegressions:
    """Register-programming bugs fixed alongside the hardening work."""

    def test_reprogram_to_single_stage_clears_stale_window(self, rig):
        device, driver = rig
        driver.set_trigger_stages(
            [TriggerSource.ENERGY_HIGH, TriggerSource.XCORR],
            window_samples=500)
        assert device.bus.read(regmap.REG_TRIGGER_WINDOW) == 500
        # Dropping back to one stage with the default window=0 must
        # clear the hardware register, not leave 500 behind.
        driver.set_trigger_stages([TriggerSource.XCORR])
        assert device.bus.read(regmap.REG_TRIGGER_WINDOW) == 0
        assert device.core.fsm.window_samples == 0

    def test_replay_length_bounds_rejected(self, rig):
        _device, driver = rig
        with pytest.raises(ConfigurationError):
            driver.set_replay_length(0)
        with pytest.raises(ConfigurationError):
            driver.set_replay_length(513)
        driver.set_replay_length(512)  # the exact maximum is legal

    def test_oversized_wgn_seed_rejected_not_masked(self, rig):
        device, driver = rig
        with pytest.raises(ConfigurationError):
            driver.set_jam_waveform(JamWaveform.WGN, wgn_seed=1 << 30)
        # The register was not touched by the rejected call.
        before = device.bus.read(regmap.REG_JAM_WAVEFORM)
        driver.set_jam_waveform(JamWaveform.WGN, wgn_seed=(1 << 30) - 1)
        after = device.bus.read(regmap.REG_JAM_WAVEFORM)
        assert after >> regmap.WGN_SEED_SHIFT == (1 << 30) - 1
        assert before != after
