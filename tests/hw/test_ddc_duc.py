"""Tests for the DDC and DUC chain models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.hw.ddc import DigitalDownConverter
from repro.hw.duc import DigitalUpConverter


class TestDdc:
    def test_unity_gain_quantizes_only(self, rng):
        ddc = DigitalDownConverter(rx_gain_db=0.0)
        x = 0.2 * (rng.standard_normal(256) + 1j * rng.standard_normal(256))
        x = np.clip(x.real, -0.99, 0.99) + 1j * np.clip(x.imag, -0.99, 0.99)
        out = ddc.process(x)
        assert np.max(np.abs(out - x)) < 1 / 32768

    def test_gain_applied_before_quantization(self):
        ddc = DigitalDownConverter(rx_gain_db=20.0)
        x = np.full(16, 0.01 + 0j)
        out = ddc.process(x)
        assert np.allclose(out.real, 0.1, atol=1e-4)

    def test_saturation_at_full_scale(self):
        ddc = DigitalDownConverter(rx_gain_db=40.0)
        x = np.full(16, 0.5 + 0.5j)
        out = ddc.process(x)
        assert np.all(out.real <= 1.0)
        assert np.all(out.imag <= 1.0)

    def test_filtered_variant_runs(self, rng):
        ddc = DigitalDownConverter(rx_gain_db=0.0, use_filter=True)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        out = ddc.process(x)
        assert out.size == 512
        ddc.reset()

    def test_rejects_2d(self):
        with pytest.raises(StreamError):
            DigitalDownConverter().process(np.zeros((2, 2)))


class TestDuc:
    def test_unity_gain(self, rng):
        duc = DigitalUpConverter(tx_gain_db=0.0)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        assert np.allclose(duc.process(x), x)

    def test_attenuation(self):
        duc = DigitalUpConverter(tx_gain_db=-20.0)
        x = np.ones(8, dtype=complex)
        assert np.allclose(duc.process(x), 0.1)

    def test_gain(self):
        duc = DigitalUpConverter(tx_gain_db=6.0)
        x = np.ones(8, dtype=complex)
        assert np.allclose(np.abs(duc.process(x)), 10 ** 0.3)

    def test_rejects_2d(self):
        with pytest.raises(StreamError):
            DigitalUpConverter().process(np.zeros((2, 2)))
