"""Tests for the energy differentiator (paper Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.hw.energy_differentiator import (
    DEFAULT_DELAY,
    DEFAULT_WINDOW,
    EnergyDifferentiator,
    THRESHOLD_MAX_DB,
    THRESHOLD_MIN_DB,
)


def reference_sums(signal: np.ndarray, window: int) -> np.ndarray:
    energy = np.abs(signal) ** 2
    out = np.zeros(signal.size)
    for n in range(signal.size):
        out[n] = np.sum(energy[max(0, n - window + 1):n + 1])
    return out


class TestConfiguration:
    def test_paper_defaults(self):
        det = EnergyDifferentiator()
        assert det.window == DEFAULT_WINDOW == 32
        assert det.delay == DEFAULT_DELAY == 64

    def test_threshold_range_enforced(self):
        det = EnergyDifferentiator()
        with pytest.raises(ConfigurationError):
            det.threshold_high_db = THRESHOLD_MIN_DB - 0.1
        with pytest.raises(ConfigurationError):
            det.threshold_low_db = THRESHOLD_MAX_DB + 0.1

    def test_threshold_extremes_allowed(self):
        det = EnergyDifferentiator(threshold_high_db=3.0, threshold_low_db=30.0)
        assert det.threshold_high_db == 3.0
        assert det.threshold_low_db == 30.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            EnergyDifferentiator(window=0)
        with pytest.raises(ConfigurationError):
            EnergyDifferentiator(delay=0)


class TestEnergySums:
    def test_matches_reference(self, rng):
        det = EnergyDifferentiator()
        x = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        assert np.allclose(det.energy_sums(x), reference_sums(x, 32))

    def test_chunked_equals_single_shot(self, rng):
        x = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        whole = EnergyDifferentiator().energy_sums(x)
        det = EnergyDifferentiator()
        parts = [det.energy_sums(x[i:i + 73]) for i in range(0, 500, 73)]
        assert np.allclose(np.concatenate(parts), whole)

    def test_rejects_2d(self):
        with pytest.raises(StreamError):
            EnergyDifferentiator().energy_sums(np.zeros((2, 3)))

    def test_empty_chunk(self):
        det = EnergyDifferentiator()
        high, low = det.process(np.zeros(0, dtype=complex))
        assert high.size == 0 and low.size == 0


class TestTriggers:
    def test_detects_energy_rise(self, rng):
        det = EnergyDifferentiator(threshold_high_db=10.0)
        quiet = 0.01 * (rng.standard_normal(300) + 1j * rng.standard_normal(300))
        loud = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        det.process(quiet)  # charge history with the quiet floor
        high, _low = det.process(np.concatenate([quiet[:100], loud]))
        assert high.any()
        first = int(np.flatnonzero(high)[0])
        # Rise detected within one moving-sum window of the step.
        assert 100 <= first <= 100 + det.window

    def test_detects_energy_fall(self, rng):
        det = EnergyDifferentiator(threshold_low_db=10.0)
        loud = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        quiet = 0.01 * (rng.standard_normal(300) + 1j * rng.standard_normal(300))
        det.process(loud)
        _high, low = det.process(quiet)
        assert low.any()

    def test_no_trigger_on_steady_signal(self, rng):
        det = EnergyDifferentiator(threshold_high_db=10.0, threshold_low_db=10.0)
        x = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        det.process(x[:500])  # consume the cold-start rise
        high, low = det.process(x[500:])
        assert not high.any()
        assert not low.any()

    def test_small_rise_below_threshold_ignored(self, rng):
        det = EnergyDifferentiator(threshold_high_db=10.0)
        base = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        det.process(base)
        # 6 dB step < 10 dB threshold
        high, _ = det.process(2.0 * (rng.standard_normal(300)
                                     + 1j * rng.standard_normal(300)))
        assert not high.any()

    def test_rise_above_threshold_fires(self, rng):
        det = EnergyDifferentiator(threshold_high_db=10.0)
        base = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        det.process(base)
        # 14 dB step > 10 dB threshold
        high, _ = det.process(5.0 * (rng.standard_normal(300)
                                     + 1j * rng.standard_normal(300)))
        assert high.any()

    def test_detection_latency_within_window(self):
        # T_en_det: at most `window` samples (32 samples = 1.28 us).
        det = EnergyDifferentiator(threshold_high_db=10.0)
        quiet = np.full(200, 0.001 + 0j)
        det.process(quiet)
        step = np.full(100, 1.0 + 0j)
        high, _ = det.process(step)
        first = int(np.flatnonzero(high)[0])
        assert first < det.window

    def test_reset_clears_history(self, rng):
        det = EnergyDifferentiator(threshold_high_db=10.0)
        loud = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        det.process(loud)
        det.reset()
        # After reset the detector behaves like a cold start: the same
        # loud signal causes a fresh rise trigger.
        high, _ = det.process(loud)
        assert high.any()

    def test_threshold_reconfigurable_at_runtime(self, rng):
        det = EnergyDifferentiator(threshold_high_db=30.0)
        base = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        det.process(base)
        step = 5.0 * (rng.standard_normal(200) + 1j * rng.standard_normal(200))
        high, _ = det.process(step)
        assert not high.any()  # 14 dB rise < 30 dB threshold
        det2 = EnergyDifferentiator(threshold_high_db=30.0)
        det2.process(base)
        det2.threshold_high_db = 10.0
        high2, _ = det2.process(step)
        assert high2.any()
