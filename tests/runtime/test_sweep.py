"""Tests for the deterministic sweep engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.runtime.sweep import (
    CHUNKS_COUNTER,
    TASKS_COUNTER,
    WORKERS_GAUGE,
    SweepRunner,
    sweep,
)
from repro.telemetry import Telemetry


def _draw(point, rng: np.random.Generator):
    """Module-level trial fn (workers pickle it by reference)."""
    return (point, float(rng.random()))


def _sum_noise(point, rng: np.random.Generator):
    return float(point) + float(np.sum(rng.standard_normal(64)))


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(chunk_size=0)

    def test_trials_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner().sweep(_draw, [1], trials=0)

    def test_empty_grid_returns_empty(self):
        assert SweepRunner().sweep(_draw, []) == []


class TestSerialPath:
    def test_shape_is_points_by_trials(self):
        out = sweep(_draw, ["a", "b", "c"], trials=4)
        assert len(out) == 3
        assert all(len(group) == 4 for group in out)

    def test_results_grouped_by_point_in_order(self):
        out = sweep(_draw, [10, 20], trials=3)
        assert [r[0] for r in out[0]] == [10, 10, 10]
        assert [r[0] for r in out[1]] == [20, 20, 20]

    def test_seeding_discipline_is_flat_grid_position(self):
        # Trial (p, t) must draw from default_rng(seed_root + p*trials + t).
        out = sweep(_draw, ["x", "y"], trials=2, seed_root=100)
        expected = [float(np.random.default_rng(100 + i).random())
                    for i in range(4)]
        got = [r[1] for group in out for r in group]
        assert got == expected

    def test_progress_reports_every_task(self):
        seen = []
        SweepRunner(progress=lambda done, total: seen.append((done, total))) \
            .sweep(_draw, [1, 2], trials=3)
        assert seen == [(i, 6) for i in range(1, 7)]


class TestParallelPath:
    def test_parallel_is_byte_identical_to_serial(self):
        serial = sweep(_sum_noise, [0.0, 1.0, 2.0], trials=5, seed_root=7)
        parallel = sweep(_sum_noise, [0.0, 1.0, 2.0], trials=5, seed_root=7,
                         workers=4)
        assert parallel == serial  # exact float equality, exact ordering

    def test_parallel_independent_of_chunk_size(self):
        runs = [sweep(_sum_noise, [0.0, 1.0], trials=6, seed_root=3,
                      workers=3, chunk_size=size)
                for size in (1, 2, 5, 100)]
        assert all(run == runs[0] for run in runs)

    def test_parallel_progress_monotone_and_complete(self):
        seen = []
        sweep(_draw, [1, 2, 3], trials=4, workers=2, chunk_size=2,
              progress=lambda done, total: seen.append((done, total)))
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)
        assert seen[-1] == (12, 12)

    def test_trial_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            sweep(_divide, [0], trials=1, workers=2)

    def test_worker_death_raises_typed_crash_error(self):
        # A worker dying mid-chunk (segfault/OOM-kill model) must not
        # surface as a bare BrokenProcessPool: the typed error names
        # the in-flight trial indices so the caller knows what was
        # lost — and points at repro.runtime.jobs for the sweeps that
        # must survive it.
        with pytest.raises(WorkerCrashError) as excinfo:
            sweep(_die, list(range(8)), trials=1, workers=2, chunk_size=2)
        assert excinfo.value.trial_indices  # non-empty, sorted grid indices
        assert list(excinfo.value.trial_indices) \
            == sorted(excinfo.value.trial_indices)
        assert "repro.runtime.jobs" in str(excinfo.value)


def _divide(point, rng):
    return 1 / point


def _die(point, rng):
    import os

    os._exit(137)


class TestTelemetry:
    def test_counters_fold_into_attached_registry(self):
        telemetry = Telemetry()
        sweep(_draw, [1, 2, 3], trials=4, workers=2, chunk_size=3,
              telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"][TASKS_COUNTER] == 12
        assert snapshot["counters"][CHUNKS_COUNTER] == 4
        assert snapshot["gauges"][WORKERS_GAUGE] == 2

    def test_derived_chunking_bounds_ipc(self):
        telemetry = Telemetry()
        # 64 tasks over 2 workers: default chunking must submit far
        # fewer than 64 chunks (CHUNKS_PER_WORKER slack per worker).
        sweep(_draw, list(range(16)), trials=4, workers=2,
              telemetry=telemetry)
        chunks = telemetry.metrics.snapshot()["counters"][CHUNKS_COUNTER]
        assert chunks <= 2 * 4 + 1
