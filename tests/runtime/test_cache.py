"""Tests for the content-addressed artifact cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.cache import (
    CORRUPT_COUNTER,
    EVICTIONS_COUNTER,
    HITS_COUNTER,
    MISSES_COUNTER,
    ArtifactCache,
    cache_key,
    cached_artifact,
    freeze_artifact,
)
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class _Config:
    name: str
    length: int
    scale: float


class _Mode(enum.Enum):
    FAST = 1
    SLOW = 2


class TestCacheKey:
    def test_stable_for_equal_inputs(self):
        a = cache_key("mod", "fn", (_Config("x", 3, 1.5),))
        b = cache_key("mod", "fn", (_Config("x", 3, 1.5),))
        assert a == b

    def test_type_tags_distinguish_scalars(self):
        # 1, 1.0, and True are == in python; their keys must differ.
        keys = {cache_key(1), cache_key(1.0), cache_key(True)}
        assert len(keys) == 3

    def test_field_changes_change_key(self):
        base = cache_key(_Config("x", 3, 1.5))
        assert cache_key(_Config("x", 4, 1.5)) != base
        assert cache_key(_Config("y", 3, 1.5)) != base

    def test_array_content_dtype_and_shape_matter(self):
        flat = np.arange(6, dtype=np.int64)
        base = cache_key(flat)
        assert cache_key(flat.astype(np.int32)) != base
        assert cache_key(flat.reshape(2, 3)) != base
        bumped = flat.copy()
        bumped[0] += 1
        assert cache_key(bumped) != base

    def test_containers_enums_and_none(self):
        assert cache_key([1, 2]) != cache_key((1, 2))
        assert cache_key(_Mode.FAST) != cache_key(_Mode.SLOW)
        assert cache_key(None) != cache_key("")
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_unkeyable_type_rejected(self):
        with pytest.raises(ConfigurationError):
            cache_key(object())


class TestFreezeArtifact:
    def test_arrays_come_back_read_only(self):
        frozen = freeze_artifact(np.zeros(4))
        with pytest.raises(ValueError):
            frozen[0] = 1.0

    def test_containers_freeze_element_wise(self):
        frozen = freeze_artifact([np.zeros(2), np.ones(2)])
        assert isinstance(frozen, tuple)
        for item in frozen:
            assert not item.flags.writeable

    def test_scalars_pass_through(self):
        assert freeze_artifact(7) == 7
        assert freeze_artifact("x") == "x"


class TestArtifactCache:
    def test_miss_builds_then_hit_reuses(self):
        cache = ArtifactCache()
        builds = []

        def build():
            builds.append(1)
            return np.arange(8)

        first = cache.get_or_build("k", build)
        second = cache.get_or_build("k", build)
        assert first is second
        assert len(builds) == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_clear_forces_rebuild_but_keeps_counters(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1)
        cache.get_or_build("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_build("k", lambda: 2)
        assert cache.misses == 2
        assert cache.hits == 1

    def test_stats_shape(self):
        cache = ArtifactCache()
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_attach_metrics_folds_backlog_and_live_counts(self):
        cache = ArtifactCache()
        cache.get_or_build("a", lambda: 1)   # miss before attach
        cache.get_or_build("a", lambda: 1)   # hit before attach
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        cache.get_or_build("a", lambda: 1)   # hit after attach
        cache.get_or_build("b", lambda: 2)   # miss after attach
        counters = registry.snapshot()["counters"]
        assert counters[HITS_COUNTER] == cache.hits == 2
        assert counters[MISSES_COUNTER] == cache.misses == 2
        # Detaching stops the folding without touching local counters.
        cache.attach_metrics(None)
        cache.get_or_build("a", lambda: 1)
        assert registry.snapshot()["counters"][HITS_COUNTER] == 2
        assert cache.hits == 3


class TestEviction:
    def test_bound_is_enforced_oldest_first(self):
        cache = ArtifactCache(max_entries=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("c", lambda: 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was the LRU entry: rebuilding it is a miss.
        cache.get_or_build("a", lambda: 1)
        assert cache.misses == 4

    def test_hit_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)   # touch: "b" is now oldest
        cache.get_or_build("c", lambda: 3)   # evicts "b", not "a"
        assert cache.get_or_build("a", lambda: 99) == 1
        cache.get_or_build("b", lambda: 2)
        assert cache.misses == 4  # a, b, c, then b again

    def test_unbounded_cache_never_evicts(self):
        cache = ArtifactCache(max_entries=None)
        for k in range(64):
            cache.get_or_build(str(k), lambda k=k: k)
        assert len(cache) == 64
        assert cache.evictions == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            ArtifactCache(max_entries=0)

    def test_eviction_counter_reaches_metrics(self):
        cache = ArtifactCache(max_entries=1)
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        counters = registry.snapshot()["counters"]
        assert counters[EVICTIONS_COUNTER] == cache.evictions == 1


class TestCorruptEntries:
    def test_unfrozen_array_treated_as_miss_and_rebuilt(self):
        cache = ArtifactCache()
        first = cache.get_or_build("k", lambda: np.arange(4))
        # Strip the read-only freeze — the precondition for silent
        # mutation, e.g. a consumer that called setflags on the shared
        # artifact.  The next lookup must refuse to serve it.
        first.setflags(write=True)
        second = cache.get_or_build("k", lambda: np.arange(4))
        assert second is not first
        assert not second.flags.writeable
        assert cache.corrupt == 1
        assert cache.hits == 0
        assert cache.misses == 2

    def test_truncated_container_treated_as_miss(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: [np.zeros(2), np.ones(2)])
        # Simulate a half-written artifact: replace the stored tuple
        # with a shorter one behind the fingerprint's back.
        value, stamp = cache._store["k"]
        cache._store["k"] = (value[:1], stamp)
        rebuilt = cache.get_or_build("k", lambda: [np.zeros(2), np.ones(2)])
        assert len(rebuilt) == 2
        assert cache.corrupt == 1

    def test_corrupt_counter_reaches_metrics_and_stats(self):
        cache = ArtifactCache()
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        built = cache.get_or_build("k", lambda: np.arange(3))
        built.setflags(write=True)
        cache.get_or_build("k", lambda: np.arange(3))
        assert registry.snapshot()["counters"][CORRUPT_COUNTER] == 1
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["evictions"] == 0
        assert stats["max_entries"] == cache.max_entries


class TestCachedArtifact:
    def test_memoizes_per_argument_set(self):
        calls = []

        @cached_artifact
        def build(n: int) -> np.ndarray:
            calls.append(n)
            return np.arange(n, dtype=np.float64)

        a = build(5)
        b = build(5)
        c = build(6)
        assert a is b
        assert c.size == 6
        assert calls == [5, 6]
        assert not a.flags.writeable

    def test_kwargs_and_positional_spell_different_keys_consistently(self):
        calls = []

        @cached_artifact
        def build(n: int = 3) -> int:
            calls.append(n)
            return n * 2

        assert build(4) == build(4) == 8
        assert build(n=4) == 8
        # Positional and keyword spellings key separately (by design:
        # the key is the literal call shape), but each is stable.
        assert calls == [4, 4]
