"""Tests for the fault-tolerant job layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError, WorkerCrashError
from repro.faults.workers import WorkerFaultInjector, WorkerFaultPlan
from repro.runtime.jobs import (
    CHECKPOINT_HITS_COUNTER,
    CRASHES_COUNTER,
    RETRIES_COUNTER,
    RUNS_COUNTER,
    ResilienceConfig,
    ResilientSweepRunner,
    STRICT_RESILIENCE,
    ShardCheckpoint,
    SweepHealth,
    WorkerSupervisor,
    last_sweep_health,
    resilient_sweep,
    shard_key,
)
from repro.runtime.sweep import build_tasks, sweep
from repro.telemetry import Telemetry

#: A fast retry policy so injected-failure tests don't sleep.
FAST = dict(backoff_base_s=0.0, backoff_cap_s=0.0)


def _sum_noise(point, rng: np.random.Generator):
    """Module-level trial fn (workers pickle it by reference)."""
    return float(point) + float(np.sum(rng.standard_normal(64)))


def _boom(point, rng):
    raise ValueError("always fails")


def _misconfigured(point, rng):
    raise ConfigurationError("wrong on every attempt")


class _Opaque:
    """A point type the canonical key tokenizer cannot encode."""

    def __init__(self, tag: int) -> None:
        self.tag = tag


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_base_s=1.0, backoff_cap_s=0.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(shard_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(quarantine_limit=-1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_inflight_per_worker=0)

    def test_runner_bounds(self):
        with pytest.raises(ConfigurationError):
            ResilientSweepRunner(workers=0)
        with pytest.raises(ConfigurationError):
            ResilientSweepRunner(chunk_size=0)
        with pytest.raises(ConfigurationError):
            resilient_sweep(_sum_noise, [1.0], trials=0)

    def test_empty_grid(self):
        assert resilient_sweep(_sum_noise, []) == []


class TestIdentity:
    def test_serial_matches_plain_sweep(self):
        reference = sweep(_sum_noise, [0.0, 1.0, 2.0], trials=5, seed_root=7)
        hardened = resilient_sweep(_sum_noise, [0.0, 1.0, 2.0], trials=5,
                                   seed_root=7)
        assert hardened == reference  # exact float equality

    def test_parallel_matches_plain_sweep(self):
        reference = sweep(_sum_noise, [0.0, 1.0, 2.0], trials=4, seed_root=3)
        hardened = resilient_sweep(_sum_noise, [0.0, 1.0, 2.0], trials=4,
                                   seed_root=3, workers=2)
        assert hardened == reference

    def test_identity_survives_injected_serial_kills(self):
        reference = sweep(_sum_noise, [0.0, 1.0], trials=4, seed_root=5)
        plan = WorkerFaultPlan(seed=1).kill_shards([0, 1])
        hardened = resilient_sweep(
            _sum_noise, [0.0, 1.0], trials=4, seed_root=5,
            config=ResilienceConfig(**FAST),
            fault_injector=WorkerFaultInjector(plan))
        health = last_sweep_health()
        assert health.crashes == 2
        assert health.retries == 2
        assert health.ok
        assert hardened == reference


class TestRetryAndQuarantine:
    def test_poison_shard_quarantined_when_budget_allows(self):
        # chunk_size=2 over 4 tasks -> shard 0 = tasks 0,1; shard 1 = 2,3.
        plan = WorkerFaultPlan(seed=0).kill_shards([0], attempts=None)
        runner = ResilientSweepRunner(
            chunk_size=2,
            config=ResilienceConfig(max_attempts=2, quarantine_limit=1,
                                    **FAST),
            fault_injector=WorkerFaultInjector(plan))
        out = runner.sweep(_sum_noise, [10.0, 20.0, 30.0, 40.0])
        assert [group[0] for group in out[:2]] == [None, None]
        assert all(group[0] is not None for group in out[2:])
        assert runner.health.quarantined == [0]
        assert runner.health.shard_attempts[0] == 2
        assert not runner.health.ok

    def test_exhausted_budget_with_zero_quarantine_raises(self):
        plan = WorkerFaultPlan(seed=0).kill_shards([1], attempts=None)
        runner = ResilientSweepRunner(
            chunk_size=2,
            config=ResilienceConfig(max_attempts=2, quarantine_limit=0,
                                    **FAST),
            fault_injector=WorkerFaultInjector(plan))
        with pytest.raises(WorkerCrashError) as excinfo:
            runner.sweep(_sum_noise, [1.0, 2.0, 3.0, 4.0])
        assert excinfo.value.trial_indices == (2, 3)

    def test_generic_exceptions_burn_the_retry_budget(self):
        runner = ResilientSweepRunner(
            config=ResilienceConfig(max_attempts=3, quarantine_limit=None,
                                    **FAST))
        out = runner.sweep(_boom, [1.0])
        assert out == [[None]]
        assert runner.health.shard_attempts[0] == 3
        assert runner.health.retries == 2

    def test_configuration_errors_are_not_retried(self):
        runner = ResilientSweepRunner(config=ResilienceConfig(**FAST))
        with pytest.raises(ConfigurationError):
            runner.sweep(_misconfigured, [1.0])
        assert runner.health.retries == 0


class TestBackoff:
    def test_backoff_is_deterministic_and_capped(self):
        sup = WorkerSupervisor(
            workers=1, seed_root=9,
            config=ResilienceConfig(backoff_base_s=0.1, backoff_cap_s=0.3))
        tasks = build_tasks([1.0], 1, 0)
        for attempts in range(1, 8):
            from repro.runtime.jobs import _Shard

            shard = _Shard(index=4, tasks=tasks, attempts=attempts)
            first = sup._backoff_s(shard)
            again = sup._backoff_s(shard)
            assert first == again  # pure in (seed_root, index, attempts)
            assert 0.0 <= first <= 0.3 * 1.5  # cap * max jitter

    def test_jitter_varies_across_shards(self):
        sup = WorkerSupervisor(
            workers=1, seed_root=9,
            config=ResilienceConfig(backoff_base_s=0.1, backoff_cap_s=10.0))
        from repro.runtime.jobs import _Shard

        tasks = build_tasks([1.0], 1, 0)
        delays = {sup._backoff_s(_Shard(index=i, tasks=tasks, attempts=1))
                  for i in range(8)}
        assert len(delays) > 1


class TestCheckpoint:
    def test_second_run_replays_everything_from_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        config = ResilienceConfig(checkpoint_path=journal, **FAST)
        first = resilient_sweep(_sum_noise, [0.0, 1.0], trials=4,
                                seed_root=11, chunk_size=2, config=config)
        cold = last_sweep_health()
        assert cold.checkpoint_hits == 0

        second = resilient_sweep(_sum_noise, [0.0, 1.0], trials=4,
                                 seed_root=11, chunk_size=2, config=config)
        warm = last_sweep_health()
        assert warm.checkpoint_hits == warm.total_shards == 4
        assert warm.ok
        assert second == first

    def test_resume_false_reexecutes_but_still_records(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        on = ResilienceConfig(checkpoint_path=journal, **FAST)
        off = ResilienceConfig(checkpoint_path=journal, resume=False, **FAST)
        resilient_sweep(_sum_noise, [0.0], trials=2, seed_root=1, config=on)
        resilient_sweep(_sum_noise, [0.0], trials=2, seed_root=1, config=off)
        assert last_sweep_health().checkpoint_hits == 0

    def test_different_grid_misses_the_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        config = ResilienceConfig(checkpoint_path=journal, **FAST)
        resilient_sweep(_sum_noise, [0.0], trials=2, seed_root=1,
                        config=config)
        resilient_sweep(_sum_noise, [99.0], trials=2, seed_root=1,
                        config=config)
        assert last_sweep_health().checkpoint_hits == 0

    def test_corrupt_tail_line_is_skipped_not_trusted(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        config = ResilienceConfig(checkpoint_path=journal, **FAST)
        resilient_sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=2,
                        chunk_size=2, config=config)
        # Simulate a torn write: truncate the last journal line mid-payload.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1] + [lines[-1][:40]]) + "\n")
        reference = sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=2)
        resumed = resilient_sweep(_sum_noise, [0.0, 1.0], trials=2,
                                  seed_root=2, chunk_size=2, config=config)
        health = last_sweep_health()
        assert health.checkpoint_corrupt_entries == 1
        assert health.checkpoint_hits == 1  # only the intact shard replays
        assert resumed == reference

    def test_unwritable_journal_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            ShardCheckpoint(tmp_path)  # a directory, not a file

    def test_journal_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        rows = [(0, ("x", 1.5)), (1, ("y", -2.0))]
        with ShardCheckpoint(path) as journal:
            journal.record("k1", 0, 1, rows)
        reloaded = ShardCheckpoint(path)
        assert reloaded.get("k1") == rows
        assert "k1" in reloaded
        assert len(reloaded) == 1
        assert reloaded.corrupt_entries == 0
        reloaded.close()


class TestShardKey:
    def test_stable_and_sensitive(self):
        tasks = build_tasks([1.0, 2.0], 2, 7)
        assert shard_key(_sum_noise, tasks) == shard_key(_sum_noise, tasks)
        assert shard_key(_boom, tasks) != shard_key(_sum_noise, tasks)
        other = build_tasks([1.0, 2.0], 2, 8)  # different seeds
        assert shard_key(_sum_noise, other) != shard_key(_sum_noise, tasks)

    def test_pickle_fallback_for_opaque_points(self):
        tasks = build_tasks([_Opaque(1)], 1, 0)
        key = shard_key(_sum_noise, tasks)
        assert key == shard_key(_sum_noise, tasks)
        assert key != shard_key(_sum_noise, build_tasks([_Opaque(2)], 1, 0))


class TestHealthAndTelemetry:
    def test_health_summary_mentions_the_counts(self):
        health = SweepHealth(total_shards=4, total_tasks=8,
                             completed_shards=3, completed_tasks=6,
                             checkpoint_hits=1, retries=2, crashes=1,
                             quarantined=[3], shard_attempts={3: 3},
                             checkpoint_corrupt_entries=1)
        text = health.summary()
        assert "3/4" in text
        assert "crashes: 1" in text
        assert "corrupt" in text
        assert not health.ok
        assert health.to_dict()["quarantined"] == [3]

    def test_metrics_folded_into_registry(self):
        telemetry = Telemetry()
        plan = WorkerFaultPlan(seed=1).kill_shards([0])
        resilient_sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=4,
                        chunk_size=2, telemetry=telemetry,
                        config=ResilienceConfig(**FAST),
                        fault_injector=WorkerFaultInjector(plan))
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters[RUNS_COUNTER] == 1
        assert counters[CRASHES_COUNTER] == 1
        assert counters[RETRIES_COUNTER] == 1
        assert counters.get(CHECKPOINT_HITS_COUNTER, 0) == 0

    def test_progress_reports_replayed_and_live_tasks(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        config = ResilienceConfig(checkpoint_path=journal, **FAST)
        resilient_sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=6,
                        chunk_size=2, config=config)
        seen = []
        resilient_sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=6,
                        chunk_size=2, config=config,
                        progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (4, 4)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


class TestPooledSupervision:
    def test_real_worker_kill_recovers_byte_identical(self):
        reference = sweep(_sum_noise, [0.0, 1.0, 2.0], trials=4, seed_root=13)
        plan = WorkerFaultPlan(seed=3).kill_shards([0])
        hardened = resilient_sweep(
            _sum_noise, [0.0, 1.0, 2.0], trials=4, seed_root=13, workers=2,
            config=ResilienceConfig(max_attempts=3, quarantine_limit=0,
                                    **FAST),
            fault_injector=WorkerFaultInjector(plan))
        health = last_sweep_health()
        assert health.crashes >= 1  # the kill, plus any collateral
        assert health.ok
        assert hardened == reference

    def test_hung_worker_detected_and_shard_retried(self):
        reference = sweep(_sum_noise, [0.0, 1.0], trials=2, seed_root=17)
        plan = WorkerFaultPlan(seed=5).hang_workers(
            1.0, duration_s=20.0, shard_indices=[0])
        hardened = resilient_sweep(
            _sum_noise, [0.0, 1.0], trials=2, seed_root=17, workers=2,
            chunk_size=2,
            config=ResilienceConfig(shard_deadline_s=0.4, quarantine_limit=0,
                                    **FAST),
            fault_injector=WorkerFaultInjector(plan))
        health = last_sweep_health()
        assert health.hangs >= 1
        assert health.ok
        assert hardened == reference


class TestStrictDefault:
    def test_strict_policy_never_quarantines(self):
        assert STRICT_RESILIENCE.quarantine_limit == 0
