"""Tests for the grow-only scratch buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.buffers import ScratchBuffer


class TestScratchBuffer:
    def test_view_has_requested_length_and_dtype(self):
        scratch = ScratchBuffer(np.int64)
        view = scratch.view(17)
        assert view.size == 17
        assert view.dtype == np.int64

    def test_grows_monotonically(self):
        scratch = ScratchBuffer(np.float64)
        scratch.view(8)
        assert scratch.capacity == 8
        assert scratch.grows == 1
        scratch.view(32)
        assert scratch.capacity == 32
        assert scratch.grows == 2
        # Shrinking requests never reallocate.
        scratch.view(4)
        scratch.view(32)
        assert scratch.capacity == 32
        assert scratch.grows == 2

    def test_steady_state_allocates_nothing(self):
        scratch = ScratchBuffer(np.float64)
        base = scratch.view(100)
        for _ in range(50):
            view = scratch.view(100)
            assert np.shares_memory(view, base)
        assert scratch.grows == 1

    def test_views_alias_storage(self):
        scratch = ScratchBuffer(np.int64)
        first = scratch.view(10)
        first[:] = 7
        second = scratch.view(5)
        assert np.all(second == 7)

    def test_zero_length_view(self):
        scratch = ScratchBuffer(np.complex128)
        assert scratch.view(0).size == 0
        assert scratch.grows == 0

    def test_negative_length_rejected(self):
        scratch = ScratchBuffer(np.int64)
        with pytest.raises(ConfigurationError):
            scratch.view(-1)
