"""Regression tests: parallelism and buffer reuse change nothing.

Two invariants guard the perf work in :mod:`repro.runtime`:

* a detection curve fanned out over ``workers=4`` is **byte-identical**
  (same floats, same ordering) to the serial ``workers=1`` reference —
  seeding depends only on grid position, never on scheduling;
* the chunked streaming path still matches single-shot processing for
  any chunk size after the scratch-buffer / preallocation rework.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.experiments.detection import (
    energy_detector_curve,
    long_preamble_curve,
)
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.trigger import TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210

#: A small Fig. 6 grid: two SNR points spanning the curve's knee, with
#: enough frames per point to exercise multiple trial batches.
SNRS_DB = [-3.0, 1.0]
N_FRAMES = 60


class TestSweepByteIdentity:
    def test_fig6_parallel_matches_serial_exactly(self):
        serial = long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                                     full_frames=False, workers=1)
        parallel = long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                                       full_frames=False, workers=4)
        assert parallel == serial  # frozen dataclasses: exact floats

    def test_fig8_parallel_matches_serial_exactly(self):
        serial = energy_detector_curve(SNRS_DB, n_frames=N_FRAMES,
                                       workers=1)
        parallel = energy_detector_curve(SNRS_DB, n_frames=N_FRAMES,
                                         workers=3)
        assert parallel == serial

    def test_curves_are_reproducible_across_calls(self):
        first = long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                                    full_frames=False, workers=2)
        second = long_preamble_curve(SNRS_DB, n_frames=N_FRAMES,
                                     full_frames=False, workers=2)
        assert first == second


def _rig(template: np.ndarray) -> UsrpN210:
    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_correlator_template(template)
    driver.set_xcorr_threshold(30_000)
    driver.set_trigger_stages([TriggerSource.XCORR])
    driver.set_jam_waveform(JamWaveform.WGN)
    driver.set_jam_uptime(100)
    driver.set_control(jammer_enabled=True)
    return device


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_size", [1, 37, 64, 997, 10_000])
    def test_usrp_run_matches_single_shot(self, rng, chunk_size):
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        rx = awgn(5000, 1e-6, rng)
        rx[1000:1064] += template
        rx[3000:3064] += template
        reference = _rig(template).run(rx, chunk_size=rx.size)
        chunked = _rig(template).run(rx, chunk_size=chunk_size)
        assert np.array_equal(reference.tx, chunked.tx)
        assert [d.time for d in reference.detections] \
            == [d.time for d in chunked.detections]

    @pytest.mark.parametrize("chunk_size", [1, 33, 64, 500])
    def test_correlator_scratch_reuse_matches_single_shot(self, rng,
                                                          chunk_size):
        template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        coeffs_i, coeffs_q = quantize_coefficients(template)
        signal = awgn(3000, 1.0, rng)
        whole = CrossCorrelator(coeffs_i, coeffs_q).metric(signal)
        streamed = CrossCorrelator(coeffs_i, coeffs_q)
        parts = [streamed.metric(signal[i:i + chunk_size])
                 for i in range(0, signal.size, chunk_size)]
        assert np.array_equal(whole, np.concatenate(parts))

    @pytest.mark.parametrize("chunk_size", [1, 17, 32, 400])
    def test_energy_scratch_reuse_matches_single_shot(self, rng, chunk_size):
        signal = awgn(2000, 1.0, rng)
        signal[800:1200] *= 4.0
        whole = EnergyDifferentiator().process(signal)
        streamed = EnergyDifferentiator()
        parts = [streamed.process(signal[i:i + chunk_size])
                 for i in range(0, signal.size, chunk_size)]
        high = np.concatenate([p[0] for p in parts])
        low = np.concatenate([p[1] for p in parts])
        assert np.array_equal(whole[0], high)
        assert np.array_equal(whole[1], low)
