"""Multi-station DCF: contention, fairness, and jamming impact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presets import reactive_jammer
from repro.mac.iperf import UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel

LOSSES = {
    ("ap", "c1"): -51.0, ("c1", "ap"): -51.0,
    ("ap", "c2"): -51.0, ("c2", "ap"): -51.0,
    ("c1", "c2"): -55.0, ("c2", "c1"): -55.0,
    ("jammer", "ap"): -38.4, ("ap", "jammer"): -39.3,
    ("jammer", "c1"): -32.0, ("c1", "jammer"): -32.8,
    ("jammer", "c2"): -32.0, ("c2", "jammer"): -32.8,
}


def path_loss(src: str, dst: str) -> float | None:
    return LOSSES.get((src, dst))


def build_two_clients(seed: int = 4):
    rng = np.random.default_rng(seed)
    kernel = SimKernel()
    medium = Medium(path_loss)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
    c1 = Station("c1", kernel, medium, ap, rng, tx_power_dbm=14.0)
    c2 = Station("c2", kernel, medium, ap, rng, tx_power_dbm=14.0)
    return kernel, medium, ap, c1, c2, rng


class TestContention:
    def test_two_saturated_clients_share_the_channel(self):
        kernel, _medium, ap, c1, c2, _rng = build_two_clients()
        t1 = UdpBandwidthTest(kernel, c1, ap, offered_mbps=54.0)
        t2 = UdpBandwidthTest(kernel, c2, ap, offered_mbps=54.0)
        # Drive both tests manually: start both offer loops, run once.
        t1._stop_time = 0.4
        t2._stop_time = 0.4
        kernel.schedule(0.0, t1._offer)
        kernel.schedule(0.0, t2._offer)
        kernel.run_until(0.4)

        d1 = c1.stats.delivered
        d2 = c2.stats.delivered
        total_mbps = (c1.stats.delivered_payload_bytes
                      + c2.stats.delivered_payload_bytes) * 8 / 0.4 / 1e6
        # The pair saturates the channel roughly like a single client
        # (collisions cost a little), and shares it fairly.
        assert 20.0 < total_mbps < 33.0
        assert d1 > 0 and d2 > 0
        assert 0.6 < d1 / d2 < 1.67

    def test_light_loads_coexist_without_loss(self):
        kernel, _medium, ap, c1, c2, _rng = build_two_clients()
        t1 = UdpBandwidthTest(kernel, c1, ap, offered_mbps=3.0)
        t2 = UdpBandwidthTest(kernel, c2, ap, offered_mbps=3.0)
        t1._stop_time = 0.3
        t2._stop_time = 0.3
        kernel.schedule(0.0, t1._offer)
        kernel.schedule(0.0, t2._offer)
        kernel.run_until(0.3)
        # Both far below capacity: every accepted datagram delivered.
        for station in (c1, c2):
            assert station.stats.retry_drops == 0
            assert station.stats.delivered >= station.stats.sent - station.backlog

    def test_jammer_kills_both_clients(self):
        kernel, medium, ap, c1, c2, _rng = build_two_clients()
        JammerNode("jammer", kernel, medium, reactive_jammer(1e-4),
                   tx_power_dbm=5.0).start(0.3)
        t1 = UdpBandwidthTest(kernel, c1, ap, offered_mbps=10.0)
        t2 = UdpBandwidthTest(kernel, c2, ap, offered_mbps=10.0)
        t1._stop_time = 0.3
        t2._stop_time = 0.3
        kernel.schedule(0.0, t1._offer)
        kernel.schedule(0.0, t2._offer)
        kernel.run_until(0.3)
        assert ap.received_datagrams == 0

    def test_collisions_are_possible_but_recovered(self):
        # With two saturated stations, retries happen yet goodput
        # remains high: the binary exponential backoff resolves them.
        kernel, _medium, ap, c1, c2, _rng = build_two_clients(seed=9)
        t1 = UdpBandwidthTest(kernel, c1, ap, offered_mbps=54.0)
        t2 = UdpBandwidthTest(kernel, c2, ap, offered_mbps=54.0)
        t1._stop_time = 0.3
        t2._stop_time = 0.3
        kernel.schedule(0.0, t1._offer)
        kernel.schedule(0.0, t2._offer)
        kernel.run_until(0.3)
        attempts = c1.stats.attempts + c2.stats.attempts
        delivered = c1.stats.delivered + c2.stats.delivered
        assert attempts > delivered          # some retransmissions
        assert delivered / attempts > 0.5    # but mostly first-try
