"""Tests for the shared-medium model: CCA, backoff walk, reception."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mac.frames import FrameKind, MacFrame
from repro.mac.medium import (
    AGC_CAPTURE_SIR_DB,
    CCA_ED_DBM,
    CCA_PREAMBLE_DBM,
    Emission,
    EmissionKind,
    Medium,
    SYNC_LOSS_SIR_DB,
)
from repro.phy.wifi.params import WifiRate

#: Simple symmetric path-loss table for tests.
LOSSES = {
    ("a", "b"): -50.0, ("b", "a"): -50.0,
    ("a", "j"): -40.0, ("j", "a"): -40.0,
    ("b", "j"): -40.0, ("j", "b"): -40.0,
    ("a", "iso"): None, ("iso", "a"): None,
}


def path_loss(src: str, dst: str) -> float | None:
    return LOSSES.get((src, dst))


def data_frame(rate=WifiRate.MBPS_54, psdu=1534) -> MacFrame:
    return MacFrame(FrameKind.DATA, "b", "a", psdu, rate)


@pytest.fixture
def medium() -> Medium:
    return Medium(path_loss, noise_floor_dbm=-95.0)


class TestPowerBookkeeping:
    def test_rx_power(self, medium):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=20.0)
        assert medium.rx_power_dbm(e, "a") == pytest.approx(-30.0)

    def test_isolated_pair(self, medium):
        e = medium.emit_frame("iso", data_frame(), 0.0, tx_power_dbm=20.0)
        assert medium.rx_power_dbm(e, "a") is None

    def test_own_emission_not_heard(self, medium):
        e = medium.emit_frame("a", data_frame(), 0.0, tx_power_dbm=20.0)
        assert medium.rx_power_dbm(e, "a") is None


class TestCarrierSense:
    def test_frame_above_preamble_threshold_is_busy(self, medium):
        medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=0.0)
        # -50 dBm at "a" > -82 dBm threshold.
        assert medium.is_busy("a", 1e-4)

    def test_weak_frame_not_busy(self, medium):
        medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=-40.0)
        # -90 dBm < -82 dBm.
        assert not medium.is_busy("a", 1e-4)

    def test_jam_uses_energy_detect_threshold(self, medium):
        # At -70 dBm a frame would be busy but WGN is not (-62 ED).
        medium.emit_jam("j", 0.0, 1e-3, tx_power_dbm=-30.0)
        assert not medium.is_busy("a", 1e-4)
        medium.emit_jam("j", 0.0, 1e-3, tx_power_dbm=-20.0)
        assert medium.is_busy("a", 1e-4)

    def test_busy_intervals_merge(self, medium):
        medium.emit_jam("j", 1e-3, 1e-3, tx_power_dbm=0.0)
        medium.emit_jam("j", 1.5e-3, 1e-3, tx_power_dbm=0.0)
        intervals = medium.busy_intervals("a", 0.0)
        assert len(intervals) == 1
        assert intervals[0] == pytest.approx((1e-3, 2.5e-3))


class TestBackoffWalk:
    DIFS = 28e-6
    SLOT = 9e-6

    def test_idle_medium(self, medium):
        finish = medium.backoff_finish_time("a", 0.0, 5, self.DIFS, self.SLOT)
        assert finish == pytest.approx(self.DIFS + 5 * self.SLOT)

    def test_waits_for_busy_end(self, medium):
        medium.emit_jam("j", 0.0, 1e-3, tx_power_dbm=0.0)
        finish = medium.backoff_finish_time("a", 0.0, 2, self.DIFS, self.SLOT)
        assert finish == pytest.approx(1e-3 + self.DIFS + 2 * self.SLOT)

    def test_freezes_and_resumes(self, medium):
        # Busy interval interrupts the countdown after ~3 slots.
        gap_start = self.DIFS + 3.5 * self.SLOT
        medium.emit_jam("j", gap_start, 1e-4, tx_power_dbm=0.0)
        finish = medium.backoff_finish_time("a", 0.0, 10, self.DIFS, self.SLOT)
        # 3 whole slots consumed before the burst, 7 remain after it.
        expected = gap_start + 1e-4 + self.DIFS + 7 * self.SLOT
        assert finish == pytest.approx(expected)

    def test_zero_slots_needs_only_difs(self, medium):
        finish = medium.backoff_finish_time("a", 0.0, 0, self.DIFS, self.SLOT)
        assert finish == pytest.approx(self.DIFS)


class TestReception:
    def test_clean_frame_succeeds(self, medium, rng):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        assert medium.frame_success_probability(e, "a") > 0.99

    def test_below_sensitivity_fails(self, medium):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=-35.0)
        assert medium.frame_success_probability(e, "a") == 0.0

    def test_strong_jam_during_data_kills_frame(self, medium):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        # Burst inside the DATA region, jammer within the AGC margin.
        medium.emit_jam("j", 50e-6, 100e-6,
                        tx_power_dbm=14.0 - 50.0 + 40.0 - AGC_CAPTURE_SIR_DB + 1)
        assert medium.frame_success_probability(e, "a") == 0.0

    def test_weak_jam_during_data_tolerated(self, medium):
        e = medium.emit_frame("b", data_frame(rate=WifiRate.MBPS_6), 0.0,
                              tx_power_dbm=14.0)
        # Jammer 30 dB below the signal at the receiver.
        medium.emit_jam("j", 50e-6, 100e-6, tx_power_dbm=14.0 - 50 + 40 - 30)
        assert medium.frame_success_probability(e, "a") > 0.9

    def test_preamble_burst_kills_sync_below_margin(self, medium):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        # Burst covering the whole LTF, jammer stronger than SIR margin.
        medium.emit_jam("j", 6e-6, 10e-6,
                        tx_power_dbm=14.0 - 50 + 40 - SYNC_LOSS_SIR_DB + 1)
        assert medium.frame_success_probability(e, "a") == 0.0

    def test_preamble_burst_survived_above_margin(self, medium):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        medium.emit_jam("j", 6e-6, 10e-6,
                        tx_power_dbm=14.0 - 50 + 40 - 25.0)
        assert medium.frame_success_probability(e, "a") > 0.5

    def test_overlapping_frames_collide(self, medium):
        e1 = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        medium.emit_frame("j", data_frame(), 50e-6, tx_power_dbm=14.0)
        assert medium.frame_success_probability(e1, "a") == 0.0

    def test_capture_effect(self, medium):
        e1 = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        # Much weaker overlapping frame: capture wins.
        medium.emit_frame("j", data_frame(), 50e-6, tx_power_dbm=-20.0)
        assert medium.frame_success_probability(e1, "a") > 0.9

    def test_receive_frame_bernoulli(self, medium, rng):
        e = medium.emit_frame("b", data_frame(), 0.0, tx_power_dbm=14.0)
        assert medium.receive_frame(e, "a", rng)


class TestPruning:
    def test_prune_drops_old(self, medium):
        medium.emit_jam("j", 0.0, 1e-3, tx_power_dbm=0.0)
        medium.prune(before=1.0)
        assert not medium.is_busy("a", 5e-4)

    def test_prune_keeps_active(self, medium):
        medium.emit_jam("j", 0.0, 10.0, tx_power_dbm=0.0)
        medium.prune(before=1.0)
        assert medium.is_busy("a", 5.0)
