"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.mac.simkernel import SimKernel


class TestScheduling:
    def test_events_run_in_time_order(self):
        k = SimKernel()
        order = []
        k.schedule(3.0, lambda: order.append("c"))
        k.schedule(1.0, lambda: order.append("a"))
        k.schedule(2.0, lambda: order.append("b"))
        k.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        k = SimKernel()
        order = []
        for name in "abc":
            k.schedule(1.0, lambda n=name: order.append(n))
        k.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        k = SimKernel()
        seen = []
        k.schedule(2.5, lambda: seen.append(k.now))
        k.run()
        assert seen == [2.5]

    def test_run_until_stops(self):
        k = SimKernel()
        fired = []
        k.schedule(1.0, lambda: fired.append(1))
        k.schedule(5.0, lambda: fired.append(5))
        k.run_until(3.0)
        assert fired == [1]
        assert k.now == 3.0

    def test_events_can_schedule_events(self):
        k = SimKernel()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                k.schedule(1.0, lambda: chain(n + 1))

        k.schedule(0.0, lambda: chain(0))
        k.run()
        assert hits == [0, 1, 2, 3]
        assert k.now == 3.0

    def test_cancellation(self):
        k = SimKernel()
        fired = []
        handle = k.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        k.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_count(self):
        k = SimKernel()
        h = k.schedule(1.0, lambda: None)
        k.schedule(2.0, lambda: None)
        assert k.pending == 2
        h.cancel()
        assert k.pending == 1

    def test_rejects_past_scheduling(self):
        k = SimKernel()
        k.schedule(1.0, lambda: None)
        k.run()
        with pytest.raises(SimulationError):
            k.schedule_at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            SimKernel().schedule(-1.0, lambda: None)

    def test_rejects_nan_time(self):
        with pytest.raises(SimulationError):
            SimKernel().schedule_at(float("nan"), lambda: None)

    def test_not_reentrant(self):
        k = SimKernel()

        def recurse():
            k.run_until(10.0)

        k.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            k.run()
