"""Tests for MAC frame accounting, DCF constants, and rate control."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mac import dcf
from repro.mac.frames import (
    ACK_LENGTH,
    FrameKind,
    MacFrame,
    ack_duration_us,
    ack_rate_for,
    data_duration_us,
    udp_datagram_psdu,
)
from repro.mac.rate_control import RATE_LADDER, ArfRateController
from repro.phy.wifi.params import WifiRate


class TestFrames:
    def test_udp_datagram_overheads(self):
        # 1470 payload + 28 IP/UDP + 8 LLC/SNAP + 28 MAC = 1534.
        assert udp_datagram_psdu(1470) == 1534

    def test_data_duration_54mbps(self):
        # 1534 B at 54 Mbps: ceil((16+12272+6)/216)=57 symbols -> 248 us.
        assert data_duration_us(1470, WifiRate.MBPS_54) == pytest.approx(248.0)

    def test_ack_rates_are_basic_set(self):
        assert ack_rate_for(WifiRate.MBPS_54) == WifiRate.MBPS_24
        assert ack_rate_for(WifiRate.MBPS_18) == WifiRate.MBPS_12
        assert ack_rate_for(WifiRate.MBPS_9) == WifiRate.MBPS_6
        assert ack_rate_for(WifiRate.MBPS_6) == WifiRate.MBPS_6

    def test_ack_duration(self):
        # ACK at 24 Mbps: ceil((16+112+6)/96)=2 symbols -> 28 us.
        assert ack_duration_us(WifiRate.MBPS_54) == pytest.approx(28.0)

    def test_frame_duration_seconds(self):
        frame = MacFrame(FrameKind.DATA, "a", "b", 1534, WifiRate.MBPS_54)
        assert frame.duration_s == pytest.approx(248e-6)

    def test_rejects_undersized_psdu(self):
        with pytest.raises(ConfigurationError):
            MacFrame(FrameKind.ACK, "a", "b", ACK_LENGTH - 1, WifiRate.MBPS_6)

    def test_rejects_empty_payload(self):
        with pytest.raises(ConfigurationError):
            udp_datagram_psdu(0)


class TestDcfConstants:
    def test_erp_ofdm_timings(self):
        assert dcf.SLOT_S == pytest.approx(9e-6)
        assert dcf.SIFS_S == pytest.approx(10e-6)
        assert dcf.DIFS_S == pytest.approx(28e-6)

    def test_contention_window_doubles(self):
        assert dcf.contention_window(0) == 15
        assert dcf.contention_window(1) == 31
        assert dcf.contention_window(2) == 63

    def test_contention_window_caps(self):
        assert dcf.contention_window(10) == 1023

    def test_rejects_negative_retry(self):
        with pytest.raises(ConfigurationError):
            dcf.contention_window(-1)

    def test_ack_timeout(self):
        timeout = dcf.ack_timeout_s(28e-6)
        assert timeout == pytest.approx(10e-6 + 28e-6 + 9e-6)

    def test_ack_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            dcf.ack_timeout_s(0.0)


class TestArf:
    def test_ladder_ordering(self):
        mbps = [r.mbps for r in RATE_LADDER]
        assert mbps == sorted(mbps)

    def test_starts_at_initial(self):
        arf = ArfRateController(initial=WifiRate.MBPS_54)
        assert arf.rate == WifiRate.MBPS_54

    def test_steps_down_after_failures(self):
        arf = ArfRateController(down_after=2)
        arf.report_failure()
        assert arf.rate == WifiRate.MBPS_54
        arf.report_failure()
        assert arf.rate == WifiRate.MBPS_48

    def test_success_resets_failure_count(self):
        arf = ArfRateController(down_after=2)
        arf.report_failure()
        arf.report_success()
        arf.report_failure()
        assert arf.rate == WifiRate.MBPS_54

    def test_steps_up_after_successes(self):
        arf = ArfRateController(initial=WifiRate.MBPS_6, up_after=10)
        for _ in range(10):
            arf.report_success()
        assert arf.rate == WifiRate.MBPS_9

    def test_floor_at_lowest_rate(self):
        arf = ArfRateController(initial=WifiRate.MBPS_6, down_after=1)
        for _ in range(5):
            arf.report_failure()
        assert arf.rate == WifiRate.MBPS_6

    def test_ceiling_at_highest_rate(self):
        arf = ArfRateController(initial=WifiRate.MBPS_54, up_after=1)
        for _ in range(5):
            arf.report_success()
        assert arf.rate == WifiRate.MBPS_54

    def test_collapse_under_sustained_failure(self):
        arf = ArfRateController(down_after=2)
        for _ in range(16):
            arf.report_failure()
        assert arf.rate == WifiRate.MBPS_6

    def test_reset(self):
        arf = ArfRateController()
        arf.report_failure()
        arf.reset(WifiRate.MBPS_12)
        assert arf.rate == WifiRate.MBPS_12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArfRateController(down_after=0)
