"""Tests for the MAC nodes and the iperf UDP test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presets import continuous_jammer, reactive_jammer
from repro.errors import ConfigurationError
from repro.mac.iperf import IperfReport, UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel
from repro.phy.wifi.params import WifiRate

LOSSES = {
    ("ap", "client"): -51.0, ("client", "ap"): -51.0,
    ("jammer", "ap"): -38.4, ("ap", "jammer"): -39.3,
    ("jammer", "client"): -32.0, ("client", "jammer"): -32.8,
}


def path_loss(src: str, dst: str) -> float | None:
    return LOSSES.get((src, dst))


def build_rig(seed: int = 1):
    rng = np.random.default_rng(seed)
    kernel = SimKernel()
    medium = Medium(path_loss)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
    client = Station("client", kernel, medium, ap, rng, tx_power_dbm=14.0)
    return kernel, medium, ap, client, rng


class TestStationAp:
    def test_single_datagram_delivered(self):
        kernel, _medium, ap, client, _rng = build_rig()
        client.enqueue_datagram(1470)
        kernel.run_until(0.01)
        assert ap.received_datagrams == 1
        assert client.stats.delivered == 1

    def test_queue_backpressure(self):
        _kernel, _medium, _ap, client, _rng = build_rig()
        accepted = [client.enqueue_datagram(100) for _ in range(150)]
        # queue_limit datagrams queued plus one immediately in flight.
        assert sum(accepted) == 101
        assert client.stats.throttled == 49
        assert client.backlog == 101

    def test_duplicate_detection_at_ap(self):
        kernel, _medium, ap, client, _rng = build_rig()
        for _ in range(10):
            client.enqueue_datagram(500)
        kernel.run_until(0.05)
        # Every delivered datagram counted exactly once.
        assert ap.received_datagrams == client.stats.delivered == 10

    def test_rate_starts_at_54(self):
        _kernel, _medium, _ap, client, _rng = build_rig()
        assert client.rate_control.rate == WifiRate.MBPS_54

    def test_queue_limit_validation(self):
        kernel, medium, ap, _client, rng = build_rig()
        with pytest.raises(ConfigurationError):
            Station("x", kernel, medium, ap, rng, queue_limit=0)


class TestIperf:
    def test_report_arithmetic(self):
        report = IperfReport(duration_s=2.0, offered=100, sent=80,
                             delivered=60,
                             delivered_payload_bytes=60 * 1470)
        assert report.bandwidth_mbps == pytest.approx(60 * 1470 * 8 / 2 / 1e6)
        assert report.packet_reception_ratio == pytest.approx(0.75)

    def test_prr_with_nothing_sent(self):
        report = IperfReport(1.0, 0, 0, 0, 0)
        assert report.packet_reception_ratio == 1.0

    def test_unjammed_link_throughput(self):
        kernel, _medium, ap, client, _rng = build_rig()
        test = UdpBandwidthTest(kernel, client, ap, offered_mbps=54.0)
        report = test.run(0.5)
        # The paper's ~29 Mbps ceiling (ours lands a touch above).
        assert 27.0 < report.bandwidth_mbps < 33.0
        assert report.packet_reception_ratio > 0.95

    def test_low_offered_load_fully_served(self):
        kernel, _medium, ap, client, _rng = build_rig()
        test = UdpBandwidthTest(kernel, client, ap, offered_mbps=5.0)
        report = test.run(0.5)
        assert report.bandwidth_mbps == pytest.approx(5.0, rel=0.1)
        assert report.packet_reception_ratio > 0.99

    def test_validation(self):
        kernel, _medium, ap, client, _rng = build_rig()
        with pytest.raises(ConfigurationError):
            UdpBandwidthTest(kernel, client, ap, offered_mbps=0.0)
        test = UdpBandwidthTest(kernel, client, ap)
        with pytest.raises(ConfigurationError):
            test.run(0.0)


class TestJammerNode:
    def test_continuous_jammer_blocks_cca(self):
        kernel, medium, ap, client, _rng = build_rig()
        jammer = JammerNode("jammer", kernel, medium, continuous_jammer(),
                            tx_power_dbm=0.0)
        jammer.start(1.0)
        test = UdpBandwidthTest(kernel, client, ap)
        report = test.run(0.3)
        # Jam at client: 0 - 32 = -32 dBm >> CCA ED -> medium always busy.
        assert report.delivered == 0

    def test_weak_continuous_jammer_harmless(self):
        kernel, medium, ap, client, _rng = build_rig()
        jammer = JammerNode("jammer", kernel, medium, continuous_jammer(),
                            tx_power_dbm=-45.0)
        jammer.start(1.0)
        report = UdpBandwidthTest(kernel, client, ap).run(0.3)
        assert report.bandwidth_mbps > 25.0

    def test_reactive_jammer_fires_once_per_frame(self):
        kernel, medium, ap, client, _rng = build_rig()
        personality = reactive_jammer(uptime_seconds=1e-5)
        jammer = JammerNode("jammer", kernel, medium, personality,
                            tx_power_dbm=-40.0)  # too weak to disrupt
        jammer.start(1.0)
        for _ in range(5):
            client.enqueue_datagram(1000)
        kernel.run_until(0.05)
        # 5 data frames + 5 ACKs heard, but bursts from ACKs may be
        # suppressed while a data burst is active; at least one burst
        # per data frame must exist.
        assert jammer.bursts >= 5

    def test_reactive_jammer_ignores_weak_frames(self):
        kernel, medium, ap, client, _rng = build_rig()
        personality = reactive_jammer(uptime_seconds=1e-5)
        jammer = JammerNode("jammer", kernel, medium, personality,
                            tx_power_dbm=0.0, sensitivity_dbm=-10.0)
        jammer.start(1.0)
        client.enqueue_datagram(1000)
        kernel.run_until(0.01)
        assert jammer.bursts == 0

    def test_strong_reactive_jammer_kills_link(self):
        kernel, medium, ap, client, _rng = build_rig()
        personality = reactive_jammer(uptime_seconds=1e-4)
        jammer = JammerNode("jammer", kernel, medium, personality,
                            tx_power_dbm=10.0)
        jammer.start(1.0)
        report = UdpBandwidthTest(kernel, client, ap).run(0.3)
        assert report.packet_reception_ratio < 0.05
