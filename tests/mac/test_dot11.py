"""Tests for byte-level 802.11 frame formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodeError
from repro.mac.dot11 import (
    Dot11Header,
    FrameType,
    build_ack_frame,
    build_data_frame,
    build_deauth_frame,
    mac_address,
    parse_frame,
)


@pytest.fixture
def addresses():
    return mac_address(1), mac_address(2), mac_address(3)


class TestAddresses:
    def test_locally_administered(self):
        addr = mac_address(42)
        assert len(addr) == 6
        assert addr[0] & 0x02  # locally administered bit

    def test_distinct(self):
        assert mac_address(1) != mac_address(2)

    def test_suffix_bounds(self):
        with pytest.raises(ConfigurationError):
            mac_address(1 << 24)


class TestDataFrames:
    def test_roundtrip(self, addresses, rng):
        dst, src, bssid = addresses
        payload = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        mpdu = build_data_frame(dst, src, bssid, payload, sequence=7)
        header, body = parse_frame(mpdu)
        assert header.frame_type is FrameType.DATA
        assert header.sequence == 7
        assert body == payload

    def test_to_ds_address_order(self, addresses):
        dst, src, bssid = addresses
        mpdu = build_data_frame(dst, src, bssid, b"x", to_ds=True)
        header, _ = parse_frame(mpdu)
        assert header.addr1 == bssid
        assert header.addr2 == src
        assert header.addr3 == dst

    def test_from_ds_address_order(self, addresses):
        dst, src, bssid = addresses
        mpdu = build_data_frame(dst, src, bssid, b"x", to_ds=False)
        header, _ = parse_frame(mpdu)
        assert header.addr1 == dst
        assert header.addr2 == bssid

    def test_sequence_bounds(self, addresses):
        dst, src, bssid = addresses
        with pytest.raises(ConfigurationError):
            build_data_frame(dst, src, bssid, b"x", sequence=4096)

    def test_bad_address_length(self, addresses):
        dst, src, _ = addresses
        with pytest.raises(ConfigurationError):
            build_data_frame(dst, src, b"abc", b"x")


class TestControlAndManagement:
    def test_ack_roundtrip(self, addresses):
        dst, _src, _bssid = addresses
        mpdu = build_ack_frame(dst)
        assert len(mpdu) == 14
        header, body = parse_frame(mpdu)
        assert header.frame_type is FrameType.ACK
        assert header.addr1 == dst
        assert body == b""

    def test_deauth_roundtrip(self, addresses):
        dst, src, bssid = addresses
        mpdu = build_deauth_frame(dst, src, bssid, reason=7)
        header, body = parse_frame(mpdu)
        assert header.frame_type is FrameType.DEAUTH
        assert int.from_bytes(body, "little") == 7

    def test_deauth_reason_bounds(self, addresses):
        dst, src, bssid = addresses
        with pytest.raises(ConfigurationError):
            build_deauth_frame(dst, src, bssid, reason=1 << 16)


class TestParsing:
    def test_corrupted_fcs_rejected(self, addresses, rng):
        dst, src, bssid = addresses
        mpdu = bytearray(build_data_frame(dst, src, bssid, b"payload"))
        mpdu[5] ^= 0x40
        with pytest.raises(DecodeError):
            parse_frame(bytes(mpdu))

    def test_truncated_frame_rejected(self):
        from repro.phy.bits import append_fcs

        with pytest.raises(DecodeError):
            parse_frame(append_fcs(b"\x08\x00"))

    def test_unknown_type_rejected(self):
        from repro.phy.bits import append_fcs

        # type 3 is reserved.
        frame = append_fcs(bytes([0x0C, 0x00]) + b"\x00" * 22)
        with pytest.raises(DecodeError):
            parse_frame(frame)


class TestOverTheAir:
    def test_forged_deauth_decodes_at_victim(self, addresses, rng):
        # The full spoofed-deauth chain: forge, modulate, decode.
        from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
        from repro.phy.wifi.params import WifiRate
        from repro.phy.wifi.receiver import WifiReceiver

        dst, src, bssid = addresses
        mpdu = build_deauth_frame(dst, src, bssid)
        wave = build_ppdu(mpdu, WifiFrameConfig(rate=WifiRate.MBPS_6))
        rx = wave + 0.01 * (rng.standard_normal(wave.size)
                            + 1j * rng.standard_normal(wave.size))
        result = WifiReceiver().receive(rx)
        header, body = parse_frame(result.psdu)
        assert header.frame_type is FrameType.DEAUTH
        assert header.addr1 == dst
