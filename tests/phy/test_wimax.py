"""Tests for the 802.16e OFDMA downlink PHY."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.wimax import params as p
from repro.phy.wimax.frame import build_downlink_frame, data_carriers, downlink_stream
from repro.phy.wimax.preamble import (
    preamble_carriers,
    preamble_pn_sequence,
    preamble_symbol,
)


class TestParams:
    def test_paper_numerology(self):
        assert p.WIMAX_SAMPLE_RATE == 11_400_000
        assert p.WIMAX_FFT_SIZE == 1024
        assert p.WIMAX_CP_LENGTH == 128

    def test_preamble_duration_near_100us(self):
        # Paper: the preamble symbol lasts ~100.8 us.
        duration = p.WIMAX_OFDM.symbol_length / p.WIMAX_SAMPLE_RATE
        assert duration == pytest.approx(101e-6, rel=0.01)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            p.WimaxConfig(cell_id=32)
        with pytest.raises(ConfigurationError):
            p.WimaxConfig(segment=3)
        with pytest.raises(ConfigurationError):
            p.WimaxConfig(dl_symbols=0)
        with pytest.raises(ConfigurationError):
            p.WimaxConfig(dl_symbols=100)  # exceeds the 5 ms frame

    def test_frame_samples(self):
        cfg = p.WimaxConfig()
        assert cfg.frame_samples == 57_000  # 5 ms at 11.4 MHz


class TestPreambleCarriers:
    def test_every_third_carrier(self):
        for segment in range(3):
            carriers = preamble_carriers(segment)
            physical = carriers + p.WIMAX_FFT_SIZE // 2
            assert np.all(np.diff(sorted(physical)) % 3 == 0)

    def test_segments_disjoint(self):
        sets = [set(preamble_carriers(s).tolist()) for s in range(3)]
        assert not sets[0] & sets[1]
        assert not sets[0] & sets[2]
        assert not sets[1] & sets[2]

    def test_guard_bands_respected(self):
        for segment in range(3):
            physical = preamble_carriers(segment) + p.WIMAX_FFT_SIZE // 2
            assert physical.min() >= p.PREAMBLE_GUARD_CARRIERS
            assert physical.max() < p.WIMAX_FFT_SIZE - p.PREAMBLE_GUARD_CARRIERS

    def test_284_values_per_set(self):
        # Segment 0's set crosses DC, which is excluded; others keep 284.
        assert preamble_carriers(0).size in (283, 284)
        assert preamble_carriers(1).size == 284
        assert preamble_carriers(2).size == 284

    def test_invalid_segment(self):
        with pytest.raises(ConfigurationError):
            preamble_carriers(3)


class TestPnSequences:
    def test_length(self):
        assert preamble_pn_sequence(1, 0).size == p.PREAMBLE_PN_LENGTH

    def test_bipolar(self):
        seq = preamble_pn_sequence(5, 2)
        assert set(np.unique(seq)) <= {-1, 1}

    def test_distinct_per_cell_and_segment(self):
        seqs = [preamble_pn_sequence(c, s) for c in (0, 1, 2) for s in (0, 1, 2)]
        for i in range(len(seqs)):
            for j in range(i + 1, len(seqs)):
                assert not np.array_equal(seqs[i], seqs[j])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            preamble_pn_sequence(32, 0)
        with pytest.raises(ConfigurationError):
            preamble_pn_sequence(0, 3)


class TestPreambleSymbol:
    def test_length_and_power(self):
        sym = preamble_symbol()
        assert sym.size == p.WIMAX_OFDM.symbol_length == 1152
        assert np.mean(np.abs(sym) ** 2) == pytest.approx(1.0)

    def test_cyclic_prefix(self):
        sym = preamble_symbol()
        assert np.allclose(sym[:128], sym[-128:])

    def test_pseudo_periodicity(self):
        # Every-third-carrier occupancy makes the core pseudo-periodic
        # with period fft/3 ~ 341 samples (the paper's "code that
        # repeats itself 3 times").
        core = preamble_symbol()[128:]
        third = 1024 // 3
        a, b = core[:third], core[third:2 * third]
        rho = np.abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert rho > 0.8

    def test_different_segments_differ(self):
        assert not np.allclose(preamble_symbol(1, 0), preamble_symbol(1, 1))


class TestDownlinkFrame:
    def test_frame_shape(self, rng):
        cfg = p.WimaxConfig()
        frame = build_downlink_frame(cfg, rng)
        assert frame.size == cfg.frame_samples

    def test_tdd_quiet_period(self, rng):
        cfg = p.WimaxConfig(dl_symbols=10)
        frame = build_downlink_frame(cfg, rng)
        dl_samples = 10 * p.WIMAX_OFDM.symbol_length
        assert np.all(frame[dl_samples:] == 0)
        assert np.mean(np.abs(frame[:dl_samples]) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_frame_opens_with_preamble(self, rng):
        cfg = p.WimaxConfig(cell_id=1, segment=0)
        frame = build_downlink_frame(cfg, rng)
        assert np.allclose(frame[:1152], preamble_symbol(1, 0))

    def test_stream_concatenates_frames(self, rng):
        cfg = p.WimaxConfig()
        stream = downlink_stream(cfg, 3, rng)
        assert stream.size == 3 * cfg.frame_samples
        # Every frame starts with the same preamble.
        for k in range(3):
            start = k * cfg.frame_samples
            assert np.allclose(stream[start:start + 1152],
                               preamble_symbol(1, 0))

    def test_stream_validation(self, rng):
        with pytest.raises(ConfigurationError):
            downlink_stream(p.WimaxConfig(), 0, rng)

    def test_data_carriers_exclude_dc(self):
        carriers = data_carriers()
        assert 0 not in carriers
