"""Tests for the 802.11g PHY: preambles, SIGNAL, frames, receiver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodeError
from repro.phy.wifi import params as p
from repro.phy.wifi.frame import (
    WifiFrameConfig,
    build_data_field,
    build_ppdu,
    build_signal_field,
    ppdu_duration_us,
    ppdu_sample_length,
)
from repro.phy.wifi.preamble import (
    LONG_GUARD,
    LONG_SYMBOL,
    SHORT_PERIOD,
    SHORT_REPEATS,
    long_preamble,
    long_training_symbol,
    short_preamble,
    short_training_symbol,
)
from repro.phy.wifi.receiver import WifiReceiver
from repro.phy.wifi.signal_field import (
    decode_signal_symbol,
    encode_signal_bits,
    signal_to_coded_symbol,
)


class TestParams:
    def test_rate_table_complete(self):
        assert len(p.RATE_PARAMETERS) == 8
        for rate, rp in p.RATE_PARAMETERS.items():
            assert rp.n_cbps == 48 * rp.n_bpsc
            # n_dbps = n_cbps * code rate
            assert rp.n_dbps == pytest.approx(rp.n_cbps * rp.code_rate.ratio)

    def test_rates_in_mbps(self):
        # n_dbps per 4 us symbol must equal the advertised Mbps.
        for rate, rp in p.RATE_PARAMETERS.items():
            assert rp.n_dbps / 4.0 == rate.mbps

    def test_signal_bits_unique(self):
        encodings = [rp.signal_bits for rp in p.RATE_PARAMETERS.values()]
        assert len(set(encodings)) == 8

    def test_data_subcarrier_count(self):
        assert p.DATA_SUBCARRIERS.size == 48
        assert p.PILOT_SUBCARRIERS.size == 4
        assert not set(p.PILOT_SUBCARRIERS) & set(p.DATA_SUBCARRIERS)

    def test_pilot_polarity_length(self):
        assert p.PILOT_POLARITY.size == 127
        assert set(np.unique(p.PILOT_POLARITY)) == {-1.0, 1.0}

    def test_symbol_count_formula(self):
        # 100-byte PSDU at 54 Mbps: ceil((16+800+6)/216) = 4 symbols.
        assert p.data_symbols_for_psdu(100, p.WifiRate.MBPS_54) == 4
        # at 6 Mbps: ceil(822/24) = 35.
        assert p.data_symbols_for_psdu(100, p.WifiRate.MBPS_6) == 35


class TestPreambles:
    def test_short_preamble_structure(self):
        stf = short_preamble()
        assert stf.size == SHORT_REPEATS * SHORT_PERIOD == 160
        period = short_training_symbol()
        for k in range(SHORT_REPEATS):
            assert np.allclose(stf[k * 16:(k + 1) * 16], period)

    def test_short_preamble_duration_8us(self):
        assert short_preamble().size / p.WIFI_SAMPLE_RATE == pytest.approx(8e-6)

    def test_long_preamble_structure(self):
        ltf = long_preamble()
        assert ltf.size == 160
        lts = long_training_symbol()
        assert np.allclose(ltf[:LONG_GUARD], lts[-LONG_GUARD:])
        assert np.allclose(ltf[32:96], lts)
        assert np.allclose(ltf[96:160], lts)

    def test_long_symbol_unit_power(self):
        lts = long_training_symbol()
        assert np.mean(np.abs(lts) ** 2) == pytest.approx(1.0)

    def test_long_symbol_spectrum(self):
        # Only carriers +-1..26 occupied, all with equal magnitude.
        freq = np.fft.fft(long_training_symbol())
        occupied = np.abs(freq) > 1e-6
        expected_bins = {k % 64 for k in range(-26, 27) if k != 0}
        assert set(np.flatnonzero(occupied)) == expected_bins
        mags = np.abs(freq[list(expected_bins)])
        assert np.allclose(mags, mags[0])

    def test_short_symbol_spectrum(self):
        # Short preamble occupies only multiples of 4 within +-24.
        period = short_training_symbol()
        freq = np.fft.fft(np.tile(period, 4))
        occupied = set(np.flatnonzero(np.abs(freq) > 1e-6))
        expected = {k % 64 for k in
                    (-24, -20, -16, -12, -8, -4, 4, 8, 12, 16, 20, 24)}
        assert occupied == expected


class TestSignalField:
    def test_bit_layout(self):
        bits = encode_signal_bits(p.WifiRate.MBPS_36, 1000)
        assert bits.size == 24
        assert bits[4] == 0           # reserved
        assert not bits[18:].any()    # tail
        length = sum(int(bits[5 + k]) << k for k in range(12))
        assert length == 1000

    def test_parity_even(self):
        for rate in p.WifiRate:
            bits = encode_signal_bits(rate, 777)
            assert int(np.sum(bits[:18])) % 2 == 0

    def test_roundtrip_all_rates(self):
        for rate in p.WifiRate:
            points = signal_to_coded_symbol(rate, 1234)
            decoded_rate, length = decode_signal_symbol(points)
            assert decoded_rate == rate
            assert length == 1234

    def test_length_bounds(self):
        with pytest.raises(ConfigurationError):
            encode_signal_bits(p.WifiRate.MBPS_6, 0)
        with pytest.raises(ConfigurationError):
            encode_signal_bits(p.WifiRate.MBPS_6, 4096)

    def test_corrupted_signal_raises(self, rng):
        points = signal_to_coded_symbol(p.WifiRate.MBPS_54, 100)
        garbage = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        with pytest.raises(DecodeError):
            decode_signal_symbol(garbage)


class TestFrameBuilder:
    def test_ppdu_length_formula(self, rng):
        psdu = rng.integers(0, 256, 321, dtype=np.uint8).tobytes()
        for rate in p.WifiRate:
            wf = build_ppdu(psdu, WifiFrameConfig(rate=rate))
            assert wf.size == ppdu_sample_length(321, rate)

    def test_duration_structure(self):
        # preamble 16 us + SIGNAL 4 us + symbols.
        assert ppdu_duration_us(100, p.WifiRate.MBPS_54) == pytest.approx(
            16 + 4 + 4 * 4)

    def test_unit_power(self, rng):
        psdu = rng.integers(0, 256, 200, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu)
        assert np.mean(np.abs(wf) ** 2) == pytest.approx(1.0)

    def test_empty_psdu_rejected(self):
        with pytest.raises(ConfigurationError):
            build_ppdu(b"")

    def test_data_field_symbol_count(self, rng):
        psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        field = build_data_field(psdu, WifiFrameConfig(rate=p.WifiRate.MBPS_54))
        assert field.size == 4 * p.WIFI_OFDM.symbol_length

    def test_signal_field_is_one_symbol(self):
        assert build_signal_field(100, p.WifiRate.MBPS_6).size == 80

    def test_frame_starts_with_short_preamble(self, rng):
        psdu = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu)
        stf = short_preamble()
        # Same shape up to the overall power normalization.
        scale = wf[0] / stf[0]
        assert np.allclose(wf[:160], stf * scale)


class TestReceiver:
    @pytest.mark.parametrize("rate", list(p.WifiRate), ids=lambda r: r.name)
    def test_roundtrip_all_rates(self, rate, rng):
        psdu = rng.integers(0, 256, 150, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu, WifiFrameConfig(rate=rate, scrambler_seed=0x11))
        noise = 0.01
        rx = wf + noise * (rng.standard_normal(wf.size)
                           + 1j * rng.standard_normal(wf.size))
        pad = noise * (rng.standard_normal(200) + 1j * rng.standard_normal(200))
        result = WifiReceiver().receive(np.concatenate([pad, rx, pad]))
        assert result.psdu == psdu
        assert result.rate == rate
        assert result.length == 150

    def test_channel_gain_and_phase_equalized(self, rng):
        psdu = rng.integers(0, 256, 80, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu, WifiFrameConfig(rate=p.WifiRate.MBPS_24))
        channel = 0.35 * np.exp(1j * 2.1)
        rx = wf * channel
        rx += 0.002 * (rng.standard_normal(rx.size)
                       + 1j * rng.standard_normal(rx.size))
        result = WifiReceiver().receive(rx)
        assert result.psdu == psdu

    def test_noise_only_raises(self, rng):
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        with pytest.raises(DecodeError):
            WifiReceiver().receive(noise)

    def test_short_capture_raises(self):
        with pytest.raises(DecodeError):
            WifiReceiver().receive(np.zeros(64, dtype=complex))

    def test_scrambler_seed_recovered(self, rng):
        psdu = rng.integers(0, 256, 50, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu, WifiFrameConfig(scrambler_seed=0x2A))
        result = WifiReceiver().receive(
            wf + 0.01 * (rng.standard_normal(wf.size)
                         + 1j * rng.standard_normal(wf.size)))
        assert result.diagnostics["scrambler_seed"] == 0x2A

    def test_fails_gracefully_at_very_low_snr(self, rng):
        psdu = rng.integers(0, 256, 50, dtype=np.uint8).tobytes()
        wf = build_ppdu(psdu, WifiFrameConfig(rate=p.WifiRate.MBPS_54))
        rx = 0.01 * wf + (rng.standard_normal(wf.size)
                          + 1j * rng.standard_normal(wf.size))
        try:
            result = WifiReceiver().receive(rx)
        except DecodeError:
            return  # sync loss is the expected outcome
        assert result.psdu != psdu  # decoding garbage, not crashing
