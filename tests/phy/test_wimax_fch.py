"""Tests for the WiMAX Frame Control Header."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.ofdm import ofdm_demodulate
from repro.errors import ConfigurationError, DecodeError
from repro.phy.wimax.fch import (
    DLFP_BITS,
    FCH_SYMBOLS,
    DlFramePrefix,
    decode_fch,
    encode_fch,
)
from repro.phy.wimax.frame import build_downlink_frame, data_carriers
from repro.phy.wimax.params import WIMAX_OFDM, WimaxConfig


class TestDlFramePrefix:
    def test_bit_roundtrip(self):
        prefix = DlFramePrefix(used_subchannels=0b101010,
                               repetition_coding=2,
                               coding_indication=5,
                               dlmap_length=123)
        assert DlFramePrefix.from_bits(prefix.to_bits()) == prefix

    def test_bit_width(self):
        assert DlFramePrefix().to_bits().size == DLFP_BITS

    def test_field_bounds(self):
        with pytest.raises(ConfigurationError):
            DlFramePrefix(used_subchannels=64)
        with pytest.raises(ConfigurationError):
            DlFramePrefix(repetition_coding=4)
        with pytest.raises(ConfigurationError):
            DlFramePrefix(coding_indication=8)
        with pytest.raises(ConfigurationError):
            DlFramePrefix(dlmap_length=256)

    def test_reserved_bits_enforced(self):
        bits = DlFramePrefix().to_bits()
        bits[6] = 1  # reserved
        with pytest.raises(DecodeError):
            DlFramePrefix.from_bits(bits)


class TestFchCoding:
    def test_clean_roundtrip(self):
        prefix = DlFramePrefix(dlmap_length=42, coding_indication=1)
        assert decode_fch(encode_fch(prefix)) == prefix

    def test_occupies_96_qpsk_symbols(self):
        assert encode_fch(DlFramePrefix()).size == FCH_SYMBOLS == 96

    def test_repetition_gain(self, rng):
        # The 4x repetition + rate-1/2 code survives heavy noise.
        prefix = DlFramePrefix(dlmap_length=200)
        points = encode_fch(prefix)
        noisy = points + 0.5 * (rng.standard_normal(points.size)
                                + 1j * rng.standard_normal(points.size))
        assert decode_fch(noisy) == prefix

    def test_wrong_size_rejected(self):
        with pytest.raises(DecodeError):
            decode_fch(np.zeros(10, dtype=complex))


class TestFchInFrame:
    def _extract_fch(self, frame: np.ndarray) -> np.ndarray:
        sym_len = WIMAX_OFDM.symbol_length
        symbol = frame[sym_len:2 * sym_len]  # first symbol after preamble
        carriers = data_carriers()
        points = ofdm_demodulate(WIMAX_OFDM, symbol, carriers)
        # Frame symbols are power-normalized after modulation; rescale
        # so the constellation grid is restored.
        scale = np.sqrt(np.mean(np.abs(points) ** 2))
        return points[:FCH_SYMBOLS] / scale

    def test_frame_carries_decodable_fch(self, rng):
        prefix = DlFramePrefix(dlmap_length=77, used_subchannels=0b110011)
        frame = build_downlink_frame(WimaxConfig(), rng, fch=prefix)
        assert decode_fch(self._extract_fch(frame)) == prefix

    def test_default_fch_present(self, rng):
        frame = build_downlink_frame(WimaxConfig(), rng)
        assert decode_fch(self._extract_fch(frame)) == DlFramePrefix()

    def test_surgical_burst_on_fch_blinds_the_frame(self, rng):
        # The paper's surgical-jamming argument, on WiMAX: a burst
        # confined to the FCH symbol destroys the frame's control
        # information while the preamble (and detection) is untouched.
        frame = build_downlink_frame(WimaxConfig(), rng)
        sym_len = WIMAX_OFDM.symbol_length
        jammed = frame.copy()
        jammed[sym_len:2 * sym_len] += 2.0 * (
            rng.standard_normal(sym_len) + 1j * rng.standard_normal(sym_len))
        with pytest.raises(DecodeError):
            decode_fch(self._extract_fch(jammed))
        # The preamble is untouched: cell search still locks.
        from repro.phy.wimax.receiver import WimaxCellSearcher

        result = WimaxCellSearcher(cell_ids=[1], segments=[0]).search(jammed)
        assert (result.cell_id, result.segment) == (1, 0)
