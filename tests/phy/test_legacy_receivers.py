"""Tests for the 802.11b DSSS and 802.15.4 receivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.phy.wifi.dsss import DSSS_SAMPLE_RATE, build_dsss_ppdu
from repro.phy.wifi.dsss_receiver import DsssReceiver
from repro.phy.zigbee.frame import build_ppdu as build_zigbee_ppdu
from repro.phy.zigbee.receiver import ZigbeeReceiver


class TestDsssReceiver:
    def test_clean_roundtrip(self, rng):
        psdu = rng.integers(0, 256, 40, dtype=np.uint8).tobytes()
        wave = build_dsss_ppdu(psdu)
        result = DsssReceiver().receive(wave)
        assert result.psdu == psdu
        assert result.signal_rate == 0x0A

    def test_roundtrip_with_noise(self, rng):
        psdu = rng.integers(0, 256, 25, dtype=np.uint8).tobytes()
        wave = build_dsss_ppdu(psdu)
        rx = wave + 0.15 * (rng.standard_normal(wave.size)
                            + 1j * rng.standard_normal(wave.size))
        assert DsssReceiver().receive(rx).psdu == psdu

    def test_phase_rotation_tolerated(self, rng):
        # DBPSK is differentially coherent: any fixed carrier phase.
        psdu = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        wave = build_dsss_ppdu(psdu) * np.exp(1j * 2.1)
        assert DsssReceiver().receive(wave).psdu == psdu

    def test_spreading_gain_at_low_snr(self, rng):
        # Barker-11 spreading buys ~10.4 dB: decodes below 0 dB SNR.
        psdu = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        wave = build_dsss_ppdu(psdu)
        noise_amp = 10 ** (3.0 / 20)  # SNR = -3 dB
        rx = wave + noise_amp * (rng.standard_normal(wave.size)
                                 + 1j * rng.standard_normal(wave.size)) \
            / np.sqrt(2)
        assert DsssReceiver().receive(rx).psdu == psdu

    def test_noise_only_raises(self, rng):
        noise = rng.standard_normal(50_000) + 1j * rng.standard_normal(50_000)
        with pytest.raises(DecodeError):
            DsssReceiver().receive(noise)

    def test_length_field_respected(self, rng):
        psdu = rng.integers(0, 256, 10, dtype=np.uint8).tobytes()
        result = DsssReceiver().receive(build_dsss_ppdu(psdu))
        assert result.length_us == 80  # 10 bytes at 1 Mb/s


class TestZigbeeReceiver:
    def test_clean_roundtrip(self, rng):
        psdu = rng.integers(0, 256, 30, dtype=np.uint8).tobytes()
        wave = build_zigbee_ppdu(psdu)
        result = ZigbeeReceiver().receive(wave)
        assert result.psdu == psdu

    def test_roundtrip_with_noise(self, rng):
        psdu = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        wave = build_zigbee_ppdu(psdu)
        rx = wave + 0.3 * (rng.standard_normal(wave.size)
                           + 1j * rng.standard_normal(wave.size))
        assert ZigbeeReceiver().receive(rx).psdu == psdu

    def test_spreading_gain_at_negative_snr(self, rng):
        # 32-chip near-orthogonal sequences decode well below 0 dB.
        psdu = rng.integers(0, 256, 12, dtype=np.uint8).tobytes()
        wave = build_zigbee_ppdu(psdu)
        noise_amp = 10 ** (2.0 / 20)  # SNR = -2 dB
        rx = wave + noise_amp * (rng.standard_normal(wave.size)
                                 + 1j * rng.standard_normal(wave.size)) \
            / np.sqrt(2)
        assert ZigbeeReceiver().receive(rx).psdu == psdu

    def test_synchronize_locates_start(self, rng):
        psdu = rng.integers(0, 256, 10, dtype=np.uint8).tobytes()
        wave = build_zigbee_ppdu(psdu)
        start = ZigbeeReceiver().synchronize(wave)
        # The builder starts the frame at sample 0 (chip grid).
        assert start % 2 == 0
        assert start <= 64

    def test_noise_only_raises(self, rng):
        noise = rng.standard_normal(10_000) + 1j * rng.standard_normal(10_000)
        with pytest.raises(DecodeError):
            ZigbeeReceiver().receive(noise)

    def test_short_capture_raises(self):
        with pytest.raises(DecodeError):
            ZigbeeReceiver().receive(np.zeros(50, dtype=complex))


class TestJammedLegacyFrames:
    def test_jam_burst_breaks_zigbee_frame(self, rng):
        # Close the loop with the baseline experiment: a burst from
        # the jammer during the PSDU corrupts the decode.
        psdu = rng.integers(0, 256, 30, dtype=np.uint8).tobytes()
        wave = build_zigbee_ppdu(psdu)
        jammed = wave.copy()
        hit = slice(wave.size // 2, wave.size // 2 + 800)
        jammed[hit] += 3.0 * (rng.standard_normal(800)
                              + 1j * rng.standard_normal(800))
        try:
            result = ZigbeeReceiver().receive(jammed)
            decoded = result.psdu
        except DecodeError:
            decoded = None
        assert decoded != psdu
