"""Tests for bit/byte helpers and CRC-32."""

from __future__ import annotations

import binascii

import numpy as np
import pytest

from repro.errors import StreamError
from repro.phy.bits import (
    append_fcs,
    bits_to_bytes,
    bytes_to_bits,
    check_fcs,
    crc32,
)


class TestBitPacking:
    def test_roundtrip(self, rng):
        data = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_lsb_first_order(self):
        bits = bytes_to_bits(b"\x01")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_byte_0x80(self):
        bits = bytes_to_bits(b"\x80")
        assert list(bits) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_rejects_partial_byte(self):
        with pytest.raises(StreamError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_empty(self):
        assert bits_to_bytes(bytes_to_bits(b"")) == b""


class TestCrc32:
    def test_matches_zlib(self, rng):
        for length in (0, 1, 13, 100, 1500):
            data = rng.integers(0, 256, length, dtype=np.uint8).tobytes()
            assert crc32(data) == binascii.crc32(data)

    def test_known_vector(self):
        # The classic "123456789" check value.
        assert crc32(b"123456789") == 0xCBF43926


class TestFcs:
    def test_append_and_check(self, rng):
        frame = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        assert check_fcs(append_fcs(frame))

    def test_corruption_detected(self, rng):
        frame = append_fcs(rng.integers(0, 256, 64, dtype=np.uint8).tobytes())
        corrupted = bytes([frame[0] ^ 0x01]) + frame[1:]
        assert not check_fcs(corrupted)

    def test_fcs_corruption_detected(self, rng):
        frame = append_fcs(rng.integers(0, 256, 64, dtype=np.uint8).tobytes())
        corrupted = frame[:-1] + bytes([frame[-1] ^ 0x80])
        assert not check_fcs(corrupted)

    def test_short_frame_fails(self):
        assert not check_fcs(b"ab")

    def test_fcs_length(self):
        assert len(append_fcs(b"x")) == 5
