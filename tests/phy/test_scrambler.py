"""Tests for the 802.11 scrambler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.scrambler import recover_seed, scramble, scrambler_sequence


class TestScramblerSequence:
    def test_period_127(self):
        seq = scrambler_sequence(1, 254)
        assert np.array_equal(seq[:127], seq[127:])

    def test_known_all_ones_seed(self):
        # IEEE 802.11-2012 §18.3.5.5: seed 1111111 generates the
        # 127-bit sequence starting 00001110 11110010 11001001 ...
        seq = scrambler_sequence(0x7F, 24)
        expected = [0, 0, 0, 0, 1, 1, 1, 0,
                    1, 1, 1, 1, 0, 0, 1, 0,
                    1, 1, 0, 0, 1, 0, 0, 1]
        assert list(seq) == expected

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(0, 10)

    def test_rejects_wide_seed(self):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(0x80, 10)

    def test_balanced(self):
        seq = scrambler_sequence(0x5B, 127)
        assert int(np.sum(seq)) == 64  # maximal-length property


class TestScramble:
    def test_involution(self, rng):
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        assert np.array_equal(scramble(scramble(bits, 93), 93), bits)

    def test_different_seeds_differ(self, rng):
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        assert not np.array_equal(scramble(bits, 1), scramble(bits, 2))

    def test_zero_bits_become_sequence(self):
        zeros = np.zeros(32, dtype=np.uint8)
        assert np.array_equal(scramble(zeros, 0x7F),
                              scrambler_sequence(0x7F, 32))


class TestRecoverSeed:
    def test_recovers_every_seed(self):
        plain = np.zeros(7, dtype=np.uint8)
        for seed in range(1, 128):
            scrambled = scramble(plain, seed)[:7]
            assert recover_seed(plain, scrambled) == seed

    def test_rejects_short_prefix(self):
        with pytest.raises(ConfigurationError):
            recover_seed(np.zeros(5, dtype=np.uint8), np.zeros(5, dtype=np.uint8))
