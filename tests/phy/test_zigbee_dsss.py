"""Tests for the 802.15.4 and 802.11b DSSS PHYs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.wifi.dsss import (
    BARKER,
    DSSS_SAMPLE_RATE,
    build_dsss_ppdu,
    differential_encode,
    dsss_ppdu_duration_s,
    long_preamble_waveform,
    scramble_bits,
    spread_and_shape,
)
from repro.phy.zigbee import params as zp
from repro.phy.zigbee.frame import (
    build_ppdu,
    oqpsk_modulate,
    ppdu_duration_s,
    preamble_duration_s,
    preamble_waveform,
)


class TestZigbeeChips:
    def test_sixteen_distinct_sequences(self):
        seqs = [tuple(zp.chip_sequence(s)) for s in range(16)]
        assert len(set(seqs)) == 16

    def test_shift_structure(self):
        base = zp.chip_sequence(0)
        for s in range(8):
            assert np.array_equal(zp.chip_sequence(s), np.roll(base, 4 * s))

    def test_conjugate_structure(self):
        for s in range(8):
            lower = zp.chip_sequence(s)
            upper = zp.chip_sequence(s + 8)
            assert np.array_equal(upper[0::2], lower[0::2])
            assert np.array_equal(upper[1::2], lower[1::2] ^ 1)

    def test_near_orthogonality(self):
        # Bipolar cross-correlation between distinct symbols stays low
        # relative to the 32-chip autocorrelation peak.
        bip = [1 - 2 * zp.chip_sequence(s).astype(int) for s in range(16)]
        for i in range(16):
            assert np.dot(bip[i], bip[i]) == 32
        worst = max(abs(np.dot(bip[i], bip[j]))
                    for i in range(16) for j in range(16) if i != j)
        assert worst <= 12

    def test_symbol_range_checked(self):
        with pytest.raises(ConfigurationError):
            zp.chip_sequence(16)

    def test_octet_nibble_order(self):
        symbols = zp.octets_to_symbols(bytes([0xA7]))
        assert list(symbols) == [0x7, 0xA]

    def test_rates(self):
        assert zp.BIT_RATE == 250_000
        assert zp.SYMBOL_RATE == 62_500


class TestZigbeeWaveform:
    def test_preamble_duration(self):
        assert preamble_duration_s() == pytest.approx(128e-6)
        assert preamble_waveform().size >= 256 * zp.SAMPLES_PER_CHIP

    def test_ppdu_duration(self):
        # 6 header octets + PSDU, 32 us per octet.
        assert ppdu_duration_s(10) == pytest.approx((6 + 10) * 32e-6)

    def test_unit_power(self):
        wf = preamble_waveform()
        assert np.mean(np.abs(wf) ** 2) == pytest.approx(1.0)

    def test_constant_envelope_core(self):
        # Half-sine O-QPSK is nearly constant-envelope away from edges.
        wf = preamble_waveform()
        core = np.abs(wf[50:-50])
        assert np.std(core) / np.mean(core) < 0.25

    def test_oqpsk_needs_even_chips(self):
        with pytest.raises(ConfigurationError):
            oqpsk_modulate(np.zeros(31, dtype=np.uint8))

    def test_build_ppdu_validation(self):
        with pytest.raises(ConfigurationError):
            build_ppdu(b"")
        with pytest.raises(ConfigurationError):
            build_ppdu(b"x" * 200)

    def test_preamble_is_periodic(self):
        # Eight identical zero-symbols: the waveform repeats with the
        # 32-chip (64-sample) period away from the rail edges.
        wf = preamble_waveform()
        period = zp.CHIPS_PER_SYMBOL * zp.SAMPLES_PER_CHIP
        a = wf[period:2 * period]
        b = wf[2 * period:3 * period]
        assert np.allclose(a, b, atol=1e-9)


class TestDsss:
    def test_barker_autocorrelation(self):
        # Barker-11's defining property: off-peak |autocorr| <= 1.
        full = np.correlate(BARKER.astype(float), BARKER.astype(float),
                            mode="full")
        peak = full[10]
        assert peak == 11
        off = np.delete(full, 10)
        assert np.max(np.abs(off)) <= 1

    def test_scrambler_self_synchronizing(self):
        bits = np.ones(64, dtype=np.uint8)
        out = scramble_bits(bits)
        assert out.size == 64
        assert 10 < int(np.sum(out)) < 54  # looks random-ish

    def test_differential_encoding(self):
        phases = differential_encode(np.array([0, 1, 1, 0], dtype=np.uint8))
        assert list(phases) == [1, -1, 1, 1]

    def test_spreading_length(self):
        out = spread_and_shape(np.array([1, -1], dtype=np.int8))
        assert out.size == 2 * 11 * 2  # bits * chips * samples/chip

    def test_preamble_duration_144us(self):
        wf = long_preamble_waveform()
        assert wf.size / DSSS_SAMPLE_RATE == pytest.approx(144e-6)

    def test_ppdu_duration(self):
        # 192 us PLCP + 8 us/byte at 1 Mb/s.
        assert dsss_ppdu_duration_s(100) == pytest.approx(192e-6 + 800e-6)

    def test_ppdu_unit_power(self, rng):
        psdu = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        wf = build_dsss_ppdu(psdu)
        assert np.mean(np.abs(wf) ** 2) == pytest.approx(1.0)

    def test_ppdu_validation(self):
        with pytest.raises(ConfigurationError):
            build_dsss_ppdu(b"")

    def test_preamble_deterministic(self):
        assert np.array_equal(long_preamble_waveform(),
                              long_preamble_waveform())


class TestNewTemplates:
    def test_zigbee_template(self):
        from repro.core.coeffs import zigbee_preamble_template

        template = zigbee_preamble_template()
        assert template.size == 64

    def test_dsss_template(self):
        from repro.core.coeffs import dsss_preamble_template

        template = dsss_preamble_template()
        assert template.size == 64

    def test_zigbee_template_detects_preamble(self, rng):
        from repro import units
        from repro.channel.combining import Transmission, mix_at_port
        from repro.core.coeffs import zigbee_preamble_template
        from repro.hw.cross_correlator import (
            CrossCorrelator,
            quantize_coefficients,
        )

        rx = mix_at_port(
            [Transmission(preamble_waveform(), zp.ZIGBEE_SAMPLE_RATE,
                          start_time=40e-6,
                          power=units.db_to_linear(10.0) * 1e-4)],
            out_rate=25e6, duration=300e-6, noise_power=1e-4, rng=rng)
        ci, cq = quantize_coefficients(zigbee_preamble_template())
        corr = CrossCorrelator(ci, cq, threshold=25_000)
        assert corr.process(rx).any()

    def test_dsss_template_detects_preamble(self, rng):
        from repro import units
        from repro.channel.combining import Transmission, mix_at_port
        from repro.core.coeffs import dsss_preamble_template
        from repro.hw.cross_correlator import (
            CrossCorrelator,
            quantize_coefficients,
        )

        rx = mix_at_port(
            [Transmission(long_preamble_waveform(), DSSS_SAMPLE_RATE,
                          start_time=40e-6,
                          power=units.db_to_linear(10.0) * 1e-4)],
            out_rate=25e6, duration=300e-6, noise_power=1e-4, rng=rng)
        # The DSSS waveform is real-valued (BPSK chips), so only the I
        # coefficient bank carries energy and the metric scale is half
        # that of the complex templates.
        ci, cq = quantize_coefficients(dsss_preamble_template())
        assert not cq.any()
        corr = CrossCorrelator(ci, cq, threshold=12_000)
        assert corr.process(rx).any()


class TestZigbeeExperiment:
    def test_baseline_easy_case(self):
        from repro.experiments.zigbee_jamming import run_experiment

        result = run_experiment(n_frames=6)
        assert result.detection_rate == 1.0
        assert result.pre_sfd_jam_rate == 1.0
        assert result.mean_response_margin_s > 20e-6

    def test_margin_table_ordering(self):
        from repro.experiments.zigbee_jamming import response_margin_table

        margins = response_margin_table()
        # Low-rate Zigbee gives by far the largest reaction margin —
        # the paper's motivation in quantitative form.
        assert margins["802.15.4 (250 kb/s)"] > margins["802.16e (10 MHz DL)"] \
            > margins["802.11g (54 Mb/s)"] > 0


class TestJammedZigbeeAtReceiver:
    def test_pre_sfd_burst_prevents_decode(self, rng):
        """Close the baseline loop at the receiver: the jam burst that
        the 802.15.4 experiment lands before the SFD stops a real
        receiver from ever synchronizing to the frame."""
        from repro.phy.zigbee.receiver import ZigbeeReceiver
        from repro.errors import DecodeError

        psdu = rng.integers(0, 256, 30, dtype=np.uint8).tobytes()
        wave = build_ppdu(psdu)
        jammed = wave.copy()
        # Burst over the mid-preamble (where the experiment lands it).
        hit = slice(400, 400 + 600)
        jammed[hit] += 3.0 * (rng.standard_normal(600)
                              + 1j * rng.standard_normal(600))
        try:
            result = ZigbeeReceiver().receive(jammed)
            decoded = result.psdu
        except DecodeError:
            decoded = None
        assert decoded != psdu
