"""Tests for the WiMAX cell searcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import DecodeError
from repro.phy.wimax.frame import build_downlink_frame, downlink_stream
from repro.phy.wimax.params import WIMAX_SAMPLE_RATE, WimaxConfig
from repro.phy.wimax.receiver import WimaxCellSearcher


def capture_for(cell_id: int, segment: int, rng, n_frames: int = 1,
                snr_db: float = 15.0, lead: int = 500) -> np.ndarray:
    config = WimaxConfig(cell_id=cell_id, segment=segment)
    stream = downlink_stream(config, n_frames, rng)
    noise_power = 10 ** (-snr_db / 10)
    capture = np.concatenate([
        awgn(lead, noise_power, rng),
        stream + awgn(stream.size, noise_power, rng),
    ])
    return capture


class TestCellSearch:
    @pytest.mark.parametrize("cell_id,segment", [(0, 0), (1, 0), (2, 1), (3, 2)])
    def test_identifies_cell_and_segment(self, rng, cell_id, segment):
        capture = capture_for(cell_id, segment, rng)
        result = WimaxCellSearcher().search(capture)
        assert result.cell_id == cell_id
        assert result.segment == segment

    def test_frame_start_located(self, rng):
        capture = capture_for(1, 0, rng, lead=777)
        result = WimaxCellSearcher().search(capture)
        assert result.frame_start == pytest.approx(777, abs=4)

    def test_noise_only_raises(self, rng):
        noise = awgn(20_000, 1.0, rng)
        with pytest.raises(DecodeError):
            WimaxCellSearcher().search(noise)

    def test_short_capture_raises(self, rng):
        with pytest.raises(DecodeError):
            WimaxCellSearcher().search(np.zeros(100, dtype=complex))

    def test_works_at_low_snr(self, rng):
        capture = capture_for(1, 0, rng, snr_db=0.0)
        result = WimaxCellSearcher().search(capture)
        assert (result.cell_id, result.segment) == (1, 0)

    def test_restricted_bank(self, rng):
        capture = capture_for(1, 0, rng)
        searcher = WimaxCellSearcher(cell_ids=[1], segments=[0])
        result = searcher.search(capture)
        assert (result.cell_id, result.segment) == (1, 0)


class TestFrameTracking:
    def test_tracks_successive_frames(self, rng):
        capture = capture_for(1, 0, rng, n_frames=4, lead=300)
        starts = WimaxCellSearcher().track_frames(capture)
        assert len(starts) == 4
        frame_len = WimaxConfig().frame_samples
        gaps = np.diff(starts)
        assert np.all(np.abs(gaps - frame_len) <= 4)

    def test_single_frame_tracks_once(self, rng):
        capture = capture_for(1, 0, rng, n_frames=1)
        starts = WimaxCellSearcher().track_frames(capture)
        assert len(starts) == 1
