"""Tests for the convolutional code and Viterbi decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodeError
from repro.phy.coding import CodeRate, ConvolutionalCode


@pytest.fixture(params=list(CodeRate), ids=lambda r: r.name)
def code(request):
    return ConvolutionalCode(request.param)


class TestRates:
    def test_ratios(self):
        assert CodeRate.R1_2.ratio == pytest.approx(0.5)
        assert CodeRate.R2_3.ratio == pytest.approx(2 / 3)
        assert CodeRate.R3_4.ratio == pytest.approx(0.75)

    def test_coded_length_rate_half(self):
        code = ConvolutionalCode(CodeRate.R1_2)
        assert code.coded_length(100) == 200

    def test_coded_length_punctured(self):
        assert ConvolutionalCode(CodeRate.R2_3).coded_length(100) == 150
        assert ConvolutionalCode(CodeRate.R3_4).coded_length(99) == 132

    def test_rate_setter_validation(self):
        code = ConvolutionalCode()
        with pytest.raises(ConfigurationError):
            code.rate = 0.5  # type: ignore[assignment]


class TestEncoding:
    def test_impulse_response_is_generator_polynomials(self):
        # The impulse response's A stream spells g0 = 133o = 1011011
        # and the B stream spells g1 = 171o = 1111001 (MSB first, the
        # current input occupying the register's top bit).
        code = ConvolutionalCode(CodeRate.R1_2)
        out = code.encode(np.array([1, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        stream_a = list(out[0::2])
        stream_b = list(out[1::2])
        assert stream_a == [1, 0, 1, 1, 0, 1, 1]  # 0o133
        assert stream_b == [1, 1, 1, 1, 0, 0, 1]  # 0o171

    def test_zero_input_gives_zero_output(self, code):
        out = code.encode(np.zeros(24, dtype=np.uint8))
        assert not out.any()

    def test_output_length_matches(self, code, rng):
        bits = rng.integers(0, 2, 120).astype(np.uint8)
        assert code.encode(bits).size == code.coded_length(120)

    def test_linearity(self, rng):
        # Convolutional codes are linear: enc(a^b) = enc(a)^enc(b).
        code = ConvolutionalCode(CodeRate.R1_2)
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(code.encode(a ^ b),
                              code.encode(a) ^ code.encode(b))


class TestDecoding:
    def test_clean_roundtrip(self, code, rng):
        bits = rng.integers(0, 2, 240).astype(np.uint8)
        bits[-6:] = 0
        decoded = code.decode_hard(code.encode(bits), bits.size)
        assert np.array_equal(decoded, bits)

    def test_corrects_isolated_errors(self, rng):
        code = ConvolutionalCode(CodeRate.R1_2)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        bits[-6:] = 0
        coded = code.encode(bits)
        # Flip well-separated coded bits: free distance 10 corrects them.
        for pos in (10, 100, 250, 380):
            coded[pos] ^= 1
        decoded = code.decode_hard(coded, bits.size)
        assert np.array_equal(decoded, bits)

    def test_soft_beats_hard_at_low_snr(self, rng):
        code = ConvolutionalCode(CodeRate.R1_2)
        bits = rng.integers(0, 2, 3000).astype(np.uint8)
        bits[-6:] = 0
        coded = code.encode(bits)
        clean = 1.0 - 2.0 * coded.astype(float)
        noisy = clean + rng.normal(0, 1.0, coded.size)
        soft_errors = int(np.sum(code.decode(noisy, bits.size) != bits))
        hard_errors = int(np.sum(
            code.decode_hard((noisy < 0).astype(np.uint8), bits.size) != bits))
        assert soft_errors <= hard_errors

    def test_ber_waterfall(self, rng):
        # BER must decrease monotonically (statistically) with SNR.
        code = ConvolutionalCode(CodeRate.R1_2)
        bits = rng.integers(0, 2, 4000).astype(np.uint8)
        bits[-6:] = 0
        coded = code.encode(bits)
        clean = 1.0 - 2.0 * coded.astype(float)
        errors = []
        for sigma in (1.2, 0.8, 0.5):
            noisy = clean + rng.normal(0, sigma, coded.size)
            errors.append(int(np.sum(code.decode(noisy, bits.size) != bits)))
        assert errors[0] > errors[2]
        assert errors[2] == 0

    def test_wrong_soft_length_rejected(self, code):
        with pytest.raises(DecodeError):
            code.decode(np.zeros(11), 24)

    def test_bad_info_bits_rejected(self, code):
        with pytest.raises(DecodeError):
            code.decode(np.zeros(0), 0)

    def test_punctured_roundtrips_with_noise(self, rng):
        for rate in (CodeRate.R2_3, CodeRate.R3_4):
            code = ConvolutionalCode(rate)
            bits = rng.integers(0, 2, 600).astype(np.uint8)
            bits[-6:] = 0
            coded = code.encode(bits)
            noisy = 1.0 - 2.0 * coded.astype(float) + rng.normal(0, 0.35, coded.size)
            decoded = code.decode(noisy, bits.size)
            assert np.array_equal(decoded, bits), rate
