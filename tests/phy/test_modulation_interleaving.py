"""Tests for constellation mapping and the block interleaver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.phy.interleaving import deinterleave, interleave, interleave_indices
from repro.phy.modulation import Modulation, demap_bits, hard_decide, map_bits


class TestMapping:
    @pytest.mark.parametrize("mod", list(Modulation), ids=lambda m: m.name)
    def test_hard_decision_roundtrip(self, mod, rng):
        bits = rng.integers(0, 2, 600 * mod.bits_per_symbol).astype(np.uint8)
        assert np.array_equal(hard_decide(map_bits(bits, mod), mod), bits)

    @pytest.mark.parametrize("mod", list(Modulation), ids=lambda m: m.name)
    def test_unit_average_energy(self, mod, rng):
        bits = rng.integers(0, 2, 4000 * mod.bits_per_symbol).astype(np.uint8)
        symbols = map_bits(bits, mod)
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_bpsk_values(self):
        symbols = map_bits(np.array([0, 1], dtype=np.uint8), Modulation.BPSK)
        assert symbols[0] == pytest.approx(-1.0)
        assert symbols[1] == pytest.approx(1.0)

    def test_qpsk_gray_axes(self):
        symbols = map_bits(np.array([0, 0, 1, 1], dtype=np.uint8),
                           Modulation.QPSK)
        assert symbols[0] == pytest.approx((-1 - 1j) / np.sqrt(2))
        assert symbols[1] == pytest.approx((1 + 1j) / np.sqrt(2))

    def test_16qam_standard_mapping(self):
        # 802.11 Table: b0b1 = 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
        cases = {(0, 0): -3, (0, 1): -1, (1, 1): 1, (1, 0): 3}
        for (b0, b1), level in cases.items():
            bits = np.array([b0, b1, 0, 0], dtype=np.uint8)
            sym = map_bits(bits, Modulation.QAM16)[0]
            assert sym.real == pytest.approx(level / np.sqrt(10))

    def test_64qam_standard_mapping(self):
        cases = {(0, 0, 0): -7, (0, 1, 0): -1, (1, 1, 0): 1, (1, 0, 0): 7,
                 (0, 0, 1): -5, (0, 1, 1): -3, (1, 1, 1): 3, (1, 0, 1): 5}
        for (b0, b1, b2), level in cases.items():
            bits = np.array([b0, b1, b2, 0, 0, 0], dtype=np.uint8)
            sym = map_bits(bits, Modulation.QAM64)[0]
            assert sym.real == pytest.approx(level / np.sqrt(42))

    def test_gray_property_adjacent_levels(self):
        # Adjacent constellation levels differ in exactly one bit.
        for mod, half in ((Modulation.QAM16, 2), (Modulation.QAM64, 3)):
            level_to_bits = {}
            for idx in range(1 << half):
                bits = [(idx >> k) & 1 for k in range(half)]
                full = np.array(bits + [0] * half, dtype=np.uint8)
                sym = map_bits(full, mod)[0]
                level_to_bits[round(float(sym.real) * 100)] = bits
            levels = sorted(level_to_bits)
            for a, b in zip(levels, levels[1:]):
                diff = sum(x != y for x, y in
                           zip(level_to_bits[a], level_to_bits[b]))
                assert diff == 1, mod

    def test_wrong_bit_count_rejected(self):
        with pytest.raises(StreamError):
            map_bits(np.ones(5, dtype=np.uint8), Modulation.QPSK)

    def test_soft_demap_sign_convention(self):
        # Positive soft value means bit 0.
        soft = demap_bits(np.array([-1.0 + 0j]), Modulation.BPSK)
        assert soft[0] > 0

    def test_soft_magnitude_grows_with_distance(self):
        near = abs(demap_bits(np.array([-0.1 + 0j]), Modulation.BPSK))[0]
        far = abs(demap_bits(np.array([-2.0 + 0j]), Modulation.BPSK))[0]
        assert far > near


class TestInterleaver:
    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4), (288, 6)])
    def test_roundtrip(self, n_cbps, n_bpsc, rng):
        bits = rng.integers(0, 2, n_cbps * 4).astype(np.uint8)
        out = deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.array_equal(out, bits)

    def test_is_permutation(self):
        for n_cbps, n_bpsc in ((48, 1), (288, 6)):
            idx = interleave_indices(n_cbps, n_bpsc)
            assert sorted(idx) == list(range(n_cbps))

    def test_adjacent_bits_separated(self):
        # The point of the interleaver: adjacent coded bits land on
        # non-adjacent positions.
        idx = interleave_indices(192, 4)
        gaps = np.abs(np.diff(idx.astype(int)))
        assert np.min(gaps) > 1

    def test_known_first_entries_bpsk(self):
        # For BPSK (s=1): j = i = (n/16)(k mod 16) + floor(k/16).
        idx = interleave_indices(48, 1)
        assert idx[0] == 0
        assert idx[1] == 3
        assert idx[16] == 1

    def test_wrong_length_rejected(self, rng):
        with pytest.raises(StreamError):
            interleave(np.ones(50, dtype=np.uint8), 48, 1)
        with pytest.raises(StreamError):
            deinterleave(np.ones(50, dtype=np.uint8), 48, 1)

    def test_works_on_soft_values(self, rng):
        soft = rng.standard_normal(96)
        out = deinterleave(interleave(soft, 96, 2), 96, 2)
        assert np.allclose(out, soft)
