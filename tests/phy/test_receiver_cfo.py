"""Tests for the receiver's CFO estimation and correction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
from repro.phy.wifi.params import WIFI_SAMPLE_RATE, WifiRate
from repro.phy.wifi.receiver import WifiReceiver


def _with_cfo(waveform: np.ndarray, cfo_hz: float) -> np.ndarray:
    n = np.arange(waveform.size)
    return waveform * np.exp(2j * np.pi * cfo_hz * n / WIFI_SAMPLE_RATE)


@pytest.fixture
def frame(rng):
    psdu = rng.integers(0, 256, 120, dtype=np.uint8).tobytes()
    return psdu, build_ppdu(psdu, WifiFrameConfig(rate=WifiRate.MBPS_24))


class TestCfoEstimation:
    @pytest.mark.parametrize("cfo_hz", [-80e3, -12e3, 5e3, 40e3, 120e3])
    def test_estimate_accuracy(self, frame, rng, cfo_hz):
        psdu, wave = frame
        rx = _with_cfo(wave, cfo_hz)
        rx += 0.01 * (rng.standard_normal(rx.size)
                      + 1j * rng.standard_normal(rx.size))
        receiver = WifiReceiver()
        start = receiver.synchronize(rx)
        estimate = receiver.estimate_cfo(rx, start)
        assert estimate == pytest.approx(cfo_hz, abs=2e3)

    def test_zero_cfo_estimates_near_zero(self, frame, rng):
        psdu, wave = frame
        rx = wave + 0.01 * (rng.standard_normal(wave.size)
                            + 1j * rng.standard_normal(wave.size))
        receiver = WifiReceiver()
        start = receiver.synchronize(rx)
        assert abs(receiver.estimate_cfo(rx, start)) < 2e3


class TestCfoCorrection:
    @pytest.mark.parametrize("cfo_hz", [-60e3, 25e3, 90e3])
    def test_decodes_through_cfo(self, frame, rng, cfo_hz):
        psdu, wave = frame
        rx = _with_cfo(wave, cfo_hz)
        rx += 0.01 * (rng.standard_normal(rx.size)
                      + 1j * rng.standard_normal(rx.size))
        result = WifiReceiver(correct_cfo=True).receive(rx)
        assert result.psdu == psdu
        assert result.diagnostics["cfo_hz"] == pytest.approx(cfo_hz, abs=2e3)

    def test_uncorrected_receiver_fails_at_large_cfo(self, frame, rng):
        # A sanity check that the correction is doing real work: with
        # correction off, a large CFO garbles the payload.
        psdu, wave = frame
        rx = _with_cfo(wave, 90e3)
        rx += 0.01 * (rng.standard_normal(rx.size)
                      + 1j * rng.standard_normal(rx.size))
        from repro.errors import DecodeError

        try:
            result = WifiReceiver(correct_cfo=False).receive(rx)
            decoded = result.psdu
        except DecodeError:
            decoded = None
        assert decoded != psdu

    def test_impaired_front_end_roundtrip(self, frame, rng):
        # The full story: a typical N210 front end (DC, IQ, CFO)
        # between transmitter and receiver, and the frame still
        # decodes thanks to CFO correction + per-subcarrier
        # equalization absorbing the rest.
        from repro.hw.impairments import FrontEndImpairments

        psdu, wave = frame
        imp = FrontEndImpairments(dc_offset=0.01 + 0.008j,
                                  iq_gain_imbalance_db=0.3,
                                  iq_phase_error_deg=1.5,
                                  cfo_hz=20e3,
                                  sample_rate=WIFI_SAMPLE_RATE)
        rx = imp.apply(0.3 * wave)
        rx += 0.003 * (rng.standard_normal(rx.size)
                       + 1j * rng.standard_normal(rx.size))
        result = WifiReceiver().receive(rx)
        assert result.psdu == psdu


class TestSnrEstimation:
    @pytest.mark.parametrize("snr_db", [5.0, 15.0, 25.0])
    def test_estimate_tracks_true_snr(self, frame, rng, snr_db):
        psdu, wave = frame
        amp = 10 ** (-snr_db / 20)
        rx = wave + amp * (rng.standard_normal(wave.size)
                           + 1j * rng.standard_normal(wave.size)) / np.sqrt(2)
        result = WifiReceiver().receive(rx)
        assert result.snr_estimate_db == pytest.approx(snr_db, abs=3.0)

    def test_high_snr_reports_high(self, frame, rng):
        psdu, wave = frame
        rx = wave + 1e-4 * (rng.standard_normal(wave.size)
                            + 1j * rng.standard_normal(wave.size))
        result = WifiReceiver().receive(rx)
        assert result.snr_estimate_db > 30.0
