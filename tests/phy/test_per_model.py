"""Tests for the SINR->PER link model."""

from __future__ import annotations

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.phy.coding import CodeRate
from repro.phy.modulation import Modulation
from repro.phy.wifi.params import WifiRate
from repro.phy.wifi.per_model import (
    JamExposure,
    LinkQualityModel,
    coded_ber,
    segment_success,
    uncoded_ber,
)


class TestUncodedBer:
    def test_half_at_zero_snr(self):
        assert uncoded_ber(0.0, Modulation.BPSK) == 0.5

    def test_decreases_with_snr(self):
        for mod in Modulation:
            bers = [uncoded_ber(units.db_to_linear(snr), mod)
                    for snr in (0, 5, 10, 15, 20, 25)]
            assert all(a >= b for a, b in zip(bers, bers[1:])), mod

    def test_higher_order_needs_more_snr(self):
        snr = units.db_to_linear(10.0)
        assert uncoded_ber(snr, Modulation.BPSK) < uncoded_ber(snr, Modulation.QPSK) \
            < uncoded_ber(snr, Modulation.QAM16) < uncoded_ber(snr, Modulation.QAM64)

    def test_bpsk_known_value(self):
        # BER = Q(sqrt(2*SNR)); at SNR 10 lin -> Q(sqrt(20)) ~ 3.9e-6.
        assert uncoded_ber(10.0, Modulation.BPSK) == pytest.approx(3.87e-6, rel=0.05)


class TestCodedBer:
    def test_coding_gain(self):
        # At moderate SNR the coded BER must beat the uncoded one.
        snr = units.db_to_linear(6.0)
        assert coded_ber(snr, Modulation.BPSK, CodeRate.R1_2) \
            < uncoded_ber(snr, Modulation.BPSK)

    def test_stronger_code_wins(self):
        snr = units.db_to_linear(8.0)
        assert coded_ber(snr, Modulation.QPSK, CodeRate.R1_2) \
            < coded_ber(snr, Modulation.QPSK, CodeRate.R3_4)

    def test_saturates_at_half(self):
        assert coded_ber(0.0, Modulation.QAM64, CodeRate.R3_4) == 0.5


class TestSegmentSuccess:
    def test_zero_bits_always_succeed(self):
        assert segment_success(-20.0, WifiRate.MBPS_54, 0) == 1.0

    def test_high_snr_succeeds(self):
        assert segment_success(35.0, WifiRate.MBPS_54, 12000) > 0.99

    def test_low_snr_fails(self):
        assert segment_success(5.0, WifiRate.MBPS_54, 12000) < 0.01

    def test_robust_rate_survives_lower_snr(self):
        snr = 8.0
        assert segment_success(snr, WifiRate.MBPS_6, 12000) \
            > segment_success(snr, WifiRate.MBPS_54, 12000)

    def test_longer_frames_fail_more(self):
        snr = 22.0
        assert segment_success(snr, WifiRate.MBPS_54, 12000) \
            <= segment_success(snr, WifiRate.MBPS_54, 1200)


class TestLinkQualityModel:
    def test_snr_from_power(self):
        model = LinkQualityModel(noise_floor_dbm=-95.0)
        assert model.snr_db(-35.0) == pytest.approx(60.0)

    def test_sinr_with_interference(self):
        model = LinkQualityModel(noise_floor_dbm=-95.0)
        # Strong interferer dominates the noise floor.
        sinr = model.sinr_db(-40.0, interference_dbm=-60.0)
        assert sinr == pytest.approx(20.0, abs=0.1)

    def test_clean_frame_at_high_snr(self):
        model = LinkQualityModel()
        prob = model.frame_success_probability(40.0, WifiRate.MBPS_54, 1470)
        assert prob > 0.99

    def test_jam_over_preamble_kills_frame(self):
        model = LinkQualityModel()
        exposure = JamExposure(preamble_hit=True, data_overlap_us=50.0,
                               sinr_jammed_db=-10.0)
        prob = model.frame_success_probability(40.0, WifiRate.MBPS_54,
                                               1470, exposure)
        assert prob == 0.0

    def test_partial_data_jam_degrades(self):
        model = LinkQualityModel()
        exposure = JamExposure(preamble_hit=False, data_overlap_us=50.0,
                               sinr_jammed_db=10.0)
        jammed = model.frame_success_probability(40.0, WifiRate.MBPS_54,
                                                 1470, exposure)
        clean = model.frame_success_probability(40.0, WifiRate.MBPS_54, 1470)
        assert jammed < clean

    def test_weak_jam_harmless(self):
        model = LinkQualityModel()
        exposure = JamExposure(preamble_hit=False, data_overlap_us=20.0,
                               sinr_jammed_db=35.0)
        prob = model.frame_success_probability(40.0, WifiRate.MBPS_54,
                                               1470, exposure)
        assert prob > 0.95

    def test_rejects_empty_psdu(self):
        with pytest.raises(ConfigurationError):
            LinkQualityModel().frame_success_probability(
                40.0, WifiRate.MBPS_54, 0)
