"""Windowed feature extraction from victim-side link traces."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.defense.features import (
    FEATURE_NAMES,
    NO_FRAME_RSSI_DBM,
    LinkTraceRecorder,
    busy_fraction,
    busy_runs,
    delivery_ratio,
    extract_windows,
    feature_matrix,
    mean_rssi_dbm,
)
from repro.errors import ConfigurationError
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel
from repro.core.presets import continuous_jammer


class TestScalarHelpers:
    def test_delivery_ratio_silent_link_is_perfect(self):
        assert delivery_ratio(0, 0) == 1.0

    def test_delivery_ratio(self):
        assert delivery_ratio(3, 4) == 0.75

    def test_busy_fraction_no_samples(self):
        assert busy_fraction(0, 0) == 0.0

    def test_busy_fraction(self):
        assert busy_fraction(9, 10) == 0.9

    def test_mean_rssi_no_frames(self):
        assert mean_rssi_dbm(0.0, 0) == float("-inf")

    def test_mean_rssi(self):
        assert mean_rssi_dbm(-150.0, 2) == -75.0


class TestBusyRuns:
    def test_empty(self):
        assert busy_runs(np.array([], dtype=bool)).size == 0

    def test_all_idle(self):
        assert busy_runs(np.zeros(8, dtype=bool)).size == 0

    def test_all_busy_is_one_run(self):
        runs = busy_runs(np.ones(5, dtype=bool))
        assert list(runs) == [5]

    def test_mixed_runs(self):
        flags = np.array([1, 1, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        assert list(busy_runs(flags)) == [2, 1, 3]

    def test_runs_at_both_edges(self):
        flags = np.array([1, 0, 1], dtype=bool)
        assert list(busy_runs(flags)) == [1, 1]


class TestExtractWindows:
    def test_validates_window_length(self):
        with pytest.raises(ConfigurationError):
            extract_windows([], [], duration_s=1.0, window_s=0.0)
        with pytest.raises(ConfigurationError):
            extract_windows([], [], duration_s=0.01, window_s=0.02)

    def test_window_count_tiles_duration(self):
        windows = extract_windows([], [], duration_s=0.1, window_s=0.02)
        assert len(windows) == 5
        assert windows[0].start_s == 0.0
        assert windows[-1].start_s == pytest.approx(0.08)

    def test_empty_window_placeholders(self):
        [w] = extract_windows([], [], duration_s=0.02, window_s=0.02)
        assert w.frames_seen == 0
        assert w.prr == 1.0
        assert w.mean_rssi_dbm == NO_FRAME_RSSI_DBM
        assert w.iat_mean_s == 0.02
        assert w.iat_cv == 0.0
        assert w.busy_fraction == 0.0

    def test_prr_and_rssi_per_window(self):
        frames = [(0.001, -70.0, True), (0.005, -72.0, False),
                  (0.021, -60.0, True)]
        w0, w1 = extract_windows(frames, [], duration_s=0.04,
                                 window_s=0.02)
        assert w0.frames_seen == 2 and w0.frames_delivered == 1
        assert w0.prr == 0.5
        assert w0.mean_rssi_dbm == pytest.approx(-71.0)
        assert w1.frames_seen == 1 and w1.prr == 1.0
        assert w1.mean_rssi_dbm == pytest.approx(-60.0)

    def test_inter_arrival_statistics(self):
        frames = [(0.002, -70.0, True), (0.006, -70.0, True),
                  (0.010, -70.0, True)]
        [w] = extract_windows(frames, [], duration_s=0.02, window_s=0.02)
        assert w.iat_mean_s == pytest.approx(0.004)
        assert w.iat_cv == pytest.approx(0.0)

    def test_busy_run_statistics(self):
        busy = [(i * 0.001, flag) for i, flag in
                enumerate([False, True, True, True, False, True,
                           False, False, False, False])]
        [w] = extract_windows([], busy, duration_s=0.01, window_s=0.01)
        assert w.busy_fraction == pytest.approx(0.4)
        # Runs of 3 and 1 samples at 1 ms per sample.
        assert w.busy_run_mean_s == pytest.approx(0.002)
        assert w.busy_run_max_s == pytest.approx(0.003)

    def test_inconsistency_high_for_strong_signal_losses(self):
        strong_loss = [(0.001, -60.0, False)]
        weak_loss = [(0.001, -92.0, False)]
        healthy = [(0.001, -60.0, True)]
        [w_jam] = extract_windows(strong_loss, [], 0.02, 0.02)
        [w_poor] = extract_windows(weak_loss, [], 0.02, 0.02)
        [w_ok] = extract_windows(healthy, [], 0.02, 0.02)
        assert w_jam.inconsistency > 0.9
        assert w_poor.inconsistency < 0.05
        assert w_ok.inconsistency == pytest.approx(0.0)

    def test_vector_follows_feature_names(self):
        frames = [(0.001, -70.0, True)]
        [w] = extract_windows(frames, [], 0.02, 0.02)
        vec = w.vector()
        assert vec.shape == (len(FEATURE_NAMES),)
        assert vec[FEATURE_NAMES.index("prr")] == w.prr
        assert vec[FEATURE_NAMES.index("frames_seen")] == 1.0
        assert all(math.isfinite(v) for v in vec)

    def test_feature_matrix_shapes(self):
        windows = extract_windows([], [], duration_s=0.06, window_s=0.02)
        assert feature_matrix(windows).shape == (3, len(FEATURE_NAMES))
        assert feature_matrix([]).shape == (0, len(FEATURE_NAMES))


def _loss_free(_src: str, _dst: str) -> float:
    return 0.0


class TestLinkTraceRecorder:
    def test_validates_configuration(self):
        kernel = SimKernel()
        medium = Medium(_loss_free)
        rng = np.random.default_rng(1)
        ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
        with pytest.raises(ConfigurationError):
            LinkTraceRecorder(kernel, medium, ap,
                              cca_sample_interval_s=0.0)
        recorder = LinkTraceRecorder(kernel, medium, ap)
        with pytest.raises(ConfigurationError):
            recorder.start(0.0)

    def test_records_frames_and_busy_samples(self):
        kernel = SimKernel()
        medium = Medium(_loss_free)
        rng = np.random.default_rng(1)
        ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
        station = Station("client", kernel, medium, ap, rng,
                          tx_power_dbm=14.0)
        recorder = LinkTraceRecorder(kernel, medium, ap,
                                     cca_sample_interval_s=1e-3)
        recorder.start(0.05)
        for i in range(10):
            kernel.schedule(0.004 * i,
                            lambda: station.enqueue_datagram(200))
        kernel.run_until(0.05)
        assert len(recorder.frames) == 10
        assert all(delivered for _t, _r, delivered in recorder.frames)
        assert len(recorder.busy) >= 40
        windows = recorder.windows(0.01)
        assert len(windows) == 5
        assert sum(w.frames_seen for w in windows) == 10

    def test_busy_fraction_sees_constant_jammer(self):
        kernel = SimKernel()
        medium = Medium(_loss_free)
        rng = np.random.default_rng(1)
        ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
        recorder = LinkTraceRecorder(kernel, medium, ap,
                                     cca_sample_interval_s=1e-3)
        recorder.start(0.02)
        jammer = JammerNode("jammer", kernel, medium, continuous_jammer(),
                            tx_power_dbm=10.0)
        jammer.start(0.02)
        kernel.run_until(0.02)
        [w] = recorder.windows(0.02)
        assert w.busy_fraction > 0.9
