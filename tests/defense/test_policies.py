"""Randomized jamming policies and the MAC-plane policy gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presets import continuous_jammer, reactive_jammer
from repro.defense.policies import (
    ALWAYS_JAM,
    JamPolicy,
    PolicyGate,
    RandomizedJammerNode,
    randomized_policy,
)
from repro.errors import ConfigurationError
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, Station
from repro.mac.simkernel import SimKernel


class TestJamPolicy:
    def test_validates_probability(self):
        with pytest.raises(ConfigurationError):
            JamPolicy(name="bad", jam_probability=0.0)
        with pytest.raises(ConfigurationError):
            JamPolicy(name="bad", jam_probability=1.5)

    def test_validates_jitter_and_off_period(self):
        with pytest.raises(ConfigurationError):
            JamPolicy(name="bad", duty_jitter=1.0)
        with pytest.raises(ConfigurationError):
            JamPolicy(name="bad", off_period_s=-1e-3)

    def test_always_jam_is_not_randomized(self):
        assert not ALWAYS_JAM.randomized
        assert ALWAYS_JAM.jam_probability == 1.0

    def test_randomized_policy_names(self):
        assert randomized_policy(0.5).name == "p0.5"
        assert randomized_policy(0.5, duty_jitter=0.2).name == "p0.5-j0.2"
        assert randomized_policy(0.5, off_period_s=1e-3).name \
            == "p0.5-off1ms"

    def test_describe_mentions_every_active_dimension(self):
        text = randomized_policy(0.3, duty_jitter=0.1,
                                 off_period_s=2e-3).describe()
        assert "p=0.3" in text and "jitter=0.1" in text and "off=2ms" in text


class TestPolicyGate:
    def test_always_jam_consumes_no_draws(self):
        rng = np.random.default_rng(5)
        gate = PolicyGate(ALWAYS_JAM, rng)
        for _ in range(10):
            assert gate.should_fire()
        assert gate.uptime_s(1e-4) == 1e-4
        assert gate.holdoff_s() == 0.0
        # The generator was never touched: a fresh twin agrees.
        assert rng.random() == np.random.default_rng(5).random()

    def test_bernoulli_rate_tracks_probability(self):
        gate = PolicyGate(randomized_policy(0.3), np.random.default_rng(2))
        fired = sum(gate.should_fire() for _ in range(4000))
        assert gate.triggers_seen == 4000
        assert gate.triggers_fired == fired
        assert gate.triggers_suppressed == 4000 - fired
        assert 0.25 < fired / 4000 < 0.35

    def test_jittered_uptime_stays_in_band(self):
        gate = PolicyGate(randomized_policy(1.0, duty_jitter=0.25),
                          np.random.default_rng(3))
        draws = [gate.uptime_s(1e-4) for _ in range(500)]
        assert all(0.75e-4 <= d <= 1.25e-4 for d in draws)
        assert max(draws) > 1.1e-4 and min(draws) < 0.9e-4

    def test_holdoff_has_exponential_mean(self):
        gate = PolicyGate(randomized_policy(1.0, off_period_s=2e-3),
                          np.random.default_rng(4))
        draws = [gate.holdoff_s() for _ in range(4000)]
        assert all(d >= 0.0 for d in draws)
        assert np.mean(draws) == pytest.approx(2e-3, rel=0.1)

    def test_gate_is_pure_in_the_rng(self):
        policy = randomized_policy(0.5, duty_jitter=0.2, off_period_s=1e-3)
        trace = []
        for _ in range(2):
            gate = PolicyGate(policy, np.random.default_rng(9))
            trace.append([(gate.should_fire(), gate.uptime_s(1e-4),
                           gate.holdoff_s()) for _ in range(50)])
        assert trace[0] == trace[1]


def _loss_free(_src: str, _dst: str) -> float:
    return 0.0


def _run_jammed(policy: JamPolicy, seed: int = 1,
                duration_s: float = 0.05) -> RandomizedJammerNode:
    rng = np.random.default_rng(seed)
    kernel = SimKernel()
    medium = Medium(_loss_free)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=20.0)
    station = Station("client", kernel, medium, ap, rng,
                      tx_power_dbm=14.0)
    jammer = RandomizedJammerNode(
        "jammer", kernel, medium, reactive_jammer(1e-4),
        tx_power_dbm=10.0, policy=policy, rng=rng)
    jammer.start(duration_s)
    for i in range(40):
        kernel.schedule(duration_s / 40 * i,
                        lambda: station.enqueue_datagram(200))
    kernel.run_until(duration_s)
    return jammer


class TestRandomizedJammerNode:
    def test_rejects_continuous_personalities(self):
        kernel = SimKernel()
        medium = Medium(_loss_free)
        with pytest.raises(ConfigurationError):
            RandomizedJammerNode(
                "jammer", kernel, medium, continuous_jammer(),
                tx_power_dbm=10.0, policy=ALWAYS_JAM,
                rng=np.random.default_rng(1))

    def test_always_jam_fires_every_eligible_trigger(self):
        jammer = _run_jammed(ALWAYS_JAM)
        assert jammer.bursts > 0
        assert jammer.gate.triggers_fired == jammer.bursts
        assert jammer.gate.triggers_suppressed == 0
        assert jammer.jam_airtime_s == pytest.approx(jammer.bursts * 1e-4)

    def test_low_probability_suppresses_most_triggers(self):
        always = _run_jammed(ALWAYS_JAM)
        rare = _run_jammed(randomized_policy(0.1))
        assert rare.gate.triggers_suppressed > 0
        assert rare.bursts < always.bursts
        assert rare.jam_airtime_s < always.jam_airtime_s

    def test_holdoff_reduces_burst_count(self):
        no_hold = _run_jammed(ALWAYS_JAM)
        held = _run_jammed(JamPolicy(name="held", off_period_s=5e-3))
        assert held.bursts < no_hold.bursts

    def test_runs_are_reproducible_per_seed(self):
        a = _run_jammed(randomized_policy(0.5), seed=6)
        b = _run_jammed(randomized_policy(0.5), seed=6)
        assert a.bursts == b.bursts
        assert a.jam_airtime_s == b.jam_airtime_s
        assert a.gate.triggers_seen == b.gate.triggers_seen
