"""The (policy x detector) tournament harness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.defense.features import FEATURE_NAMES
from repro.defense.policies import ALWAYS_JAM, randomized_policy
from repro.defense.tournament import (
    CELLS_COUNTER,
    RUNS_COUNTER,
    TRIALS_COUNTER,
    WINDOWS_COUNTER,
    DefenseScenario,
    TournamentResult,
    run_tournament,
    run_trial,
)
from repro.errors import ConfigurationError
from repro.runtime.jobs import ResilienceConfig
from repro.telemetry.session import Telemetry

#: A deliberately small scenario: 2 windows per observed interval.
FAST = DefenseScenario(duration_s=0.02, window_s=0.01)


class TestDefenseScenario:
    def test_validates_kind(self):
        with pytest.raises(ConfigurationError):
            DefenseScenario(kind="barrage")

    def test_validates_duration(self):
        with pytest.raises(ConfigurationError):
            DefenseScenario(duration_s=0.001, window_s=0.01)

    def test_windows_per_run(self):
        assert DefenseScenario().windows_per_run == 24
        assert FAST.windows_per_run == 2


class TestRunTrial:
    def test_trial_shape_and_labels(self):
        obs = run_trial(FAST, ALWAYS_JAM, np.random.default_rng(1))
        assert obs.features.shape == (4, len(FEATURE_NAMES))
        assert list(obs.labels) == [0, 0, 1, 1]
        assert obs.duration_s == FAST.duration_s

    def test_trial_is_pure_in_the_rng(self):
        runs = [run_trial(FAST, randomized_policy(0.5),
                          np.random.default_rng(3)) for _ in range(2)]
        np.testing.assert_array_equal(runs[0].features, runs[1].features)
        assert runs[0].jam_airtime_s == runs[1].jam_airtime_s
        assert runs[0].jam_bursts == runs[1].jam_bursts

    def test_always_jam_disrupts_the_link(self):
        obs = run_trial(DefenseScenario(), ALWAYS_JAM,
                        np.random.default_rng(1))
        assert obs.clean_prr > 0.9
        assert obs.jammed_prr < obs.clean_prr
        assert obs.jam_airtime_s > 0.0
        assert obs.jam_bursts > 0

    def test_constant_scenario_pins_the_medium(self):
        obs = run_trial(DefenseScenario(kind="constant"), ALWAYS_JAM,
                        np.random.default_rng(1))
        assert obs.jam_airtime_s == pytest.approx(
            DefenseScenario().duration_s)
        jammed = obs.features[obs.labels == 1]
        busy = jammed[:, FEATURE_NAMES.index("busy_fraction")]
        assert np.all(busy > 0.9)

    def test_constant_scenario_rejects_randomized_policies(self):
        with pytest.raises(ConfigurationError):
            run_trial(DefenseScenario(kind="constant"),
                      randomized_policy(0.5), np.random.default_rng(1))


class TestRunTournament:
    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            run_tournament(scenario=FAST, n_trials=0)
        with pytest.raises(ConfigurationError):
            run_tournament(policies=[], scenario=FAST)
        with pytest.raises(ConfigurationError):
            run_tournament(detectors=[], scenario=FAST)

    def test_grid_and_accessors(self):
        policies = [ALWAYS_JAM, randomized_policy(0.5)]
        result = run_tournament(policies=policies, scenario=FAST,
                                n_trials=2, seed=5)
        assert isinstance(result, TournamentResult)
        assert len(result.cells) == 4
        assert result.detectors == ["logistic", "xu-rule"]
        assert 0.0 <= result.auc_for("p0.5", "logistic") <= 1.0
        assert result.outcome_for("always").jam_probability == 1.0
        with pytest.raises(ConfigurationError):
            result.auc_for("never", "logistic")
        with pytest.raises(ConfigurationError):
            result.outcome_for("never")

    def test_curve_pairs_efficiency_with_auc(self):
        result = run_tournament(policies=[ALWAYS_JAM], scenario=FAST,
                                n_trials=2, seed=5)
        [row] = result.curve_for("logistic")
        assert row["policy"] == "always"
        assert set(row) == {"policy", "jam_probability", "disruption",
                            "jam_duty", "efficiency", "auc"}

    def test_table_lists_every_policy_and_detector(self):
        result = run_tournament(
            policies=[ALWAYS_JAM, randomized_policy(0.5)],
            scenario=FAST, n_trials=2, seed=5)
        table = result.table()
        assert "always" in table and "p0.5" in table
        assert "auc:logistic" in table and "auc:xu-rule" in table

    def test_serial_and_parallel_are_byte_identical(self):
        policies = [ALWAYS_JAM, randomized_policy(0.5)]
        serial = run_tournament(policies=policies, scenario=FAST,
                                n_trials=2, seed=9, workers=1)
        parallel = run_tournament(policies=policies, scenario=FAST,
                                  n_trials=2, seed=9, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) \
            == json.dumps(parallel.to_dict(), sort_keys=True)

    def test_resumed_tournament_is_byte_identical(self, tmp_path):
        journal = tmp_path / "defense.jsonl"
        config = ResilienceConfig(checkpoint_path=str(journal),
                                  resume=True)
        policies = [ALWAYS_JAM, randomized_policy(0.5)]
        first = run_tournament(policies=policies, scenario=FAST,
                               n_trials=2, seed=9, resilience=config)
        assert journal.exists()
        resumed = run_tournament(policies=policies, scenario=FAST,
                                 n_trials=2, seed=9, resilience=config)
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(resumed.to_dict(), sort_keys=True)

    def test_telemetry_counters(self):
        telemetry = Telemetry(enabled=True)
        run_tournament(policies=[ALWAYS_JAM, randomized_policy(0.5)],
                       scenario=FAST, n_trials=2, seed=5,
                       telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics.counter(RUNS_COUNTER).value == 1
        assert metrics.counter(TRIALS_COUNTER).value == 4
        # 2 policies x 2 trials x 4 windows per trial.
        assert metrics.counter(WINDOWS_COUNTER).value == 16
        assert metrics.counter(CELLS_COUNTER).value == 4

    def test_default_policy_and_detector_field(self):
        result = run_tournament(scenario=FAST, n_trials=2, seed=5)
        assert [o.policy for o in result.outcomes] == ["always"]
        assert len(result.cells) == 2
