"""The detector protocol and both model implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense.detectors import (
    Detector,
    OnlineLogisticDetector,
    RuleBasedDetector,
    default_detectors,
)
from repro.defense.features import FEATURE_NAMES
from repro.defense.roc import auc
from repro.errors import ConfigurationError

_N = len(FEATURE_NAMES)
_IDX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def _synthetic_windows(rng: np.random.Generator, n: int = 120
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Separable clean/jammed windows with overlapping noise."""
    labels = (np.arange(n) >= n // 2).astype(np.int64)
    X = rng.normal(size=(n, _N))
    # Jammed windows: lower PRR, higher inconsistency and busy time.
    X[:, _IDX["prr"]] = np.where(labels == 1,
                                 rng.uniform(0.0, 0.5, n),
                                 rng.uniform(0.7, 1.0, n))
    X[:, _IDX["inconsistency"]] = np.where(labels == 1,
                                           rng.uniform(0.4, 1.0, n),
                                           rng.uniform(0.0, 0.2, n))
    X[:, _IDX["busy_fraction"]] = np.where(labels == 1,
                                           rng.uniform(0.2, 0.6, n),
                                           rng.uniform(0.0, 0.1, n))
    return X, labels


class TestProtocol:
    def test_both_models_satisfy_detector(self):
        for detector in default_detectors():
            assert isinstance(detector, Detector)

    def test_default_field_names(self):
        assert [d.name for d in default_detectors()] \
            == ["logistic", "xu-rule"]


class TestOnlineLogisticDetector:
    def test_validates_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            OnlineLogisticDetector(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            OnlineLogisticDetector(epochs=0)
        with pytest.raises(ConfigurationError):
            OnlineLogisticDetector(l2=-1.0)

    def test_score_before_fit_raises(self):
        detector = OnlineLogisticDetector()
        with pytest.raises(ConfigurationError):
            detector.score(np.zeros((1, _N)))

    def test_fit_validates_shapes(self):
        detector = OnlineLogisticDetector()
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError):
            detector.fit(np.zeros((0, _N)), np.zeros(0), rng)
        with pytest.raises(ConfigurationError):
            detector.fit(np.zeros((4, _N)), np.zeros(3), rng)

    def test_learns_separable_windows(self):
        X, y = _synthetic_windows(np.random.default_rng(3))
        detector = OnlineLogisticDetector()
        detector.fit(X[::2], y[::2], np.random.default_rng(7))
        assert detector.fitted
        scores = detector.score(X[1::2])
        assert np.all((scores >= 0.0) & (scores <= 1.0))
        assert auc(scores, y[1::2]) > 0.95

    def test_fit_is_pure_in_the_rng(self):
        X, y = _synthetic_windows(np.random.default_rng(3))
        scores = []
        for _ in range(2):
            detector = OnlineLogisticDetector()
            detector.fit(X, y, np.random.default_rng(11))
            scores.append(detector.score(X))
        np.testing.assert_array_equal(scores[0], scores[1])

    def test_constant_feature_columns_are_tolerated(self):
        X, y = _synthetic_windows(np.random.default_rng(3), n=40)
        X[:, _IDX["frames_seen"]] = 5.0
        detector = OnlineLogisticDetector()
        detector.fit(X, y, np.random.default_rng(1))
        assert np.all(np.isfinite(detector.score(X)))


class TestRuleBasedDetector:
    def _window(self, prr: float, rssi: float, busy: float,
                frames: float = 4.0) -> np.ndarray:
        row = np.zeros(_N)
        row[_IDX["prr"]] = prr
        row[_IDX["mean_rssi_dbm"]] = rssi
        row[_IDX["busy_fraction"]] = busy
        row[_IDX["frames_seen"]] = frames
        return row

    def test_validates_thresholds(self):
        with pytest.raises(ConfigurationError):
            RuleBasedDetector(pdr_threshold=1.0)
        with pytest.raises(ConfigurationError):
            RuleBasedDetector(busy_threshold=0.0)

    def test_healthy_scores_zero(self):
        detector = RuleBasedDetector()
        X = np.stack([self._window(0.95, -60.0, 0.05)])
        assert detector.score(X)[0] == 0.0

    def test_poor_link_scores_zero(self):
        # Losses at low RSSI are channel-explained, not jamming.
        detector = RuleBasedDetector()
        X = np.stack([self._window(0.2, -90.0, 0.05)])
        assert detector.score(X)[0] == 0.0

    def test_consistency_violation_scores_loss_fraction(self):
        detector = RuleBasedDetector()
        X = np.stack([self._window(0.2, -60.0, 0.05)])
        assert detector.score(X)[0] == pytest.approx(0.8)

    def test_pinned_medium_dominates(self):
        detector = RuleBasedDetector()
        X = np.stack([
            self._window(0.95, -60.0, 0.97),        # busy but delivering
            self._window(1.0, -95.0, 0.99, frames=0.0),  # silenced
            self._window(1.0, -95.0, 0.1, frames=0.0),   # just quiet
        ])
        scores = detector.score(X)
        assert scores[0] == pytest.approx(0.97)
        assert scores[1] == pytest.approx(0.99)
        assert scores[2] == 0.0

    def test_fit_is_a_no_op(self):
        detector = RuleBasedDetector()
        X = np.stack([self._window(0.2, -60.0, 0.05)])
        before = detector.score(X)
        detector.fit(X, np.ones(1), np.random.default_rng(1))
        np.testing.assert_array_equal(detector.score(X), before)

    def test_matches_rule_classifier_verdict_ordering(self):
        """Jam-like windows outrank healthy and poor-link windows."""
        detector = RuleBasedDetector()
        X = np.stack([
            self._window(0.2, -60.0, 0.1),   # reactive-jam signature
            self._window(0.2, -90.0, 0.1),   # poor link
            self._window(0.98, -60.0, 0.05),  # healthy
        ])
        scores = detector.score(X)
        assert scores[0] > scores[1]
        assert scores[0] > scores[2]
