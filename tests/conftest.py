"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second independent generator for two-stream tests."""
    return np.random.default_rng(0xBEEF)
