"""Telemetry bundle wiring, plus the Fig. 5 closed-loop integration.

The integration test is the acceptance gate for the subsystem: a full
:class:`ReactiveJammer` run over a WiFi short-preamble waveform must
produce a trace whose *measured* detection and response latencies pass
:class:`LatencyBudget.verify` against the paper's analytic budget
(energy <= 1.28 us, cross-correlation = 2.56 us, init = 80 ns).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import units
from repro.channel.combining import Transmission, mix_at_port
from repro.core.coeffs import wifi_short_preamble_template
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import ReactiveJammer
from repro.core.presets import reactive_jammer
from repro.telemetry import Telemetry
from repro.telemetry.tracer import (
    CAT_DETECTOR,
    CAT_FSM,
    CAT_HOST,
    CAT_RUN,
    CAT_TX,
    NULL_TRACER,
)

#: Injected WiFi frame starts: 100 us + k * 500 us at 25 MSPS.
FRAME_STARTS = [2500, 15000, 27500]


def _wifi_capture() -> np.ndarray:
    from repro.phy.wifi.frame import WifiFrameConfig, build_ppdu
    from repro.phy.wifi.params import WIFI_SAMPLE_RATE

    rng = np.random.default_rng(99)
    noise = 1e-4
    power = units.db_to_linear(15.0) * noise
    psdu = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
    frames = [Transmission(build_ppdu(psdu, WifiFrameConfig()),
                           WIFI_SAMPLE_RATE, start / units.BASEBAND_RATE,
                           power)
              for start in FRAME_STARTS]
    return mix_at_port(frames, units.BASEBAND_RATE, 1.6e-3,
                       noise_power=noise, rng=rng)


def _configured_jammer(telemetry: Telemetry | None) -> ReactiveJammer:
    jammer = ReactiveJammer(telemetry=telemetry)
    jammer.configure(
        detection=DetectionConfig(template=wifi_short_preamble_template(),
                                  xcorr_threshold=20000),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(1e-5),
    )
    return jammer


class TestAttach:
    def test_attach_reaches_every_probe_point(self):
        telemetry = Telemetry()
        jammer = ReactiveJammer(telemetry=telemetry)
        assert jammer.device.core.tracer is telemetry.tracer
        assert jammer.device.core.fsm.tracer is telemetry.tracer
        assert jammer.device.core.watchdog is None \
            or jammer.device.core.watchdog.tracer is telemetry.tracer
        assert jammer.device.core.profiler is telemetry.profiler
        assert jammer.device.profiler is telemetry.profiler
        assert jammer.driver.tracer is telemetry.tracer

    def test_fsm_rebuild_keeps_the_tracer(self):
        telemetry = Telemetry()
        jammer = _configured_jammer(telemetry)
        # configure() rewrites the trigger register, rebuilding the FSM.
        assert jammer.device.core.fsm.tracer is telemetry.tracer

    def test_disabled_bundle_leaves_probes_null(self):
        jammer = ReactiveJammer(telemetry=Telemetry.disabled())
        assert jammer.device.core.tracer is NULL_TRACER
        assert jammer.device.core.profiler is None
        assert jammer.device.profiler is None

    def test_no_telemetry_means_null_defaults(self):
        jammer = ReactiveJammer()
        assert jammer.telemetry is None
        assert jammer.device.core.tracer is NULL_TRACER
        assert jammer.device.profiler is None


class TestFig5Integration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        telemetry = Telemetry()
        jammer = _configured_jammer(telemetry)
        report = jammer.run(_wifi_capture(), chunk_size=8192)
        return telemetry, report

    def test_every_frame_detected_and_jammed(self, traced_run):
        _telemetry, report = traced_run
        assert len(report.jams) == len(FRAME_STARTS)

    def test_measured_latencies_pass_the_paper_budget(self, traced_run):
        telemetry, _report = traced_run
        budget = telemetry.budget_report(signal_starts=FRAME_STARTS)
        assert budget.ok, budget.summary()
        names = {check.name for check in budget.checks}
        assert {"detect.xcorr", "detect.energy_high",
                "T_resp(trigger->RF)"} <= names

    def test_trace_covers_every_layer(self, traced_run):
        telemetry, _report = traced_run
        categories = {event.category for event in telemetry.events()}
        assert {CAT_DETECTOR, CAT_FSM, CAT_TX, CAT_RUN, CAT_HOST} \
            <= categories

    def test_chrome_trace_export_is_valid(self, traced_run, tmp_path):
        telemetry, _report = traced_run
        path = telemetry.write_chrome_trace(tmp_path / "fig5.trace.json")
        document = json.loads(path.read_text())
        names = {entry["name"] for entry in document["traceEvents"]}
        assert {"detect.xcorr", "jam", "run.chunk"} <= names

    def test_jsonl_export_round_trips(self, traced_run, tmp_path):
        telemetry, _report = traced_run
        path = telemetry.write_jsonl(tmp_path / "fig5.jsonl")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == len(telemetry.events())

    def test_metrics_fold_into_the_health_report(self, traced_run):
        telemetry, report = traced_run
        counters = report.health.metrics["counters"]
        assert counters["run.jams"] == len(report.jams)
        assert counters["run.detections"] == len(report.detections)
        assert report.health.metrics["gauges"]["run.jam_duty_cycle"] > 0
        histograms = report.health.metrics["histograms"]
        assert histograms["latency.response_ns"]["count"] \
            == len(report.jams)
        assert histograms["host.xcorr_ns"]["count"] > 0

    def test_summary_is_printable(self, traced_run):
        telemetry, _report = traced_run
        text = telemetry.summary()
        assert "detect.xcorr" in text
        assert "run.jams" in text


class TestDisabledRun:
    def test_disabled_run_matches_traced_run(self):
        rx = _wifi_capture()
        traced = _configured_jammer(Telemetry()).run(rx, chunk_size=8192)
        plain = _configured_jammer(None).run(rx, chunk_size=8192)
        assert [j.start for j in traced.jams] == [j.start for j in plain.jams]
        np.testing.assert_array_equal(traced.tx, plain.tx)
        assert plain.health.metrics == {}
