"""Tests for counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.timebase import Timebase
from repro.telemetry.tracer import RingTracer


class TestCounter:
    def test_monotone(self):
        counter = MetricsRegistry().counter("run.chunks")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)


class TestHistogram:
    def test_bucketing_and_accumulators(self):
        hist = Histogram("lat", bounds=(10.0, 100.0))
        for value in (5, 10, 50, 500):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # <=10, <=100, overflow
        assert hist.count == 4
        assert hist.min == 5.0
        assert hist.max == 500.0
        assert hist.mean == pytest.approx(141.25)

    def test_quantile_is_bucket_resolution(self):
        hist = Histogram("lat", bounds=(10.0, 100.0))
        for value in (1, 2, 3, 50):
            hist.observe(value)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.0) == 10.0

    def test_overflow_quantile_reports_max(self):
        hist = Histogram("lat", bounds=(10.0,))
        hist.observe(99.0)
        assert hist.quantile(0.9) == 99.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", bounds=(100.0, 10.0))
        with pytest.raises(ConfigurationError):
            Histogram("bad", bounds=())

    def test_snapshot_shape(self):
        hist = Histogram("lat", bounds=DEFAULT_LATENCY_BUCKETS_NS)
        hist.observe(40.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert sum(snap["counts"]) == 1
        assert len(snap["counts"]) == len(snap["bounds"]) + 1


class TestRegistry:
    def test_get_or_create(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_histogram_bounds_conflict(self):
        metrics = MetricsRegistry()
        metrics.histogram("lat", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            metrics.histogram("lat", bounds=(1.0, 3.0))

    def test_snapshot_is_plain_data(self):
        import json

        metrics = MetricsRegistry()
        metrics.counter("runs").inc()
        metrics.gauge("duty").set(0.25)
        metrics.histogram("lat").observe(80.0)
        snap = metrics.snapshot()
        assert snap["counters"]["runs"] == 1
        assert snap["gauges"]["duty"] == 0.25
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_summary_mentions_every_metric(self):
        metrics = MetricsRegistry()
        metrics.counter("runs").inc()
        metrics.gauge("duty").set(0.5)
        metrics.histogram("lat").observe(80.0)
        text = metrics.summary()
        for name in ("runs", "duty", "lat"):
            assert name in text


class TestHostProfiler:
    def test_profile_scope_records_duration(self):
        ticks = iter([1_000, 1_640])
        timebase = Timebase(wall_clock_ns=lambda: next(ticks))
        metrics = MetricsRegistry()
        profiler = HostProfiler(metrics, timebase=timebase)
        with profiler.profile("xcorr"):
            pass
        hist = metrics.histogram("host.xcorr_ns")
        assert hist.count == 1
        assert hist.total == pytest.approx(640.0)

    def test_profile_emits_host_span_when_traced(self):
        ticks = iter([10, 25])
        timebase = Timebase(wall_clock_ns=lambda: next(ticks))
        tracer = RingTracer(timebase)
        profiler = HostProfiler(MetricsRegistry(), tracer, timebase)
        with profiler.profile("energy"):
            pass
        (event,) = tracer.events()
        assert event.name == "energy"
        assert event.host
        assert event.duration_ns == pytest.approx(15.0)

    def test_profile_records_on_exception(self):
        ticks = iter([0, 100])
        timebase = Timebase(wall_clock_ns=lambda: next(ticks))
        metrics = MetricsRegistry()
        profiler = HostProfiler(metrics, timebase=timebase)
        with pytest.raises(RuntimeError):
            with profiler.profile("boom"):
                raise RuntimeError("slow and broken")
        assert metrics.histogram("host.boom_ns").count == 1
