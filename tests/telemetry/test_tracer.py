"""Tests for the ring tracer and the null tracer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.tracer import (
    CAT_DETECTOR,
    CAT_HOST,
    CAT_TX,
    NULL_TRACER,
    InstantEvent,
    RingTracer,
    SpanEvent,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.instant("x", CAT_DETECTOR, 0)
        NULL_TRACER.span("x", CAT_TX, 0, 10)
        NULL_TRACER.host_span("x", CAT_HOST, 0, 10)
        assert NULL_TRACER.events() == []


class TestRingTracer:
    def test_instant_stamped_in_both_domains(self):
        tracer = RingTracer()
        tracer.instant("detect.xcorr", CAT_DETECTOR, 2500, threshold=30000)
        (event,) = tracer.events()
        assert isinstance(event, InstantEvent)
        assert event.sample == 2500
        assert event.ns == pytest.approx(100_000.0)
        assert event.args == {"threshold": 30000}
        assert not event.host

    def test_span_duration(self):
        tracer = RingTracer()
        tracer.span("jam", CAT_TX, 1000, 3500)
        (event,) = tracer.events()
        assert isinstance(event, SpanEvent)
        assert event.duration_ns == pytest.approx(2500 * 40.0)

    def test_host_span_has_no_sample_meaning(self):
        tracer = RingTracer()
        tracer.host_span("xcorr", CAT_HOST, 100, 700)
        (event,) = tracer.events()
        assert event.host
        assert event.start_sample == -1
        assert event.duration_ns == pytest.approx(600.0)

    def test_ring_bound_drops_oldest(self):
        tracer = RingTracer(capacity=4)
        for sample in range(10):
            tracer.instant("e", CAT_DETECTOR, sample)
        events = tracer.events()
        assert len(events) == 4
        assert [e.sample for e in events] == [6, 7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.dropped == 6

    def test_iter_category(self):
        tracer = RingTracer()
        tracer.instant("a", CAT_DETECTOR, 1)
        tracer.span("b", CAT_TX, 2, 3)
        tracer.instant("c", CAT_DETECTOR, 4)
        assert [e.name for e in tracer.iter_category(CAT_DETECTOR)] \
            == ["a", "c"]

    def test_clear(self):
        tracer = RingTracer()
        tracer.instant("a", CAT_DETECTOR, 1)
        tracer.clear()
        assert tracer.events() == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            RingTracer(capacity=0)
