"""Tests for the dual-domain timebase."""

from __future__ import annotations

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.telemetry.timebase import NS_PER_S, Stamp, Timebase


class TestSampleDomain:
    def test_one_sample_is_40ns(self):
        tb = Timebase()
        assert tb.sample_to_ns(1) == pytest.approx(40.0)

    def test_round_trip(self):
        tb = Timebase()
        for sample in (0, 1, 32, 64, 2500, 10**9):
            assert tb.ns_to_sample(tb.sample_to_ns(sample)) == sample

    def test_stamp_carries_both_domains(self):
        stamp = Timebase().stamp(2500)
        assert stamp == Stamp(sample=2500, ns=100_000.0)
        assert stamp.seconds == pytest.approx(100e-6)

    def test_matches_units_helpers(self):
        tb = Timebase()
        assert tb.sample_to_ns(64) == pytest.approx(
            units.samples_to_seconds(64) * NS_PER_S)


class TestFpgaDomain:
    def test_clocks_per_sample(self):
        tb = Timebase()
        assert tb.samples_to_clocks(1) == units.CLOCKS_PER_SAMPLE
        assert tb.samples_to_clocks(64) == 64 * units.CLOCKS_PER_SAMPLE

    def test_one_clock_is_10ns(self):
        assert Timebase().clocks_to_ns(1) == pytest.approx(10.0)


class TestHostDomain:
    def test_injectable_wall_clock(self):
        ticks = iter([100, 250])
        tb = Timebase(wall_clock_ns=lambda: next(ticks))
        assert tb.host_now_ns() == 100
        assert tb.host_now_ns() == 250

    def test_default_wall_clock_is_monotonic(self):
        tb = Timebase()
        first = tb.host_now_ns()
        second = tb.host_now_ns()
        assert second >= first


class TestValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            Timebase(sample_rate=0)
        with pytest.raises(ConfigurationError):
            Timebase(fpga_clock_hz=-1)
