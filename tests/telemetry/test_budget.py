"""Tests for the Fig. 5 latency-budget checker."""

from __future__ import annotations

import pytest

from repro.core.timeline import timeline_for
from repro.telemetry.budget import BudgetReport, LatencyBudget
from repro.telemetry.tracer import CAT_DETECTOR, CAT_TX, RingTracer


def _init_samples() -> int:
    # T_init in samples (80 ns at 40 ns/sample = 2 samples).
    return round(timeline_for().t_init * 25e6)


class TestResponseChecks:
    def test_on_budget_response_passes(self):
        tracer = RingTracer()
        trigger = 2563
        tracer.span("jam", CAT_TX, trigger + _init_samples(),
                    trigger + _init_samples() + 2500,
                    trigger_sample=trigger)
        report = LatencyBudget().verify(tracer.events())
        assert report.ok
        (check,) = report.checks
        assert check.name == "T_resp(trigger->RF)"
        assert check.measured_ns == pytest.approx(80.0)

    def test_late_response_fails(self):
        tracer = RingTracer()
        trigger = 1000
        tracer.span("jam", CAT_TX, trigger + 50, trigger + 2550,
                    trigger_sample=trigger)
        report = LatencyBudget().verify(tracer.events())
        assert not report.ok
        assert report.violations

    def test_spans_without_trigger_are_skipped(self):
        tracer = RingTracer()
        tracer.span("jam", CAT_TX, 100, 200)
        report = LatencyBudget().verify(tracer.events())
        assert report.checks == ()


class TestDetectionChecks:
    def test_detection_within_budget(self):
        tracer = RingTracer()
        # 64-tap correlator fires 64 samples into the signal: exactly
        # the 2.56 us budget.
        tracer.instant("detect.xcorr", CAT_DETECTOR, 2500 + 63)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500])
        assert report.ok
        (check,) = report.checks
        assert check.measured_ns == pytest.approx(2560.0)

    def test_late_detection_fails(self):
        tracer = RingTracer()
        tracer.instant("detect.xcorr", CAT_DETECTOR, 2500 + 200)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500])
        assert not report.ok

    def test_missed_signal_is_a_violation(self):
        tracer = RingTracer()
        tracer.instant("detect.xcorr", CAT_DETECTOR, 2563)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500, 50_000])
        assert not report.ok
        missed = [c for c in report.violations
                  if c.measured_ns == float("inf")]
        assert len(missed) == 1
        assert "50000" in missed[0].detail

    def test_detections_attributed_to_nearest_signal(self):
        tracer = RingTracer()
        tracer.instant("detect.xcorr", CAT_DETECTOR, 2563)
        tracer.instant("detect.xcorr", CAT_DETECTOR, 50_063)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500, 50_000])
        assert report.ok
        assert len(report.checks) == 2

    def test_absent_detector_not_checked(self):
        # An energy-only run should not fail the xcorr budget.
        tracer = RingTracer()
        tracer.instant("detect.energy_high", CAT_DETECTOR, 2510)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500])
        assert report.ok
        assert all(c.name == "detect.energy_high" for c in report.checks)


class TestReport:
    def test_empty_report_is_not_ok(self):
        report = BudgetReport(checks=())
        assert not report.ok
        assert "no measurable events" in report.summary()

    def test_summary_flags_violations(self):
        tracer = RingTracer()
        tracer.instant("detect.xcorr", CAT_DETECTOR, 9000)
        report = LatencyBudget().verify(tracer.events(),
                                        signal_starts=[2500])
        assert "FAIL" in report.summary()
