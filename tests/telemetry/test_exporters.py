"""Tests for the JSONL, Chrome trace-event, and text exporters."""

from __future__ import annotations

import json

from repro.telemetry.exporters import (
    chrome_trace_events,
    events_to_jsonl,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import (
    CAT_DETECTOR,
    CAT_HOST,
    CAT_TX,
    RingTracer,
)


def _sample_tracer() -> RingTracer:
    tracer = RingTracer()
    tracer.instant("detect.xcorr", CAT_DETECTOR, 2500)
    tracer.span("jam", CAT_TX, 2565, 5065, trigger_sample=2563,
                waveform="WGN")
    tracer.host_span("xcorr", CAT_HOST, 1_000, 51_000)
    return tracer


class TestJsonl:
    def test_one_object_per_line(self):
        text = events_to_jsonl(_sample_tracer().events())
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["type"] for r in records] == ["instant", "span", "span"]
        assert records[0]["sample"] == 2500
        assert records[1]["args"]["trigger_sample"] == 2563
        assert records[2]["host"] is True

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl(_sample_tracer().events(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = write_jsonl([], tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestChromeTrace:
    def test_phases_and_timestamps(self):
        trace = chrome_trace_events(_sample_tracer().events())
        metadata = [e for e in trace if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} \
            == {CAT_DETECTOR, CAT_TX, CAT_HOST}
        instant = next(e for e in trace if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["ts"] == 100.0  # sample 2500 -> 100 us
        span = next(e for e in trace if e["ph"] == "X" and e["name"] == "jam")
        assert span["dur"] == 100.0  # 2500 samples -> 100 us
        assert span["args"]["start_sample"] == 2565

    def test_categories_map_to_stable_tids(self):
        trace = chrome_trace_events(_sample_tracer().events())
        tids = {e["cat"]: e["tid"] for e in trace if e["ph"] != "M"}
        assert len(set(tids.values())) == len(tids)

    def test_written_file_is_loadable(self, tmp_path):
        path = write_chrome_trace(_sample_tracer().events(),
                                  tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ns"
        assert len(document["traceEvents"]) == 6  # 3 metadata + 3 events


class TestTextSummary:
    def test_counts_by_category_and_name(self):
        text = text_summary(_sample_tracer().events())
        assert "3 events retained" in text
        assert "detector/detect.xcorr" in text
        assert "tx/jam" in text

    def test_mentions_drops_and_metrics(self):
        metrics = MetricsRegistry()
        metrics.counter("run.chunks").inc(7)
        text = text_summary(_sample_tracer().events(), metrics, dropped=5)
        assert "5 dropped" in text
        assert "run.chunks" in text
