"""Tests for the ReactiveJammer facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.jammer import JammingReport, ReactiveJammer
from repro.core.presets import continuous_jammer, reactive_jammer
from repro.errors import ConfigurationError
from repro.hw.dsp_core import JamEvent
from repro.hw.trigger import TriggerSource


@pytest.fixture
def template(rng):
    return np.exp(1j * rng.uniform(0, 2 * np.pi, 64))


@pytest.fixture
def configured(template):
    jammer = ReactiveJammer()
    jammer.configure(
        detection=DetectionConfig(template=template, xcorr_threshold=30_000),
        events=JammingEventBuilder().on_correlation(),
        personality=reactive_jammer(uptime_seconds=1e-5),
    )
    return jammer


class TestConfiguration:
    def test_run_before_configure_rejected(self):
        with pytest.raises(ConfigurationError):
            ReactiveJammer().run(np.zeros(100, dtype=complex))

    def test_correlation_events_need_template(self):
        jammer = ReactiveJammer()
        with pytest.raises(ConfigurationError):
            jammer.configure(
                detection=DetectionConfig(),  # no template
                events=JammingEventBuilder().on_correlation(),
                personality=reactive_jammer(1e-5),
            )

    def test_energy_only_needs_no_template(self, rng):
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(energy_high_db=10.0),
            events=JammingEventBuilder().on_energy_rise(),
            personality=reactive_jammer(1e-5),
        )
        quiet = awgn(3000, 1e-6, rng)
        quiet[1000:2000] += awgn(1000, 1e-3, rng)
        report = jammer.run(quiet)
        assert report.detections_by_source(TriggerSource.ENERGY_HIGH)

    def test_frontend_accessible(self, configured):
        configured.frontend.tune(2.608e9)
        assert configured.frontend.center_freq_hz == pytest.approx(2.608e9)


class TestRunning:
    def test_detect_and_jam(self, configured, template, rng):
        rx = awgn(2000, 1e-6, rng)
        rx[700:764] += template
        report = configured.run(rx)
        assert len(report.jams) == 1
        assert report.jams[0].trigger_time == 763

    def test_report_conversions(self, configured, template, rng):
        rx = awgn(2000, 1e-6, rng)
        rx[700:764] += template
        report = configured.run(rx)
        spans = report.jam_spans_seconds
        assert spans[0][0] == pytest.approx(765 / 25e6)
        assert report.total_jam_airtime == pytest.approx(1e-5)
        xcorr = report.detections_by_source(TriggerSource.XCORR)
        assert xcorr[0].time / 25e6 == pytest.approx(763 / 25e6, abs=1e-9)

    def test_personality_swap_at_runtime(self, configured, template, rng):
        rx = awgn(2000, 1e-6, rng)
        rx[700:764] += template
        configured.apply_personality(continuous_jammer())
        report = configured.run(rx)
        assert np.all(np.abs(report.tx) > 0)

    def test_disable_stops_tx(self, configured, template, rng):
        configured.disable()
        rx = awgn(2000, 1e-6, rng)
        rx[700:764] += template
        report = configured.run(rx)
        assert not report.jams
        assert not report.tx.any()
        # Detection keeps running while disabled.
        assert report.detections_by_source(TriggerSource.XCORR)

    def test_reset_restores_clock(self, configured, rng):
        configured.run(awgn(500, 1e-6, rng))
        configured.reset()
        assert configured.device.core.clock == 0

    def test_surgical_delay_places_burst(self, template, rng):
        jammer = ReactiveJammer()
        jammer.configure(
            detection=DetectionConfig(template=template, xcorr_threshold=30_000),
            events=JammingEventBuilder().on_correlation(),
            personality=reactive_jammer(1e-5, delay_seconds=4e-6),
        )
        rx = awgn(2000, 1e-6, rng)
        rx[700:764] += template
        report = jammer.run(rx)
        # trigger 763 + init 2 + delay 100 samples.
        assert report.jams[0].start == 763 + 2 + 100

    def test_empty_report_without_signal(self, configured, rng):
        report = configured.run(awgn(5000, 1e-6, rng))
        assert not report.jams
        assert isinstance(report, JammingReport)


class TestReportSerialization:
    def _report(self) -> JammingReport:
        from repro.core.jammer import HealthReport
        from repro.hw.dsp_core import DetectionEvent
        from repro.hw.tx_controller import JamWaveform
        from repro.hw.watchdog import WatchdogTrip

        return JammingReport(
            tx=np.array([1 + 2j, -0.5j]),
            detections=[DetectionEvent(time=2563,
                                       source=TriggerSource.XCORR)],
            jams=[JamEvent(trigger_time=2563, start=2565, end=5065,
                           waveform=JamWaveform.WGN)],
            health=HealthReport(
                chunks_processed=7,
                stream_errors=["overflow at chunk 3"],
                driver={"retries": 2},
                scrub_repairs=[19],
                watchdog_trips=[WatchdogTrip(time=100, reason="duty-cycle",
                                             detail="vetoed")],
                metrics={"counters": {"run.jams": 1}},
            ),
        )

    def test_round_trip_without_tx(self):
        report = self._report()
        rebuilt = JammingReport.from_json(report.to_json())
        assert rebuilt.detections == report.detections
        assert rebuilt.jams == report.jams
        assert rebuilt.sample_rate == report.sample_rate
        assert rebuilt.health == report.health
        assert rebuilt.tx.size == 0  # tx omitted by default

    def test_round_trip_with_tx(self):
        report = self._report()
        rebuilt = JammingReport.from_json(report.to_json(include_tx=True))
        np.testing.assert_allclose(rebuilt.tx, report.tx)

    def test_json_is_valid_and_self_describing(self):
        import json

        data = json.loads(self._report().to_json(indent=2))
        assert data["detections"][0]["source"] == "XCORR"
        assert data["jams"][0]["waveform"] == "WGN"
        assert data["health"]["degraded"] is True

    def test_health_round_trip_standalone(self):
        from repro.core.jammer import HealthReport

        health = self._report().health
        rebuilt = HealthReport.from_json(health.to_json())
        assert rebuilt == health
        assert rebuilt.degraded

    def test_empty_report_round_trips(self):
        report = JammingReport(tx=np.zeros(0, dtype=np.complex128))
        rebuilt = JammingReport.from_json(report.to_json())
        assert rebuilt.detections == []
        assert rebuilt.jams == []
        assert not rebuilt.health.degraded
