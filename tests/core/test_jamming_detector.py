"""Tests for the jamming-detection countermeasure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.jamming_detector import (
    JammingDetector,
    LinkStatistics,
    LinkVerdict,
)
from repro.core.presets import continuous_jammer, reactive_jammer
from repro.errors import ConfigurationError
from repro.experiments.wifi_jamming import WifiJammingTestbed
from repro.mac.iperf import UdpBandwidthTest
from repro.mac.medium import Medium
from repro.mac.nodes import AccessPoint, JammerNode, Station
from repro.mac.simkernel import SimKernel


def run_diagnosed(personality=None, sir_db=None, duration=0.25, seed=2,
                  degrade_snr=False):
    """Run an iperf interval with the detector attached at the AP."""
    bed = WifiJammingTestbed(duration_s=duration)
    rng = np.random.default_rng(seed)
    kernel = SimKernel()
    medium = Medium(bed.path_loss_db)
    ap = AccessPoint("ap", kernel, medium, rng, tx_power_dbm=bed.ap_tx_dbm)
    client_power = 14.0 if not degrade_snr else -38.0
    client = Station("client", kernel, medium, ap, rng,
                     tx_power_dbm=client_power)
    detector = JammingDetector(kernel, medium, ap)
    detector.start(duration)
    if personality is not None:
        jam_tx = bed.jammer_tx_for_sir(sir_db)
        JammerNode("jammer", kernel, medium, personality,
                   tx_power_dbm=jam_tx).start(duration)
    UdpBandwidthTest(kernel, client, ap).run(duration)
    return detector


class TestStatistics:
    def test_empty_statistics(self):
        stats = LinkStatistics()
        assert stats.delivery_ratio == 1.0
        assert stats.busy_fraction == 0.0
        assert stats.mean_rssi_dbm == float("-inf")

    def test_validation(self):
        kernel = SimKernel()
        medium = Medium(lambda a, b: None)
        ap = AccessPoint("ap", kernel, medium, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            JammingDetector(kernel, medium, ap, pdr_threshold=0.0)
        with pytest.raises(ConfigurationError):
            JammingDetector(kernel, medium, ap, busy_threshold=1.5)
        detector = JammingDetector(kernel, medium, ap)
        with pytest.raises(ConfigurationError):
            detector.start(0.0)


class TestClassification:
    def test_healthy_link(self):
        detector = run_diagnosed()
        assert detector.classify() is LinkVerdict.HEALTHY
        assert detector.stats.delivery_ratio > 0.9

    def test_reactive_jammer_fingerprinted(self):
        detector = run_diagnosed(reactive_jammer(1e-4), sir_db=8.0)
        # Frames are observed arriving strong but failing, while the
        # medium is mostly idle: the reactive signature.
        assert detector.classify() is LinkVerdict.REACTIVE_JAMMER
        assert detector.stats.mean_rssi_dbm > -50.0
        assert detector.stats.busy_fraction < 0.9

    def test_constant_jammer_fingerprinted(self):
        detector = run_diagnosed(continuous_jammer(), sir_db=15.0)
        # Client silenced by CCA, medium pinned busy at the AP.
        assert detector.classify() is LinkVerdict.CONSTANT_JAMMER

    def test_poor_link_not_misdiagnosed(self):
        # A genuinely weak client (near sensitivity) loses frames at
        # LOW RSSI: the consistency check must say poor link.
        detector = run_diagnosed(degrade_snr=True)
        verdict = detector.classify()
        assert verdict in (LinkVerdict.POOR_LINK, LinkVerdict.NO_TRAFFIC)

    def test_no_traffic(self):
        bed = WifiJammingTestbed()
        rng = np.random.default_rng(0)
        kernel = SimKernel()
        medium = Medium(bed.path_loss_db)
        ap = AccessPoint("ap", kernel, medium, rng)
        detector = JammingDetector(kernel, medium, ap)
        detector.start(0.05)
        kernel.run_until(0.05)
        assert detector.classify() is LinkVerdict.NO_TRAFFIC
