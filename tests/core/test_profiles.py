"""Tests for jammer configuration profiles (save/restore)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.coeffs import wifi_short_preamble_template
from repro.core.profiles import (
    apply_profile,
    load_profile,
    save_profile,
    snapshot_profile,
)
from repro.errors import ConfigurationError
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210


@pytest.fixture
def configured_device() -> UsrpN210:
    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_correlator_template(wifi_short_preamble_template())
    driver.set_xcorr_threshold(23_456)
    driver.set_energy_thresholds(12.0, 8.0)
    driver.set_trigger_stages([TriggerSource.XCORR,
                               TriggerSource.ENERGY_HIGH],
                              mode=TriggerMode.ANY)
    driver.set_jam_waveform(JamWaveform.REPLAY, wgn_seed=777)
    driver.set_jam_uptime(2500)
    driver.set_jam_delay(100)
    driver.set_replay_length(256)
    driver.set_control(True, False, antenna_bits=0x03)
    device.frontend.tune(2.608e9)
    return device


class TestSnapshotRestore:
    def test_snapshot_contains_everything(self, configured_device):
        profile = snapshot_profile(configured_device, name="test")
        assert profile["name"] == "test"
        assert profile["detection"]["xcorr_threshold"] == 23_456
        assert profile["trigger"]["mode"] == "ANY"
        assert profile["response"]["waveform"] == "REPLAY"
        assert profile["frontend"]["center_freq_hz"] == pytest.approx(2.608e9)

    def test_roundtrip_onto_fresh_device(self, configured_device):
        profile = snapshot_profile(configured_device)
        fresh = UsrpN210()
        apply_profile(fresh, profile)
        assert snapshot_profile(fresh) == snapshot_profile(configured_device)

    def test_restored_device_behaves_identically(self, configured_device,
                                                 rng):
        from repro.channel.awgn import awgn
        from repro.dsp.resample import resample
        from repro.phy.wifi.preamble import short_preamble

        profile = snapshot_profile(configured_device)
        fresh = UsrpN210()
        apply_profile(fresh, profile)
        stf = resample(short_preamble(), 20e6, 25e6)
        rx = awgn(3000, 1e-8, rng)
        rx[500:500 + stf.size] += 0.3 * stf
        out_a = configured_device.run(rx)
        out_b = fresh.run(rx)
        assert np.allclose(out_a.tx, out_b.tx)
        assert [(j.start, j.end) for j in out_a.jams] == \
            [(j.start, j.end) for j in out_b.jams]

    def test_profile_is_json_serializable(self, configured_device):
        profile = snapshot_profile(configured_device)
        json.dumps(profile)  # must not raise


class TestFiles:
    def test_save_and_load(self, configured_device, tmp_path):
        path = tmp_path / "jammer.json"
        save_profile(configured_device, path)
        fresh = UsrpN210()
        writes = load_profile(fresh, path)
        assert writes > 15  # coefficients + all settings
        assert snapshot_profile(fresh)["detection"]["xcorr_threshold"] == 23_456

    def test_missing_file(self):
        with pytest.raises(ConfigurationError):
            load_profile(UsrpN210(), "/nonexistent/profile.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_profile(UsrpN210(), path)

    def test_malformed_profile(self, tmp_path):
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps({"version": 1, "name": "x"}))
        with pytest.raises(ConfigurationError):
            load_profile(UsrpN210(), path)

    def test_wrong_version(self, configured_device):
        profile = snapshot_profile(configured_device)
        profile["version"] = 99
        with pytest.raises(ConfigurationError):
            apply_profile(UsrpN210(), profile)


class TestConsoleIntegration:
    def test_console_save_load(self, tmp_path):
        from repro.tools.console import JammerConsole

        console = JammerConsole()
        console.execute("template wimax")
        console.execute("threshold 11950")
        console.execute("trigger xcorr")
        path = tmp_path / "wimax.json"
        assert "saved" in console.execute(f"save {path}")

        other = JammerConsole()
        assert "loaded" in other.execute(f"load {path}")
        assert other.device.core.correlator.threshold == 11950

    def test_console_load_error_reported(self):
        from repro.tools.console import JammerConsole

        console = JammerConsole()
        assert "error" in console.execute("load /no/such/file.json")
