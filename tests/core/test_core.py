"""Tests for the framework facade: templates, configs, presets, timeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core.coeffs import (
    infer_template_from_capture,
    wifi_long_preamble_template,
    wifi_short_preamble_template,
    wimax_preamble_template,
)
from repro.core.detection import DetectionConfig
from repro.core.events import JammingEventBuilder
from repro.core.presets import (
    REACTIVE_UPTIME_LONG_S,
    REACTIVE_UPTIME_SHORT_S,
    continuous_jammer,
    paper_personalities,
    reactive_jammer,
)
from repro.core.timeline import timeline_for
from repro.errors import ConfigurationError
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform, TransmitController
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210


class TestTemplates:
    def test_all_templates_are_64_samples(self):
        assert wifi_long_preamble_template().size == 64
        assert wifi_short_preamble_template().size == 64
        assert wimax_preamble_template().size == 64

    def test_long_template_is_truncated_resampled_code(self):
        from repro.dsp.resample import resample
        from repro.phy.wifi.preamble import long_training_symbol

        full = resample(long_training_symbol(), 20e6, 25e6)
        assert np.allclose(wifi_long_preamble_template(), full[:64])

    def test_native_rate_ablation_variant(self):
        from repro.phy.wifi.preamble import long_training_symbol

        native = wifi_long_preamble_template(resampled=False)
        assert np.allclose(native, long_training_symbol())

    def test_short_native_tiles_code(self):
        native = wifi_short_preamble_template(resampled=False)
        assert np.allclose(native[:16], native[16:32])

    def test_wimax_template_skips_cyclic_prefix(self):
        from repro.dsp.resample import resample
        from repro.phy.wimax.preamble import preamble_symbol

        at25 = resample(preamble_symbol(), 11.4e6, 25e6)
        cp25 = int(round(128 * 25 / 11.4))
        assert np.allclose(wimax_preamble_template(), at25[cp25:cp25 + 64])

    def test_infer_template_finds_repeating_preamble(self, rng):
        code = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
        capture = 0.01 * (rng.standard_normal(600) + 1j * rng.standard_normal(600))
        capture[100:164] += code
        capture[164:228] += code  # repeats, like a real preamble
        inferred = infer_template_from_capture(capture)
        rho = np.abs(np.vdot(inferred, code)) / (
            np.linalg.norm(inferred) * np.linalg.norm(code))
        assert rho > 0.9

    def test_infer_template_needs_enough_samples(self):
        with pytest.raises(ConfigurationError):
            infer_template_from_capture(np.zeros(100, dtype=complex))


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.template is None
        assert config.energy_high_db == 10.0

    def test_template_length_checked(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(template=np.ones(32, dtype=complex))

    def test_threshold_range_checked(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(xcorr_threshold=-1)

    def test_energy_range_checked(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(energy_high_db=2.0)
        with pytest.raises(ConfigurationError):
            DetectionConfig(energy_low_db=31.0)

    def test_threshold_fraction(self):
        full = DetectionConfig.xcorr_threshold_fraction(1.0)
        half = DetectionConfig.xcorr_threshold_fraction(0.5)
        assert half == full // 2
        with pytest.raises(ConfigurationError):
            DetectionConfig.xcorr_threshold_fraction(0.0)


class TestEventBuilder:
    def test_fluent_single_stage(self):
        builder = JammingEventBuilder().on_correlation()
        builder.validate()
        assert builder.stages == [TriggerSource.XCORR]

    def test_multi_stage_with_window(self):
        builder = (JammingEventBuilder()
                   .on_energy_rise().on_correlation().within(10e-6))
        builder.validate()
        assert builder.window_samples == 250

    def test_multi_stage_without_window_invalid(self):
        builder = JammingEventBuilder().on_energy_rise().on_correlation()
        with pytest.raises(ConfigurationError):
            builder.validate()

    def test_any_mode_needs_no_window(self):
        builder = (JammingEventBuilder()
                   .on_correlation().on_energy_rise().any_of())
        builder.validate()
        assert builder.mode is TriggerMode.ANY

    def test_stage_limit(self):
        builder = (JammingEventBuilder()
                   .on_correlation().on_energy_rise().on_energy_fall())
        with pytest.raises(ConfigurationError):
            builder.on_correlation()

    def test_empty_invalid(self):
        with pytest.raises(ConfigurationError):
            JammingEventBuilder().validate()

    def test_program_writes_hardware(self):
        device = UsrpN210()
        driver = UhdDriver(device)
        (JammingEventBuilder()
         .on_energy_rise().on_correlation().within_samples(500)
         .program(driver))
        assert [s.source for s in device.core.fsm.stages] == [
            TriggerSource.ENERGY_HIGH, TriggerSource.XCORR]
        assert device.core.fsm.window_samples == 500


class TestPersonalities:
    def test_paper_presets(self):
        trio = paper_personalities()
        assert [p.name for p in trio] == [
            "continuous", "reactive-0.1ms", "reactive-0.01ms"]

    def test_uptimes_in_samples(self):
        assert reactive_jammer(REACTIVE_UPTIME_LONG_S).uptime_samples == 2500
        assert reactive_jammer(REACTIVE_UPTIME_SHORT_S).uptime_samples == 250

    def test_uptime_seconds_property(self):
        p = reactive_jammer(1e-4)
        assert p.uptime_seconds == pytest.approx(1e-4)

    def test_continuous_flag(self):
        assert continuous_jammer().continuous
        assert not reactive_jammer(1e-4).continuous

    def test_sub_sample_uptime_rejected(self):
        with pytest.raises(ConfigurationError):
            reactive_jammer(1e-9)

    def test_surgical_delay(self):
        p = reactive_jammer(1e-5, delay_seconds=20e-6)
        assert p.delay_samples == 500

    def test_waveform_selection(self):
        p = reactive_jammer(1e-4, waveform=JamWaveform.REPLAY)
        assert p.waveform is JamWaveform.REPLAY


class TestTimeline:
    def test_paper_numbers(self):
        tl = timeline_for()
        assert tl.t_en_det == pytest.approx(1.28e-6)
        assert tl.t_xcorr_det == pytest.approx(2.56e-6)
        assert tl.t_init == pytest.approx(80e-9)
        assert tl.t_resp_energy == pytest.approx(1.36e-6)
        assert tl.t_resp_xcorr == pytest.approx(2.64e-6)

    def test_respects_configuration(self):
        tx = TransmitController(uptime_samples=250, delay_samples=100)
        tl = timeline_for(tx=tx)
        assert tl.t_jam == pytest.approx(1e-5)
        assert tl.t_delay == pytest.approx(4e-6)
        assert tl.t_resp_xcorr == pytest.approx(2.64e-6 + 4e-6)

    def test_energy_window_scales(self):
        tl = timeline_for(energy=EnergyDifferentiator(window=64))
        assert tl.t_en_det == pytest.approx(2.56e-6)

    def test_as_dict_keys(self):
        d = timeline_for().as_dict()
        assert set(d) == {"T_en_det", "T_xcorr_det", "T_init", "T_delay",
                          "T_jam", "T_resp(energy)", "T_resp(xcorr)"}

    def test_jam_duration_range_matches_paper(self):
        # 40 ns .. ~40 s selectable (the 32-bit counter runs on the
        # 100 MHz clock: 2^32 cycles ~ 42.9 s).
        from repro.hw.tx_controller import MAX_UPTIME_SAMPLES

        assert units.samples_to_seconds(1) == pytest.approx(40e-9)
        assert units.samples_to_seconds(MAX_UPTIME_SAMPLES) == pytest.approx(
            42.9, rel=0.01)
