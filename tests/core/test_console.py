"""Tests for the jammer control console (the paper's GUI equivalent)."""

from __future__ import annotations

import pytest

from repro.hw.trigger import TriggerMode, TriggerSource
from repro.hw.tx_controller import JamWaveform
from repro.tools.console import JammerConsole


@pytest.fixture
def console() -> JammerConsole:
    return JammerConsole()


class TestCommands:
    def test_template_loads_coefficients(self, console):
        reply = console.execute("template wifi-short")
        assert "wifi-short" in reply
        ci, _cq = console.device.core.correlator.coefficients
        assert ci.any()

    def test_unknown_template(self, console):
        assert "error" in console.execute("template lte")

    def test_threshold(self, console):
        console.execute("threshold 12345")
        assert console.device.core.correlator.threshold == 12345

    def test_energy(self, console):
        console.execute("energy 12 6")
        assert console.device.core.energy.threshold_high_db == 12.0
        assert console.device.core.energy.threshold_low_db == 6.0

    def test_energy_range_error_reported(self, console):
        assert "error" in console.execute("energy 50 10")

    def test_trigger_sequence(self, console):
        reply = console.execute("trigger energy-rise xcorr window 250")
        assert "ENERGY_HIGH -> XCORR" in reply
        fsm = console.device.core.fsm
        assert [s.source for s in fsm.stages] == [
            TriggerSource.ENERGY_HIGH, TriggerSource.XCORR]
        assert fsm.window_samples == 250

    def test_trigger_any_mode(self, console):
        console.execute("trigger xcorr energy-rise mode any")
        assert console.device.core.fsm.mode is TriggerMode.ANY

    def test_waveform_and_timing(self, console):
        console.execute("waveform replay")
        console.execute("uptime 1e-4")
        console.execute("delay 4e-6")
        tx = console.device.core.tx
        assert tx.waveform is JamWaveform.REPLAY
        assert tx.uptime_samples == 2500
        assert tx.delay_samples == 100

    def test_enable_disable(self, console):
        console.execute("enable off")
        assert not console.device.core.jammer_enabled
        console.execute("enable on")
        assert console.device.core.jammer_enabled

    def test_continuous(self, console):
        console.execute("continuous on")
        assert console.device.core.continuous

    def test_tune_and_gains(self, console):
        console.execute("tune 2.608e9")
        console.execute("txgain 20")
        console.execute("rxgain 10")
        fe = console.device.frontend
        assert fe.center_freq_hz == pytest.approx(2.608e9)
        assert fe.tx_gain_db == 20.0
        assert fe.rx_gain_db == 10.0

    def test_tune_out_of_range_reported(self, console):
        assert "error" in console.execute("tune 100e6")

    def test_status_mentions_configuration(self, console):
        console.execute("template wimax")
        console.execute("threshold 9000")
        status = console.execute("status")
        assert "wimax" in status
        assert "9000" in status

    def test_timeline_shows_budget(self, console):
        out = console.execute("timeline")
        assert "T_xcorr_det" in out
        assert "2.560 us" in out

    def test_registers_counter(self, console):
        before = console.execute("registers")
        console.execute("threshold 100")
        after = console.execute("registers")
        assert before != after

    def test_unknown_command(self, console):
        assert "error" in console.execute("fire-the-lasers")

    def test_empty_line(self, console):
        assert console.execute("") == ""

    def test_quit(self, console):
        console.execute("quit")
        assert console.done

    def test_help_lists_commands(self, console):
        text = console.execute("help")
        for word in ("template", "trigger", "uptime", "demo"):
            assert word in text


class TestDemos:
    @pytest.mark.parametrize("kind,template", [
        ("wifi", "wifi-short"),
        ("wimax", "wimax"),
        ("zigbee", "zigbee"),
    ])
    def test_demo_detects_and_jams(self, console, kind, template):
        console.execute(f"template {template}")
        console.execute("threshold 20000" if kind != "wimax"
                        else "threshold 9000")
        console.execute("trigger xcorr")
        console.execute("uptime 1e-5")
        reply = console.execute(f"demo {kind}")
        assert "jam bursts" in reply
        assert " 0 jam bursts" not in reply

    def test_unknown_demo(self, console):
        console.execute("template wifi-short")
        console.execute("trigger xcorr")
        assert "error" in console.execute("demo lte")


class TestFaCalibration:
    def test_fa_sets_threshold_from_budget(self, console):
        console.execute("template wifi-long")
        reply = console.execute("fa 0.083")
        assert "calibrated" in reply
        strict = console.device.core.correlator.threshold
        console.execute("fa 0.52")
        loose = console.device.core.correlator.threshold
        assert strict > loose > 0

    def test_fa_requires_template(self, console):
        assert "error" in console.execute("fa 0.1")


class TestImpairments:
    def test_profiles_attach_to_ddc(self, console):
        from repro.hw.impairments import TYPICAL_N210

        assert console.device.ddc.impairments is None
        console.execute("impairments typical")
        assert console.device.ddc.impairments == TYPICAL_N210
        console.execute("impairments off")
        assert console.device.ddc.impairments is None

    def test_unknown_profile(self, console):
        assert "error" in console.execute("impairments filthy")


class TestTelemetryCommands:
    def _run_demo(self, console):
        console.execute("template wifi-short")
        console.execute("threshold 20000")
        console.execute("trigger xcorr")
        console.execute("uptime 1e-5")
        console.execute("demo wifi")

    def test_stats_after_demo(self, console):
        self._run_demo(console)
        text = console.execute("stats")
        assert "error" not in text
        assert "detect.xcorr" in text

    def test_stats_disabled_bundle(self):
        from repro.telemetry import Telemetry

        console = JammerConsole(telemetry=Telemetry.disabled())
        assert console.execute("stats") == "telemetry is disabled"

    def test_trace_writes_chrome_json(self, console, tmp_path):
        import json

        self._run_demo(console)
        out = tmp_path / "demo.trace.json"
        reply = console.execute(f"trace {out}")
        assert "trace written" in reply
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        names = {e.get("name") for e in data["traceEvents"]}
        assert "detect.xcorr" in names

    def test_trace_disabled_bundle(self, tmp_path):
        from repro.telemetry import Telemetry

        console = JammerConsole(telemetry=Telemetry.disabled())
        assert "error" in console.execute(f"trace {tmp_path / 'x.json'}")

    def test_help_lists_telemetry_commands(self, console):
        text = console.execute("help")
        assert "stats" in text
        assert "trace" in text


class TestSweepCommands:
    def test_help_lists_sweep_commands(self, console):
        text = console.execute("help")
        assert "sweep run" in text
        assert "sweep status" in text

    def test_status_before_any_run(self, console):
        import repro.runtime.jobs as jobs

        jobs._LAST_HEALTH = None  # isolate from other tests' sweeps
        assert "no sweep has run yet" in console.execute("sweep status")

    def test_run_then_status_shows_health(self, console):
        reply = console.execute("sweep run")
        assert "P(detect)" in reply
        assert "crashes: 0" in reply
        status = console.execute("sweep status")
        assert "completed" in status
        assert "retries" in status

    def test_unknown_subcommand(self, console):
        assert "error" in console.execute("sweep bogus")


class TestDefenseCommands:
    def test_help_lists_defense_commands(self, console):
        text = console.execute("help")
        assert "defense roc" in text
        assert "defense tournament" in text

    def test_roc_reports_auc_per_detector(self, console):
        reply = console.execute(
            "defense roc --trials=2 --seed=3")
        assert "logistic" in reply and "xu-rule" in reply
        assert "auc=" in reply
        assert "op@fpr<=0.1" in reply

    def test_tournament_prints_policy_table(self, console):
        reply = console.execute(
            "defense tournament --policies=1,0.5 --trials=2 --seed=3")
        assert "always" in reply and "p0.5" in reply
        assert "auc:logistic" in reply and "auc:xu-rule" in reply
        assert "effic" in reply

    def test_constant_scenario(self, console):
        reply = console.execute(
            "defense roc --scenario=constant --trials=2")
        assert "error" not in reply
        assert "auc=" in reply

    def test_unknown_subcommand_and_option(self, console):
        assert "error" in console.execute("defense bogus")
        assert "error" in console.execute("defense roc --frobnicate=1")

    def test_invalid_policy_probability_is_reported(self, console):
        reply = console.execute("defense tournament --policies=0")
        assert reply.startswith("error:")
