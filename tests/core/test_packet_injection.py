"""Tests for the jam-and-spoof packet injection attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.packet_injection import (
    AckInjectionAttack,
    forge_ack_psdu,
    is_valid_ack,
)
from repro.errors import ConfigurationError


class TestAckForging:
    def test_forged_ack_is_well_formed(self):
        address = b"\x02ABCDE"
        psdu = forge_ack_psdu(address)
        assert len(psdu) == 14
        assert is_valid_ack(psdu, address)

    def test_address_embedded(self):
        address = bytes(range(6))
        psdu = forge_ack_psdu(address)
        assert psdu[4:10] == address

    def test_wrong_address_rejected(self):
        psdu = forge_ack_psdu(b"\x02ABCDE")
        assert not is_valid_ack(psdu, b"\x02FGHIJ")

    def test_corrupted_fcs_rejected(self):
        psdu = bytearray(forge_ack_psdu(b"\x02ABCDE"))
        psdu[-1] ^= 0x01
        assert not is_valid_ack(bytes(psdu), b"\x02ABCDE")

    def test_bad_address_length(self):
        with pytest.raises(ConfigurationError):
            forge_ack_psdu(b"\x02AB")

    def test_data_frame_not_mistaken_for_ack(self):
        assert not is_valid_ack(b"\x08\x00" + b"\x00" * 20, b"\x02ABCDE")


class TestAttack:
    def test_jam_and_spoof_succeeds(self):
        attack = AckInjectionAttack()
        result = attack.run(np.random.default_rng(3))
        assert result.data_frame_jammed
        assert result.forged_ack_decoded
        assert result.attack_succeeded

    def test_forged_ack_lands_one_sifs_after_frame(self):
        attack = AckInjectionAttack()
        result = attack.run(np.random.default_rng(3))
        # Timed via the host-stream pattern: within a microsecond of
        # the standard's 10 us SIFS.
        assert result.ack_timing_error_s < 1.5e-6

    def test_without_jam_power_frame_survives(self):
        # A too-weak surgical burst: the data frame decodes at the AP,
        # so the injection is pointless (but the ACK still lands).
        attack = AckInjectionAttack(jam_gain_db=-60.0)
        result = attack.run(np.random.default_rng(3))
        assert not result.data_frame_jammed
        assert not result.attack_succeeded
