"""Tests for the secure-communication applications (iJam, friendly)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.friendly_jamming import FriendlyJammingLink
from repro.apps.ijam import IjamLink, minimum_padding_s
from repro.errors import ConfigurationError
from repro.phy.modulation import Modulation


def make_bits(rng, modulation: Modulation, n_symbols: int) -> np.ndarray:
    return rng.integers(0, 2, 48 * modulation.bits_per_symbol * n_symbols
                        ).astype(np.uint8)


class TestIjam:
    def test_receiver_clean_eavesdropper_garbled(self, rng):
        link = IjamLink()
        bits = make_bits(rng, link.modulation, 8)
        result = link.run(bits, rng)
        assert result.receiver_ber == 0.0
        assert result.eavesdropper_ber > 0.05

    def test_padding_follows_hardware_timeline(self):
        # 2.64 us response + 1 us margin.
        assert minimum_padding_s() == pytest.approx(3.64e-6)

    def test_higher_jam_power_does_not_hurt_receiver(self, rng):
        link = IjamLink(jam_to_signal_db=10.0)
        bits = make_bits(rng, link.modulation, 6)
        result = link.run(bits, rng)
        assert result.receiver_ber == 0.0

    def test_secrecy_grows_with_constellation_density(self, rng):
        results = {}
        for mod in (Modulation.QPSK, Modulation.QAM64):
            link = IjamLink(modulation=mod, jam_to_signal_db=6.0)
            bits = make_bits(rng, mod, 8)
            results[mod] = link.run(bits, np.random.default_rng(9))
        assert results[Modulation.QAM64].eavesdropper_ber \
            > results[Modulation.QPSK].eavesdropper_ber

    def test_bit_count_validated(self, rng):
        link = IjamLink()
        with pytest.raises(ConfigurationError):
            link.run(np.ones(13, dtype=np.uint8), rng)

    def test_different_seeds_give_different_patterns(self, rng):
        a = IjamLink(secret_seed=1)
        b = IjamLink(secret_seed=2)
        a._jam_pattern(4, 100)
        b._jam_pattern(4, 100)
        assert not np.array_equal(a._kill_first, b._kill_first)


class TestFriendlyJamming:
    def test_authorized_clean_unauthorized_garbled(self, rng):
        link = FriendlyJammingLink()
        bits = make_bits(rng, link.modulation, 12)
        result = link.run(bits, rng)
        assert result.authorized_ber < 0.01
        assert result.unauthorized_ber > 0.1

    def test_cancellation_depth(self, rng):
        link = FriendlyJammingLink()
        bits = make_bits(rng, link.modulation, 6)
        result = link.run(bits, rng)
        # The key-holder cancels the jamming by tens of dB.
        assert result.residual_jam_db < -20.0

    def test_stronger_jamming_hurts_unauthorized_more(self, rng):
        weak = FriendlyJammingLink(jam_to_signal_db=0.0)
        strong = FriendlyJammingLink(jam_to_signal_db=10.0)
        bits = make_bits(rng, weak.modulation, 8)
        r_weak = weak.run(bits, np.random.default_rng(3))
        r_strong = strong.run(bits, np.random.default_rng(3))
        assert r_strong.unauthorized_ber > r_weak.unauthorized_ber
        assert r_strong.authorized_ber < 0.01

    def test_wrong_key_cannot_cancel(self, rng):
        # A receiver regenerating with the wrong key sees the same
        # interference as an unauthorized one: verify by checking the
        # jamming waveform differs per key.
        from repro.core.jammer import ReactiveJammer
        from repro.core.detection import DetectionConfig
        from repro.core.events import JammingEventBuilder
        from repro.core.presets import continuous_jammer

        waves = []
        for key in (1, 2):
            jammer = ReactiveJammer()
            jammer.configure(DetectionConfig(),
                             JammingEventBuilder().on_energy_rise(),
                             continuous_jammer(wgn_seed=key))
            waves.append(jammer.run(np.zeros(512, dtype=complex)).tx)
        assert not np.allclose(waves[0], waves[1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FriendlyJammingLink(training_samples=10)
