"""Properties of the fault-injection subsystem.

Two contracts the chaos methodology stands on:

* **replay determinism** — a :class:`FaultPlan` is a pure function of
  its seed and specs: replaying any plan yields byte-identical fault
  schedules, so every chaos campaign is exactly reproducible;
* **scrub completeness** — after *arbitrary* SEU-style corruption of
  registers the driver has written, one :meth:`UhdDriver.scrub` pass
  restores every shadow-mapped register to the host's intent.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, FaultyRegisterBus, NO_FAULTS
from repro.faults.plan import ControlFaultKind, ControlFaultSpec, StreamFaultKind, StreamFaultSpec
from repro.hw.registers import WORD_MASK
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210

# ----------------------------------------------------------------------
# Strategies

control_specs = st.builds(
    ControlFaultSpec,
    kind=st.sampled_from(list(ControlFaultKind)),
    rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    addresses=st.one_of(
        st.none(),
        st.frozensets(st.integers(min_value=0, max_value=254),
                      min_size=1, max_size=4),
    ),
    max_delay_ops=st.integers(min_value=1, max_value=8),
)

stream_specs = st.builds(
    StreamFaultSpec,
    kind=st.sampled_from(list(StreamFaultKind)),
    rate_per_million=st.floats(min_value=1.0, max_value=10_000.0,
                               allow_nan=False),
    duration_samples=st.integers(min_value=1, max_value=512),
    magnitude=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
)

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
    control=st.lists(control_specs, max_size=3).map(tuple),
    stream=st.lists(stream_specs, max_size=3).map(tuple),
)


@given(fault_plans)
@settings(max_examples=50, deadline=None)
def test_same_seed_replay_is_byte_identical(plan):
    digest = plan.schedule_digest(n_writes=64, n_samples=100_000)
    replayed = FaultPlan(seed=plan.seed, control=plan.control,
                         stream=plan.stream)
    assert replayed.schedule_digest(n_writes=64, n_samples=100_000) == digest
    # The digest is the canonical byte contract, but the underlying
    # schedules match record-for-record too.
    assert plan.control_schedule(64) == replayed.control_schedule(64)
    assert plan.stream_schedule(100_000) == replayed.stream_schedule(100_000)


@given(fault_plans, st.integers(min_value=1, max_value=2 ** 32 - 1))
@settings(max_examples=50, deadline=None)
def test_faulted_schedules_differ_only_via_seed(plan, delta):
    """Changing nothing but the seed leaves the spec tuple in charge."""
    other = FaultPlan(seed=(plan.seed + delta) % 2 ** 32,
                      control=plan.control, stream=plan.stream)
    if not plan.control and not plan.stream:
        assert (plan.schedule_digest(n_writes=64, n_samples=100_000)
                == other.schedule_digest(n_writes=64, n_samples=100_000))


# ----------------------------------------------------------------------
# Scrub completeness

#: Registers the reference configuration below is known to shadow.
def _configured_driver():
    bus = FaultyRegisterBus(NO_FAULTS)
    driver = UhdDriver(UsrpN210(bus=bus))
    driver.set_xcorr_threshold(30_000)
    driver.set_energy_thresholds(12.0, 6.0)
    driver.set_jam_delay(100)
    driver.set_jam_uptime(2500)
    driver.set_control(jammer_enabled=True)
    return driver, bus


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_scrub_restores_every_shadowed_register(data):
    driver, bus = _configured_driver()
    shadow = driver.shadow_registers()
    addresses = sorted(shadow)
    victims = data.draw(st.lists(st.sampled_from(addresses),
                                 min_size=1, max_size=len(addresses),
                                 unique=True))
    for address in victims:
        corrupted = data.draw(st.integers(min_value=0, max_value=WORD_MASK))
        bus.upset(address, corrupted)
    repaired = driver.scrub()
    # Everything that actually drifted was repaired...
    drifted = [a for a in victims if shadow[a] != bus.read(a)]
    assert drifted == []
    # ...and afterwards the device register file equals the shadow map
    # exactly, for every register the host ever wrote.
    for address in addresses:
        assert bus.read(address) == shadow[address]
    # Scrub never "repairs" a register the host did not intend.
    assert set(repaired) <= set(addresses)
