"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsp.fixed_point import IQ16, FixedPointFormat, sign_bits_iq
from repro.dsp.filters import moving_sum
from repro.dsp.ofdm import OfdmParameters, ofdm_demodulate, ofdm_modulate
from repro.dsp.resample import RationalResampler
from repro.hw.cross_correlator import CrossCorrelator, quantize_coefficients
from repro.hw.energy_differentiator import EnergyDifferentiator
from repro.hw.registers import pack_signed_fields, unpack_signed_fields
from repro.hw.trigger import TriggerSource, TriggerStateMachine, rising_edges
from repro.phy.bits import bits_to_bytes, bytes_to_bits, check_fcs, append_fcs
from repro.phy.coding import CodeRate, ConvolutionalCode
from repro.phy.interleaving import deinterleave, interleave
from repro.phy.modulation import Modulation, hard_decide, map_bits
from repro.phy.scrambler import scramble

# ----------------------------------------------------------------------
# Strategies

bit_arrays = st.integers(1, 400).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)
).map(lambda bits: np.array(bits, dtype=np.uint8))

seeds = st.integers(0, 2 ** 31 - 1)


def complex_signal(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


# ----------------------------------------------------------------------
# Bit plumbing

@given(st.binary(min_size=0, max_size=300))
def test_bits_bytes_roundtrip(data: bytes):
    assert bits_to_bytes(bytes_to_bits(data)) == data


@given(st.binary(min_size=1, max_size=200))
def test_fcs_roundtrip(data: bytes):
    assert check_fcs(append_fcs(data))


@given(st.binary(min_size=1, max_size=100), st.integers(0, 799),
       st.integers(1, 7))
def test_fcs_detects_any_single_bit_flip(data: bytes, pos: int, flip: int):
    framed = bytearray(append_fcs(data))
    index = pos % len(framed)
    framed[index] ^= 1 << (flip % 8)
    assert not check_fcs(bytes(framed))


@given(bit_arrays, st.integers(1, 127))
def test_scrambler_involution(bits: np.ndarray, seed: int):
    assert np.array_equal(scramble(scramble(bits, seed), seed), bits)


# ----------------------------------------------------------------------
# Fixed point

@given(st.integers(2, 24), st.lists(st.floats(-1000, 1000,
                                              allow_nan=False),
                                    min_size=1, max_size=50))
def test_fixed_point_always_in_range(bits: int, values: list[float]):
    fmt = FixedPointFormat(total_bits=bits, fractional_bits=bits // 2)
    ints = fmt.to_int(np.array(values))
    assert np.all(ints <= fmt.max_int)
    assert np.all(ints >= fmt.min_int)


@given(seeds, st.integers(1, 200))
def test_sign_bits_always_bipolar(seed: int, n: int):
    i, q = sign_bits_iq(complex_signal(seed, n))
    assert set(np.unique(i)) <= {-1, 1}
    assert set(np.unique(q)) <= {-1, 1}


# ----------------------------------------------------------------------
# Register packing

@given(st.integers(2, 16).flatmap(
    lambda bits: st.tuples(
        st.just(bits),
        st.lists(st.integers(-(1 << (bits - 1)), (1 << (bits - 1)) - 1),
                 min_size=1, max_size=100))))
def test_pack_unpack_roundtrip(args):
    bits, values = args
    words = pack_signed_fields(values, bits)
    assert all(0 <= w <= 0xFFFFFFFF for w in words)
    assert unpack_signed_fields(words, bits, len(values)) == values


# ----------------------------------------------------------------------
# Moving sum / energy differentiator

@given(seeds, st.integers(1, 40), st.integers(1, 300))
def test_moving_sum_matches_reference(seed: int, window: int, n: int):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    out = moving_sum(x, window)
    for k in (0, n // 2, n - 1):
        expected = np.sum(x[max(0, k - window + 1):k + 1])
        assert abs(out[k] - expected) < 1e-9


@given(seeds, st.integers(2, 10))
@settings(max_examples=25)
def test_energy_sums_chunking_invariant(seed: int, n_chunks: int):
    x = complex_signal(seed, 400)
    whole = EnergyDifferentiator().energy_sums(x)
    det = EnergyDifferentiator()
    bounds = np.linspace(0, 400, n_chunks + 1).astype(int)
    parts = [det.energy_sums(x[a:b]) for a, b in zip(bounds, bounds[1:])]
    assert np.allclose(np.concatenate(parts), whole)


# ----------------------------------------------------------------------
# Cross-correlator

@given(seeds, st.integers(1, 6))
@settings(max_examples=25)
def test_correlator_chunking_invariant(seed: int, n_chunks: int):
    rng = np.random.default_rng(seed)
    template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
    ci, cq = quantize_coefficients(template)
    x = complex_signal(seed + 1, 300)
    whole = CrossCorrelator(ci, cq).metric(x)
    chunked = CrossCorrelator(ci, cq)
    bounds = np.linspace(0, 300, n_chunks + 1).astype(int)
    parts = [chunked.metric(x[a:b]) for a, b in zip(bounds, bounds[1:])]
    assert np.array_equal(np.concatenate(parts), whole)


@given(seeds)
@settings(max_examples=25)
def test_correlator_metric_nonnegative(seed: int):
    rng = np.random.default_rng(seed)
    template = np.exp(1j * rng.uniform(0, 2 * np.pi, 64))
    ci, cq = quantize_coefficients(template)
    metric = CrossCorrelator(ci, cq).metric(complex_signal(seed, 500))
    assert np.all(metric >= 0)


# ----------------------------------------------------------------------
# Coding

@given(bit_arrays.filter(lambda b: b.size >= 7),
       st.sampled_from(list(CodeRate)))
@settings(max_examples=40)
def test_conv_code_roundtrip(bits: np.ndarray, rate: CodeRate):
    bits = bits.copy()
    bits[-6:] = 0  # tail
    code = ConvolutionalCode(rate)
    coded = code.encode(bits)
    assert coded.size == code.coded_length(bits.size)
    assert np.array_equal(code.decode_hard(coded, bits.size), bits)


@given(st.integers(1, 200).map(lambda n: n * 2),
       st.sampled_from(list(Modulation)), seeds)
def test_modulation_roundtrip(n_symbols: int, mod: Modulation, seed: int):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, n_symbols * mod.bits_per_symbol).astype(np.uint8)
    assert np.array_equal(hard_decide(map_bits(bits, mod), mod), bits)


@given(st.sampled_from([(48, 1), (96, 2), (192, 4), (288, 6)]),
       st.integers(1, 5), seeds)
def test_interleaver_is_bijection(block, n_blocks: int, seed: int):
    n_cbps, n_bpsc = block
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, n_cbps * n_blocks).astype(np.uint8)
    forward = interleave(bits, n_cbps, n_bpsc)
    assert np.array_equal(deinterleave(forward, n_cbps, n_bpsc), bits)
    assert np.array_equal(np.sort(forward), np.sort(bits))  # permutation


# ----------------------------------------------------------------------
# OFDM

@given(seeds, st.sampled_from([(64, 16), (256, 32), (1024, 128)]))
@settings(max_examples=25)
def test_ofdm_roundtrip(seed: int, geometry):
    fft_size, cp = geometry
    params = OfdmParameters(fft_size=fft_size, cp_length=cp, sample_rate=1e6)
    rng = np.random.default_rng(seed)
    n_active = fft_size // 4
    carriers = rng.choice(np.arange(1, fft_size // 2), size=n_active,
                          replace=False)
    values = rng.standard_normal(n_active) + 1j * rng.standard_normal(n_active)
    symbol = ofdm_modulate(params, carriers, values)
    assert symbol.size == params.symbol_length
    assert np.allclose(ofdm_demodulate(params, symbol, carriers), values)


# ----------------------------------------------------------------------
# Resampler

@given(st.integers(1, 12), st.integers(1, 12), st.integers(10, 500))
@settings(max_examples=40)
def test_resampler_output_length(up: int, down: int, n: int):
    r = RationalResampler(up, down)
    x = np.ones(n, dtype=complex)
    assert r.process(x).size == r.output_length(n)


# ----------------------------------------------------------------------
# Trigger FSM

@given(st.lists(st.tuples(st.integers(0, 10_000),
                          st.sampled_from(list(TriggerSource))),
                max_size=60))
def test_fsm_single_stage_counts_matching_events(events):
    events = sorted(events, key=lambda e: e[0])
    fsm = TriggerStateMachine([TriggerSource.XCORR])
    jams = fsm.process_events(events)
    expected = [t for t, s in events if s is TriggerSource.XCORR]
    assert jams == expected


@given(st.lists(st.booleans(), min_size=1, max_size=100), st.booleans())
def test_rising_edges_count_matches_transitions(bits, prev):
    trig = np.array(bits, dtype=bool)
    edges = rising_edges(trig, prev)
    padded = np.concatenate([[prev], trig])
    expected = int(np.sum(~padded[:-1] & padded[1:]))
    assert edges.size == expected
