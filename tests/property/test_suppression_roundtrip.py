"""Property tests: suppression-comment parsing round-trips.

The suppression layer is the one part of repro-lint every developer
talks to directly, so its parser gets the adversarial treatment:
generated rule-code sets, spacing, and comment placement must always
round-trip — a directive we emit is a directive we parse, suppressing
exactly the codes it names on exactly the lines it covers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.suppressions import collect_suppressions
import ast

#: Realistic rule codes (RJ000..RJ099) plus renamed/unknown ones;
#: the parser accepts any alphanumeric code.
rule_codes = st.from_regex(r"RJ[0-9]{3}", fullmatch=True)
code_sets = st.sets(rule_codes, min_size=1, max_size=4)
#: Horizontal padding a human might type around the directive.
pad = st.text(alphabet=" ", max_size=3)


def _directive(codes: set[str], scope_file: bool, lpad: str,
               rpad: str) -> str:
    scope = "disable-file" if scope_file else "disable"
    return f"# repro-lint:{lpad}{scope}{rpad}={lpad}{','.join(sorted(codes))}"


def _collect(source: str):
    return collect_suppressions(source, ast.parse(source))


class TestLineDirectiveRoundtrip:
    @given(codes=code_sets, lpad=pad, rpad=pad)
    @settings(max_examples=200)
    def test_emitted_directive_suppresses_named_codes_on_its_line(
            self, codes, lpad, rpad):
        source = (
            "x = 1\n"
            f"y = compute()  {_directive(codes, False, lpad, rpad)}\n"
            "z = 3\n"
        )
        suppressions = _collect(source)
        for code in codes:
            assert suppressions.is_suppressed(code, 2)
            assert not suppressions.is_suppressed(code, 1)
            assert not suppressions.is_suppressed(code, 3)

    @given(codes=code_sets, other=rule_codes)
    @settings(max_examples=200)
    def test_unlisted_codes_stay_active(self, codes, other):
        source = f"y = compute()  {_directive(codes, False, '', '')}\n"
        suppressions = _collect(source)
        assert suppressions.is_suppressed(other, 1) == (other in codes)

    @given(codes=code_sets)
    def test_case_of_code_is_irrelevant(self, codes):
        lowered = {code.lower() for code in codes}
        source = f"y = compute()  {_directive(lowered, False, '', '')}\n"
        suppressions = _collect(source)
        for code in codes:
            assert suppressions.is_suppressed(code, 1)


class TestFileDirectiveRoundtrip:
    @given(codes=code_sets, line_count=st.integers(1, 20))
    @settings(max_examples=100)
    def test_file_directive_covers_every_line(self, codes, line_count):
        source = f"{_directive(codes, True, '', '')}\n" + \
            "\n".join(f"x{i} = {i}" for i in range(line_count)) + "\n"
        suppressions = _collect(source)
        for code in codes:
            for line in range(1, line_count + 2):
                assert suppressions.is_suppressed(code, line)


class TestDefScopedRoundtrip:
    @given(codes=code_sets, body_lines=st.integers(1, 10))
    @settings(max_examples=100)
    def test_header_directive_covers_exactly_the_body(self, codes,
                                                      body_lines):
        body = "\n".join(f"    x{i} = {i}" for i in range(body_lines))
        source = (
            "a = 0\n"
            f"def f():  {_directive(codes, False, '', '')}\n"
            f"{body}\n"
            "b = 1\n"
        )
        suppressions = _collect(source)
        last_body_line = 2 + body_lines
        for code in codes:
            for line in range(2, last_body_line + 1):
                assert suppressions.is_suppressed(code, line)
            assert not suppressions.is_suppressed(code, 1)
            assert not suppressions.is_suppressed(code, last_body_line + 1)


class TestNonDirectivesAreInert:
    @given(comment=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                               exclude_characters="#\\"),
        max_size=40))
    @settings(max_examples=200)
    def test_arbitrary_comments_suppress_nothing(self, comment):
        if "repro-lint" in comment:
            return
        source = f"x = 1  # {comment}\n"
        suppressions = _collect(source)
        assert not suppressions.is_suppressed("RJ001", 1)
        assert not suppressions.file_level
