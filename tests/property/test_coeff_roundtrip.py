"""Round-tripping coefficient banks through the register packing.

The paper ships 64 3-bit signed correlator coefficients per bank (I
and Q), packed 10 per 32-bit word into 7 words each (register map
addresses 0..6 and 7..13).  These properties pin the packing down
bit-exactly: any legal bank survives the trip host -> packed words ->
register bus -> unpacked bank unchanged, and the writes never stray
outside the 24 registers the design claims.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw import register_map as regmap
from repro.hw.registers import UserRegisterBus, pack_signed_fields, \
    unpack_signed_fields
from repro.hw.uhd import UhdDriver
from repro.hw.usrp import UsrpN210

#: One full 64-element bank of 3-bit signed coefficients in [-4, 3].
coeff_banks = st.lists(
    st.integers(min_value=-(1 << (regmap.COEFF_BITS - 1)),
                max_value=(1 << (regmap.COEFF_BITS - 1)) - 1),
    min_size=regmap.CORRELATOR_LENGTH,
    max_size=regmap.CORRELATOR_LENGTH,
)


@given(coeff_banks)
@settings(max_examples=100, deadline=None)
def test_pack_unpack_is_bit_exact(bank):
    words = pack_signed_fields(bank, regmap.COEFF_BITS)
    assert len(words) == regmap.COEFF_WORDS
    assert all(0 <= word < (1 << regmap.COEFF_WORD_WIDTH) for word in words)
    recovered = unpack_signed_fields(words, regmap.COEFF_BITS,
                                     regmap.CORRELATOR_LENGTH)
    assert recovered == bank


@given(coeff_banks, coeff_banks)
@settings(max_examples=50, deadline=None)
def test_bus_roundtrip_through_the_driver(bank_i, bank_q):
    """Host -> UhdDriver -> register bus -> readback recovers the banks."""
    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_correlator_coefficients(np.asarray(bank_i),
                                       np.asarray(bank_q))

    words_i = [device.bus.read(regmap.REG_COEFF_I_BASE + k)
               for k in range(regmap.COEFF_WORDS)]
    words_q = [device.bus.read(regmap.REG_COEFF_Q_BASE + k)
               for k in range(regmap.COEFF_WORDS)]
    assert unpack_signed_fields(words_i, regmap.COEFF_BITS,
                                regmap.CORRELATOR_LENGTH) == bank_i
    assert unpack_signed_fields(words_q, regmap.COEFF_BITS,
                                regmap.CORRELATOR_LENGTH) == bank_q

    # The hardware block saw exactly what the host sent.
    loaded_i, loaded_q = device.core.correlator.coefficients
    assert loaded_i.tolist() == bank_i
    assert loaded_q.tolist() == bank_q


@given(coeff_banks, coeff_banks)
@settings(max_examples=25, deadline=None)
def test_coefficient_writes_stay_inside_the_claimed_footprint(bank_i, bank_q):
    """No coefficient write may land outside the paper's 24 registers."""
    touched: list[int] = []
    bus = UserRegisterBus()
    original_write = bus.write

    def recording_write(address, value):
        touched.append(address)
        original_write(address, value)

    bus.write = recording_write
    device = UsrpN210(bus=bus)
    driver = UhdDriver(device)
    driver.set_correlator_coefficients(np.asarray(bank_i),
                                       np.asarray(bank_q))
    assert touched, "the driver must actually write the bus"
    assert all(0 <= address < regmap.REGISTERS_USED for address in touched)
    assert max(touched) == regmap.REG_COEFF_Q_BASE + regmap.COEFF_WORDS - 1
