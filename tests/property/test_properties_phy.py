"""Property-based tests: PHY round trips and frame formats."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mac.dot11 import (
    FrameType,
    build_ack_frame,
    build_data_frame,
    build_deauth_frame,
    mac_address,
    parse_frame,
)
from repro.phy.wifi.dsss import build_dsss_ppdu
from repro.phy.wifi.dsss_receiver import DsssReceiver
from repro.phy.zigbee.frame import build_ppdu as build_zigbee_ppdu
from repro.phy.zigbee.receiver import ZigbeeReceiver

payloads = st.binary(min_size=1, max_size=40)
addresses = st.integers(0, 0xFFFFFF).map(mac_address)


# ----------------------------------------------------------------------
# 802.11 frame formats

@given(addresses, addresses, addresses, payloads, st.integers(0, 0xFFF))
@settings(max_examples=40)
def test_data_frame_roundtrip(dst, src, bssid, payload, seq):
    mpdu = build_data_frame(dst, src, bssid, payload, sequence=seq)
    header, body = parse_frame(mpdu)
    assert header.frame_type is FrameType.DATA
    assert header.sequence == seq
    assert body == payload


@given(addresses)
def test_ack_roundtrip(receiver):
    header, body = parse_frame(build_ack_frame(receiver))
    assert header.frame_type is FrameType.ACK
    assert header.addr1 == receiver
    assert body == b""


@given(addresses, addresses, addresses, st.integers(0, 0xFFFF))
@settings(max_examples=40)
def test_deauth_roundtrip(dst, src, bssid, reason):
    mpdu = build_deauth_frame(dst, src, bssid, reason=reason)
    header, body = parse_frame(mpdu)
    assert header.frame_type is FrameType.DEAUTH
    assert int.from_bytes(body, "little") == reason


@given(addresses, addresses, addresses, payloads,
       st.integers(0, 2000), st.integers(0, 7))
@settings(max_examples=40)
def test_any_bit_flip_is_detected(dst, src, bssid, payload, pos, bit):
    mpdu = bytearray(build_data_frame(dst, src, bssid, payload))
    mpdu[pos % len(mpdu)] ^= 1 << bit
    try:
        parse_frame(bytes(mpdu))
    except Exception:
        return  # rejected, as it must be
    raise AssertionError("a corrupted frame parsed cleanly")


# ----------------------------------------------------------------------
# Legacy PHY round trips (clean channel)

@given(payloads)
@settings(max_examples=15, deadline=None)
def test_dsss_roundtrip_any_payload(payload):
    wave = build_dsss_ppdu(payload)
    assert DsssReceiver().receive(wave).psdu == payload


@given(payloads)
@settings(max_examples=15, deadline=None)
def test_zigbee_roundtrip_any_payload(payload):
    wave = build_zigbee_ppdu(payload)
    assert ZigbeeReceiver().receive(wave).psdu == payload


@given(payloads, st.floats(0.0, 2 * np.pi))
@settings(max_examples=10, deadline=None)
def test_dsss_roundtrip_any_carrier_phase(payload, phase):
    wave = build_dsss_ppdu(payload) * np.exp(1j * phase)
    assert DsssReceiver().receive(wave).psdu == payload


# ----------------------------------------------------------------------
# Profiles

@given(st.integers(0, 0xFFFF_FFFF), st.integers(1, 2 ** 20),
       st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_profile_roundtrip_random_settings(threshold, uptime, delay):
    from repro.core.profiles import apply_profile, snapshot_profile
    from repro.hw.uhd import UhdDriver
    from repro.hw.usrp import UsrpN210

    device = UsrpN210()
    driver = UhdDriver(device)
    driver.set_xcorr_threshold(threshold)
    driver.set_jam_uptime(uptime)
    driver.set_jam_delay(delay)
    profile = snapshot_profile(device)
    clone = UsrpN210()
    apply_profile(clone, profile)
    assert snapshot_profile(clone) == profile
