"""Fuzzing the register control plane.

The host can write anything to the user registers at any time; the
hardware must never end up in a state that crashes the data path or
violates basic invariants.  These hypothesis tests hammer the bus with
random writes and then push signal through the core.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.channel.awgn import awgn
from repro.errors import ReproError
from repro.hw import register_map as regmap
from repro.hw.dsp_core import CustomDspCore
from repro.hw.registers import NUM_REGISTERS
from repro.hw.trigger import TriggerStateMachine

# Addresses and 32-bit payloads.
addresses = st.integers(0, NUM_REGISTERS - 1)
words = st.integers(0, 0xFFFF_FFFF)
write_lists = st.lists(st.tuples(addresses, words), max_size=40)


def _safe_write(core: CustomDspCore, address: int, value: int) -> None:
    """Write, tolerating semantic rejections but nothing else."""
    try:
        core.bus.write(address, value)
    except ReproError:
        # Out-of-range *semantic* values (e.g. energy thresholds
        # outside 3..30 dB) are rejected by the watchers — that is the
        # hardware refusing a bad setting, which is fine.
        pass


@given(write_lists, st.integers(0, 2 ** 31 - 1))
@settings(max_examples=50, deadline=None)
def test_random_register_writes_never_break_the_datapath(writes, seed):
    core = CustomDspCore()
    for address, value in writes:
        _safe_write(core, address, value)
    rng = np.random.default_rng(seed)
    out = core.process(awgn(512, 1e-4, rng))
    # Invariants that must survive any configuration:
    assert out.tx.size == 512
    assert np.all(np.isfinite(out.tx))
    assert core.clock == 512
    for event in out.detections:
        assert 0 <= event.time < 512
    for jam in out.jams:
        assert jam.end > jam.start
        assert jam.start >= jam.trigger_time


@given(write_lists)
@settings(max_examples=50, deadline=None)
def test_fsm_always_valid_after_fuzzing(writes):
    core = CustomDspCore()
    for address, value in writes:
        _safe_write(core, address, value)
    fsm = core.fsm
    assert 1 <= len(fsm.stages) <= TriggerStateMachine.MAX_STAGES
    assert fsm.window_samples >= 0


@given(st.lists(words, min_size=regmap.COEFF_WORDS,
                max_size=regmap.COEFF_WORDS))
@settings(max_examples=50)
def test_any_packed_words_yield_legal_coefficients(coefficient_words):
    core = CustomDspCore()
    for offset, word in enumerate(coefficient_words):
        core.bus.write(regmap.REG_COEFF_I_BASE + offset, word)
    coeffs_i, coeffs_q = core.correlator.coefficients
    # Whatever bits arrive, the unpacked coefficients are 3-bit signed.
    assert np.all(coeffs_i >= -4) and np.all(coeffs_i <= 3)
    assert np.all(coeffs_q >= -4) and np.all(coeffs_q <= 3)


@given(words)
@settings(max_examples=60)
def test_any_trigger_config_word_is_safe(word):
    core = CustomDspCore()
    core.bus.write(regmap.REG_TRIGGER_WINDOW, 100)
    try:
        core.bus.write(regmap.REG_TRIGGER_CONFIG, word)
    except ReproError:
        return  # an unknown source encoding is legitimately rejected
    assert 1 <= len(core.fsm.stages) <= 3
