"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import units
from repro.channel.multipath import TappedDelayLine, two_ray
from repro.dsp.spectrum import occupied_bandwidth, welch_psd
from repro.hw.impairments import FrontEndImpairments
from repro.hw.vita_time import VitaTimeSource
from repro.phy.wifi.dsss import differential_encode, scramble_bits
from repro.phy.zigbee.params import chip_sequence, octets_to_symbols

seeds = st.integers(0, 2 ** 31 - 1)


def noise(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(2)


# ----------------------------------------------------------------------
# Zigbee chip table

@given(st.integers(0, 15))
def test_chip_sequences_are_binary_and_32_long(symbol: int):
    chips = chip_sequence(symbol)
    assert chips.size == 32
    assert set(np.unique(chips)) <= {0, 1}


@given(st.integers(0, 15), st.integers(0, 15))
def test_chip_sequences_distinct(a: int, b: int):
    if a != b:
        assert not np.array_equal(chip_sequence(a), chip_sequence(b))


@given(st.binary(min_size=0, max_size=64))
def test_octets_to_symbols_preserves_information(data: bytes):
    symbols = octets_to_symbols(data)
    assert symbols.size == 2 * len(data)
    rebuilt = bytes(
        int(symbols[2 * k]) | (int(symbols[2 * k + 1]) << 4)
        for k in range(len(data))
    )
    assert rebuilt == data


# ----------------------------------------------------------------------
# DSSS

@given(st.lists(st.integers(0, 1), min_size=1, max_size=300),
       st.integers(1, 127))
def test_dsss_scrambler_output_binary(bits, seed):
    out = scramble_bits(np.array(bits, dtype=np.uint8), seed)
    assert out.size == len(bits)
    assert set(np.unique(out)) <= {0, 1}


@given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
def test_differential_encoding_phase_count(bits):
    bits_arr = np.array(bits, dtype=np.uint8)
    phases = differential_encode(bits_arr)
    # The number of phase flips equals the number of 1 bits.
    flips = int(np.sum(phases[1:] != phases[:-1]))
    ones_after_first = int(np.sum(bits_arr[1:]))
    assert flips == ones_after_first


# ----------------------------------------------------------------------
# Impairments

@given(seeds, st.floats(-0.2, 0.2), st.floats(-0.2, 0.2))
@settings(max_examples=30)
def test_dc_offset_is_exactly_additive(seed, dc_i, dc_q):
    imp = FrontEndImpairments(dc_offset=complex(dc_i, dc_q))
    x = noise(seed, 64)
    assert np.allclose(imp.apply(x), x + complex(dc_i, dc_q))


@given(seeds, st.floats(-100e3, 100e3))
@settings(max_examples=30)
def test_cfo_preserves_power(seed, cfo):
    imp = FrontEndImpairments(cfo_hz=cfo)
    x = noise(seed, 256)
    np.testing.assert_allclose(units.signal_power(imp.apply(x)),
                               units.signal_power(x), rtol=1e-9)


@given(seeds, st.integers(1, 5))
@settings(max_examples=25)
def test_impairments_chunking_invariant(seed, n_chunks):
    imp = FrontEndImpairments(dc_offset=0.05, cfo_hz=33e3,
                              iq_phase_error_deg=5.0)
    x = noise(seed, 300)
    whole = imp.apply(x, 0)
    bounds = np.linspace(0, 300, n_chunks + 1).astype(int)
    parts = np.concatenate([
        imp.apply(x[a:b], a) for a, b in zip(bounds, bounds[1:])
    ])
    assert np.allclose(parts, whole)


# ----------------------------------------------------------------------
# Multipath

@given(seeds, st.integers(1, 12), st.floats(-20.0, 0.0))
@settings(max_examples=30)
def test_two_ray_power_preserving_on_noise(seed, delay, echo_db):
    channel = two_ray(delay_samples=delay, echo_db=echo_db)
    x = noise(seed, 20_000)
    p_out = units.signal_power(channel.apply(x))
    # A unit-power channel preserves average power on white input.
    assert abs(p_out - 1.0) < 0.15


@given(st.lists(st.integers(0, 30), min_size=1, max_size=5, unique=True))
def test_impulse_response_places_taps(delays):
    delays = sorted(delays)
    gains = tuple(1.0 + 0j for _ in delays)
    tdl = TappedDelayLine(delays=tuple(delays), gains=gains)
    h = tdl.impulse_response
    assert set(np.flatnonzero(h)) == set(delays)


# ----------------------------------------------------------------------
# Spectrum

@given(seeds)
@settings(max_examples=20)
def test_psd_is_nonnegative(seed):
    _f, psd = welch_psd(noise(seed, 4096), 25e6)
    assert np.all(psd >= 0)


@given(seeds, st.floats(0.5, 0.99))
@settings(max_examples=20)
def test_occupied_bandwidth_monotone_in_fraction(seed, fraction):
    x = noise(seed, 8192)
    low = occupied_bandwidth(x, 25e6, fraction=fraction / 2)
    high = occupied_bandwidth(x, 25e6, fraction=fraction)
    assert low <= high


# ----------------------------------------------------------------------
# VITA time

@given(st.integers(0, 10 ** 12), st.floats(0.0, 10 ** 6))
@settings(max_examples=40)
def test_vita_roundtrip(sample, epoch):
    src = VitaTimeSource(epoch_seconds=epoch)
    assert src.sample_at(src.timestamp(sample)) == sample


@given(st.floats(0.0, 10.0), st.floats(0.0, 3600.0))
@settings(max_examples=30)
def test_gps_locked_clocks_never_drift(ppm, duration):
    a = VitaTimeSource(gps_locked=True, drift_ppm=ppm)
    b = VitaTimeSource(gps_locked=True, drift_ppm=ppm * 2)
    assert a.offset_after(b, duration) == 0.0
