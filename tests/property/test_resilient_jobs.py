"""Properties of the fault-tolerant job layer.

Two contracts crash-resumability stands on:

* **shard-key stability** — a shard's content address is a pure
  function of (trial fn, grid slice): recomputing it, or rebuilding
  the same grid from scratch, yields the same key, while changing any
  task's point, seed, or index yields a different one.  Resume
  correctness is exactly this property — a journal entry must match
  the same work and only the same work.
* **journal robustness** — whatever rows a sweep records, a reload
  returns them verbatim; and however the journal's tail is torn or
  scribbled on, the loader never trusts a damaged line (it counts and
  skips it) and never loses an intact one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime.jobs import ShardCheckpoint, shard_key
from repro.runtime.sweep import build_tasks

# ----------------------------------------------------------------------
# Strategies

points = st.lists(
    st.one_of(
        st.integers(min_value=-2 ** 31, max_value=2 ** 31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=8),
        st.tuples(st.integers(min_value=0, max_value=255),
                  st.floats(allow_nan=False, allow_infinity=False,
                            width=32)),
    ),
    min_size=1, max_size=6,
)

#: JSON-ish picklable trial results, as the experiments produce.
values = st.one_of(
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
    st.tuples(st.integers(min_value=0, max_value=10 ** 6),
              st.floats(allow_nan=False, allow_infinity=False)),
)

row_lists = st.lists(values, min_size=1, max_size=8).map(
    lambda vs: [(index, value) for index, value in enumerate(vs)])


def _fn(point, rng):  # a stable identity for keying
    return point


# ----------------------------------------------------------------------
# Shard keys


@given(points,
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=50, deadline=None)
def test_shard_key_is_stable_across_rebuilds(grid, trials, seed_root):
    first = build_tasks(grid, trials, seed_root)
    rebuilt = build_tasks(list(grid), trials, seed_root)
    assert shard_key(_fn, first) == shard_key(_fn, first)
    assert shard_key(_fn, first) == shard_key(_fn, rebuilt)


@given(points,
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=50, deadline=None)
def test_shard_key_changes_with_seed_root_and_slice(grid, trials, seed_root):
    tasks = build_tasks(grid, trials, seed_root)
    reseeded = build_tasks(grid, trials, seed_root + 1)
    assert shard_key(_fn, tasks) != shard_key(_fn, reseeded)
    if len(tasks) > 1:
        assert shard_key(_fn, tasks[:-1]) != shard_key(_fn, tasks)


# ----------------------------------------------------------------------
# Checkpoint journal


@given(st.lists(row_lists, min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_journal_round_trips_every_recorded_shard(tmp_path_factory, shards):
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    with ShardCheckpoint(path) as journal:
        for shard_index, rows in enumerate(shards):
            journal.record(f"key-{shard_index}", shard_index, 1, rows)
    reloaded = ShardCheckpoint(path)
    try:
        assert len(reloaded) == len(shards)
        assert reloaded.corrupt_entries == 0
        for shard_index, rows in enumerate(shards):
            assert reloaded.get(f"key-{shard_index}") == rows
    finally:
        reloaded.close()


@given(row_lists, row_lists,
       st.integers(min_value=1, max_value=200),
       st.binary(max_size=64))
@settings(max_examples=50, deadline=None)
def test_torn_tail_never_poisons_intact_entries(tmp_path_factory,
                                                rows_a, rows_b,
                                                cut, scribble):
    path = tmp_path_factory.mktemp("journal") / "j.jsonl"
    with ShardCheckpoint(path) as journal:
        journal.record("key-a", 0, 1, rows_a)
        journal.record("key-b", 1, 1, rows_b)
    # Tear the final line at an arbitrary byte and append arbitrary
    # garbage — the kill-during-append failure mode.
    lines = path.read_text().splitlines()
    torn = lines[-1][:max(1, len(lines[-1]) - cut)]
    path.write_bytes(("\n".join(lines[:-1] + [torn]) + "\n").encode()
                     + scribble)
    reloaded = ShardCheckpoint(path)
    try:
        assert reloaded.get("key-a") == rows_a
        assert reloaded.get("key-b") is None
        assert reloaded.corrupt_entries >= 1
    finally:
        reloaded.close()
