"""Properties of the defense ROC sweep.

What any receiver operating characteristic must satisfy, regardless
of the detector that produced the scores:

* **monotonicity** — sweeping the threshold downward can only admit
  more windows on both sides, so FPR and TPR are non-decreasing along
  the curve, anchored at (0, 0) and ending at (1, 1);
* **bounded area** — the AUC is a probability (of ranking a random
  jammed window above a random clean one) and stays in [0, 1];
* **rank invariance** — the AUC depends on the scores only through
  their order, so any strictly increasing transform leaves it (and
  the whole curve's rates) untouched;
* **degenerate refusal** — a single-class window set has no ROC and
  must raise :class:`~repro.errors.ConfigurationError` instead of
  dividing by zero.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.defense.roc import auc, roc_curve
from repro.errors import ConfigurationError

# ----------------------------------------------------------------------
# Strategies

#: Finite scores as detectors emit them.  Drawn from a 0.1-spaced
#: lattice in [-8, 8] so the order-preserving transforms below stay
#: order-preserving *in float64 arithmetic* — free-range floats can
#: sit close enough that an offset or a saturating tanh collapses two
#: distinct scores into a tie, which tests the strategy, not the ROC.
scores = st.integers(min_value=-80, max_value=80).map(lambda i: i / 10)


@st.composite
def scored_windows(draw):
    """(scores, labels) with at least one window of each class."""
    n = draw(st.integers(min_value=2, max_value=40))
    values = draw(st.lists(scores, min_size=n, max_size=n))
    labels = draw(st.lists(st.integers(min_value=0, max_value=1),
                           min_size=n, max_size=n))
    # Force both classes to exist (distinct indices since n >= 2).
    pos = draw(st.integers(min_value=0, max_value=n - 1))
    neg = draw(st.integers(min_value=0, max_value=n - 2))
    if neg >= pos:
        neg += 1
    labels[pos] = 1
    labels[neg] = 0
    return np.array(values), np.array(labels)


# ----------------------------------------------------------------------
# Monotonicity and bounds


@given(scored_windows())
def test_roc_rates_monotone_non_decreasing(data):
    s, y = data
    curve = roc_curve(s, y)
    assert np.all(np.diff(curve.fpr) >= 0)
    assert np.all(np.diff(curve.tpr) >= 0)


@given(scored_windows())
def test_roc_anchored_at_corners(data):
    s, y = data
    curve = roc_curve(s, y)
    assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
    assert curve.fpr[-1] == 1.0 and curve.tpr[-1] == 1.0
    assert np.isinf(curve.thresholds[0])


@given(scored_windows())
def test_auc_within_unit_interval(data):
    s, y = data
    assert 0.0 <= auc(s, y) <= 1.0


@given(scored_windows())
def test_thresholds_strictly_descending(data):
    s, y = data
    curve = roc_curve(s, y)
    assert np.all(np.diff(curve.thresholds) < 0)


# ----------------------------------------------------------------------
# Rank invariance


@given(scored_windows(),
       st.floats(min_value=0.01, max_value=10.0),
       st.floats(min_value=-50.0, max_value=50.0))
def test_auc_invariant_under_affine_transforms(data, gain, offset):
    s, y = data
    assert auc(gain * s + offset, y) == pytest.approx(auc(s, y))


@given(scored_windows())
def test_auc_invariant_under_monotone_nonlinear_transforms(data):
    s, y = data
    reference = auc(s, y)
    for transform in (np.tanh, lambda v: v ** 3,
                      lambda v: 1 / (1 + np.exp(-v))):
        assert auc(transform(s), y) == pytest.approx(reference)


@given(scored_windows())
def test_curve_rates_invariant_under_order_preserving_transform(data):
    s, y = data
    base = roc_curve(s, y)
    warped = roc_curve(np.arctan(s), y)
    np.testing.assert_allclose(warped.fpr, base.fpr)
    np.testing.assert_allclose(warped.tpr, base.tpr)


# ----------------------------------------------------------------------
# Degenerate inputs


@given(st.lists(scores, min_size=1, max_size=20),
       st.sampled_from([0, 1]))
def test_single_class_inputs_raise(values, label):
    s = np.array(values)
    y = np.full(s.size, label)
    with pytest.raises(ConfigurationError):
        roc_curve(s, y)


def test_empty_and_mismatched_inputs_raise():
    with pytest.raises(ConfigurationError):
        roc_curve(np.array([]), np.array([]))
    with pytest.raises(ConfigurationError):
        roc_curve(np.array([1.0, 2.0]), np.array([1]))
    with pytest.raises(ConfigurationError):
        roc_curve(np.array([np.nan, 1.0]), np.array([0, 1]))
